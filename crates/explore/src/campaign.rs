//! Exploration campaigns: the unit `retcon-lab -- explore` fans out.
//!
//! A [`Campaign`] names a scenario, a system under test, and a mode
//! (fuzzing or bounded search) with its budget. Campaign execution is a
//! pure function of that description, so the job-parallel driver
//! ([`run_campaigns`]) writes results into index-addressed slots and the
//! result vector is byte-identical at any worker count — the same
//! determinism contract as the `retcon-lab` dataset runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use retcon_sim::{SimConfig, SimReport};
use retcon_workloads::{run_spec_configured, System};

use crate::fuzz::{fuzz, FuzzBudget};
use crate::scenario::{Scenario, SystemUnderTest};
use crate::search::{bounded_search, SearchBudget};

/// The five-protocol exploration matrix (the cross-protocol smoke set:
/// one representative per conflict-management family).
pub const MATRIX: [System; 5] = [
    System::Eager,
    System::Lazy,
    System::LazyVb,
    System::Retcon,
    System::Datm,
];

/// A cheap, cloneable description of a [`Scenario`] (campaigns carry the
/// description; workers build the spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioSpec {
    /// [`Scenario::counter`].
    Counter {
        /// Core count.
        cores: usize,
        /// Transactions per core.
        iters: u64,
    },
    /// [`Scenario::pool`].
    Pool {
        /// Core count.
        cores: usize,
        /// Number of counters.
        pool: u64,
        /// Transactions per core.
        iters: u64,
        /// Increments per transaction.
        incs: u32,
        /// Tape seed.
        seed: u64,
    },
    /// [`Scenario::transfer`].
    Transfer {
        /// Core count.
        cores: usize,
        /// Number of counters.
        pool: u64,
        /// Transactions per core.
        iters: u64,
        /// Tape seed.
        seed: u64,
    },
}

impl ScenarioSpec {
    /// Builds the scenario.
    pub fn build(self) -> Scenario {
        match self {
            ScenarioSpec::Counter { cores, iters } => Scenario::counter(cores, iters),
            ScenarioSpec::Pool {
                cores,
                pool,
                iters,
                incs,
                seed,
            } => Scenario::pool(cores, pool, iters, incs, seed),
            ScenarioSpec::Transfer {
                cores,
                pool,
                iters,
                seed,
            } => Scenario::transfer(cores, pool, iters, seed),
        }
    }

    /// The scenario label without building it.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioSpec::Counter { .. } => "x-counter",
            ScenarioSpec::Pool { .. } => "x-pool",
            ScenarioSpec::Transfer { .. } => "x-transfer",
        }
    }

    /// Core count without building.
    pub fn cores(self) -> usize {
        match self {
            ScenarioSpec::Counter { cores, .. }
            | ScenarioSpec::Pool { cores, .. }
            | ScenarioSpec::Transfer { cores, .. } => cores,
        }
    }

    /// Tape seed without building (0 for the tapeless counter).
    pub fn seed(self) -> u64 {
        match self {
            ScenarioSpec::Counter { .. } => 0,
            ScenarioSpec::Pool { seed, .. } | ScenarioSpec::Transfer { seed, .. } => seed,
        }
    }
}

/// Exploration mode and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Seeded fuzzing.
    Fuzz(FuzzBudget),
    /// Bounded DFS.
    Search(SearchBudget),
}

impl Mode {
    /// `"fuzz"` or `"search"`.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Fuzz(_) => "fuzz",
            Mode::Search(_) => "search",
        }
    }
}

/// One exploration campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Campaign {
    /// What to run.
    pub scenario: ScenarioSpec,
    /// Which protocol to drive.
    pub system: SystemUnderTest,
    /// How to explore.
    pub mode: Mode,
    /// Whether this campaign *must* find a violation (the mutation-test
    /// campaigns): the smoke gate fails when an expectation is missed in
    /// either direction.
    pub expect_violation: bool,
}

/// The outcome of one campaign, flattened for records.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The campaign that produced this result.
    pub campaign: Campaign,
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct interleavings (decision-fingerprint count).
    pub distinct: u64,
    /// Scheduling decisions (fuzz) or choice points passed (search).
    pub decisions: u64,
    /// Search only: alternatives enqueued / pruned by independence.
    pub branched: u64,
    /// Search only: alternatives pruned by independence.
    pub pruned: u64,
    /// Search only: frontier drained before the budget.
    pub exhausted: bool,
    /// Total violations found (the search stops at its first; fuzzing
    /// counts every failing seed).
    pub violations_total: u64,
    /// Replayable descriptions of the first few violations (`seed=…` for
    /// fuzz, `trace=…` for search), each with the failed check — capped at
    /// [`VIOLATION_EXAMPLES`] so a thoroughly-broken protocol cannot flood
    /// the record.
    pub violations: Vec<String>,
    /// The scenario's *default-schedule* report (deterministic min-heap) —
    /// the record payload, byte-identical across job counts and runs.
    pub default_report: SimReport,
}

/// How many violation examples a campaign result retains.
pub const VIOLATION_EXAMPLES: usize = 3;

impl CampaignResult {
    /// `true` when the campaign met its expectation (violations found
    /// exactly when expected).
    pub fn as_expected(&self) -> bool {
        self.campaign.expect_violation != (self.violations_total == 0)
    }
}

/// Runs one campaign. Pure: same campaign, same result.
pub fn run_campaign(campaign: &Campaign) -> CampaignResult {
    let scenario = campaign.scenario.build();
    let cfg = SimConfig::with_cores(scenario.cores);
    let default_report = run_spec_configured(
        &scenario.spec,
        campaign.system.protocol(scenario.cores),
        cfg,
    )
    .expect("explore scenario stays under the cycle cap");
    let mut result = CampaignResult {
        campaign: *campaign,
        schedules: 0,
        distinct: 0,
        decisions: 0,
        branched: 0,
        pruned: 0,
        exhausted: false,
        violations_total: 0,
        violations: Vec::new(),
        default_report,
    };
    match campaign.mode {
        Mode::Fuzz(budget) => {
            let out = fuzz(&scenario, campaign.system, &budget);
            result.schedules = out.runs;
            result.distinct = out.distinct;
            result.decisions = out.decisions;
            result.violations_total = out.violations.len() as u64;
            result.violations = out
                .violations
                .iter()
                .take(VIOLATION_EXAMPLES)
                .map(|v| {
                    format!(
                        "seed={} window={} jitter={}: {}",
                        v.seed, budget.window, budget.max_jitter, v.violation.detail
                    )
                })
                .collect();
        }
        Mode::Search(budget) => {
            let out = bounded_search(&scenario, campaign.system, &budget);
            result.schedules = out.schedules;
            result.distinct = out.distinct;
            result.decisions = out.choice_points;
            result.branched = out.branched;
            result.pruned = out.pruned;
            result.exhausted = out.exhausted;
            if let Some(found) = out.violation {
                result.violations_total = 1;
                result.violations.push(format!(
                    "trace={} window={}: {}",
                    found.trace, budget.window, found.violation.detail
                ));
            }
        }
    }
    result
}

/// Runs every campaign, fanning out across `workers` threads (`<= 1`
/// serial); results return **in campaign order**, so record assembly is
/// byte-identical at any worker count.
pub fn run_campaigns(campaigns: &[Campaign], workers: usize) -> Vec<CampaignResult> {
    if workers <= 1 || campaigns.len() <= 1 {
        return campaigns.iter().map(run_campaign).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CampaignResult>>> =
        campaigns.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(campaigns.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(c) = campaigns.get(i) else { break };
                let result = run_campaign(c);
                *slots[i].lock().expect("campaign slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("campaign slot poisoned")
                .expect("every campaign index was claimed")
        })
        .collect()
}

/// The explore suite at a given scale. `quick` is the CI smoke budget —
/// still >= 10k distinct schedules per protocol (two fuzz campaigns per
/// system) plus a search campaign per system and the two mutation-test
/// campaigns; the full suite multiplies the seed ranges and search
/// budgets.
pub fn suite(quick: bool) -> Vec<Campaign> {
    let fuzz_seeds: u64 = if quick { 5_500 } else { 25_000 };
    let search = if quick {
        SearchBudget::quick()
    } else {
        SearchBudget {
            max_schedules: 4_000,
            max_branch_points: 64,
            window: 1,
        }
    };
    let counter = ScenarioSpec::Counter { cores: 3, iters: 4 };
    let pool = ScenarioSpec::Pool {
        cores: 3,
        pool: 3,
        iters: 4,
        incs: 2,
        seed: 42,
    };
    let transfer = ScenarioSpec::Transfer {
        cores: 3,
        pool: 3,
        iters: 4,
        seed: 42,
    };
    let mut campaigns = Vec::new();
    for system in MATRIX {
        let sut = SystemUnderTest::Builtin(system);
        for scenario in [counter, pool] {
            campaigns.push(Campaign {
                scenario,
                system: sut,
                mode: Mode::Fuzz(FuzzBudget {
                    base_seed: 1,
                    seeds: fuzz_seeds,
                    window: 2,
                    max_jitter: 3,
                }),
                expect_violation: false,
            });
        }
        campaigns.push(Campaign {
            scenario: transfer,
            system: sut,
            mode: Mode::Fuzz(FuzzBudget {
                base_seed: 1,
                seeds: if quick { 500 } else { 5_000 },
                window: 2,
                max_jitter: 3,
            }),
            expect_violation: false,
        });
        campaigns.push(Campaign {
            scenario: ScenarioSpec::Counter { cores: 2, iters: 3 },
            system: sut,
            mode: Mode::Search(search),
            expect_violation: false,
        });
    }
    // Mutation tests: the broken protocol must be flagged by both engines.
    for mode in [
        Mode::Search(search),
        Mode::Fuzz(FuzzBudget {
            base_seed: 1,
            seeds: 50,
            window: 2,
            max_jitter: 3,
        }),
    ] {
        campaigns.push(Campaign {
            scenario: ScenarioSpec::Counter { cores: 2, iters: 3 },
            system: SystemUnderTest::LostUpdate,
            mode,
            expect_violation: true,
        });
    }
    campaigns
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature suite for harness tests (seconds, not minutes, in
    /// debug builds).
    fn tiny_suite() -> Vec<Campaign> {
        vec![
            Campaign {
                scenario: ScenarioSpec::Counter { cores: 2, iters: 2 },
                system: SystemUnderTest::Builtin(System::Eager),
                mode: Mode::Fuzz(FuzzBudget {
                    base_seed: 1,
                    seeds: 25,
                    window: 2,
                    max_jitter: 3,
                }),
                expect_violation: false,
            },
            Campaign {
                scenario: ScenarioSpec::Counter { cores: 2, iters: 2 },
                system: SystemUnderTest::Builtin(System::Retcon),
                mode: Mode::Search(SearchBudget {
                    max_schedules: 60,
                    max_branch_points: 20,
                    window: 1,
                }),
                expect_violation: false,
            },
            Campaign {
                scenario: ScenarioSpec::Counter { cores: 2, iters: 2 },
                system: SystemUnderTest::LostUpdate,
                mode: Mode::Search(SearchBudget::quick()),
                expect_violation: true,
            },
        ]
    }

    #[test]
    fn campaigns_meet_expectations_and_parallelism_is_transparent() {
        let campaigns = tiny_suite();
        let serial = run_campaigns(&campaigns, 1);
        for r in &serial {
            assert!(
                r.as_expected(),
                "{} {} {}: violations={:?}",
                r.campaign.scenario.label(),
                r.campaign.system.label(),
                r.campaign.mode.label(),
                r.violations
            );
            assert!(r.schedules > 0);
        }
        let parallel = run_campaigns(&campaigns, 4);
        assert_eq!(serial, parallel, "campaign results differ across --jobs");
    }

    #[test]
    fn suite_covers_every_matrix_protocol_and_the_mutation() {
        let suite = suite(true);
        for system in MATRIX {
            assert!(suite
                .iter()
                .any(|c| c.system == SystemUnderTest::Builtin(system)));
        }
        assert_eq!(
            suite
                .iter()
                .filter(|c| c.system == SystemUnderTest::LostUpdate)
                .count(),
            2
        );
        assert!(suite
            .iter()
            .all(|c| c.expect_violation == matches!(c.system, SystemUnderTest::LostUpdate)));
    }
}
