//! The multicore machine: per-core interpreters plus the global scheduler.

use std::fmt;

use retcon_htm::{AnyProtocol, CommitResult, MemResult};
use retcon_isa::{Addr, Instr, Operand, Pc, Program, ValidateError, NUM_REGS};
use retcon_mem::{CoreId, MemorySystem};

use crate::config::SimConfig;
use crate::report::{CoreReport, SimReport, TimeBreakdown};
use crate::schedule::{
    Bound, CoreAction, Decision, DeterministicMinHeap, Schedule, SchedulePeek, SeededFuzz,
};
use crate::tape::InputTape;

/// Errors a simulation run can report.
#[derive(Debug)]
pub enum SimError {
    /// A core's program failed validation.
    InvalidProgram {
        /// The offending core.
        core: usize,
        /// The validation failure.
        error: ValidateError,
    },
    /// The run exceeded [`SimConfig::max_cycles`].
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram { core, error } => {
                write!(f, "invalid program on core {core}: {error}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the {limit}-cycle safety cap")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug)]
struct Core {
    pc: Pc,
    regs: [u64; NUM_REGS],
    reg_ckpt: [u64; NUM_REGS],
    tape: InputTape,
    now: u64,
    halted: bool,
    at_barrier: bool,
    tx_begin_pc: Option<Pc>,
    /// Cycles spent in the current transaction attempt; flushed to `busy` on
    /// commit or to `conflict` on abort.
    attempt_cycles: u64,
    breakdown: TimeBreakdown,
    instructions: u64,
}

impl Core {
    fn new(pc: Pc) -> Self {
        Core {
            pc,
            regs: [0; NUM_REGS],
            reg_ckpt: [0; NUM_REGS],
            tape: InputTape::default(),
            now: 0,
            halted: false,
            at_barrier: false,
            tx_begin_pc: None,
            attempt_cycles: 0,
            breakdown: TimeBreakdown::default(),
            instructions: 0,
        }
    }

    /// Charges `latency` cycles (transaction attempt or busy) and counts
    /// the instruction.
    #[inline]
    fn charge(&mut self, in_tx: bool, latency: u64) {
        self.now += latency;
        self.instructions += 1;
        if in_tx {
            self.attempt_cycles += latency;
        } else {
            self.breakdown.busy += latency;
        }
    }

    /// Handles a stall: the core waits `retry` cycles (conflict time) and
    /// retries the same instruction.
    #[inline]
    fn stall(&mut self, retry: u64) {
        self.now += retry;
        self.breakdown.conflict += retry;
    }

    /// Rolls control flow back to the transaction begin after an abort
    /// (zero-cycle rollback per the paper's baseline: memory state was
    /// restored by the protocol; only accounting and control flow happen
    /// here).
    fn restart_tx(&mut self) {
        self.breakdown.conflict += self.attempt_cycles;
        self.attempt_cycles = 0;
        self.regs = self.reg_ckpt;
        self.tape.rewind();
        self.pc = self
            .tx_begin_pc
            .expect("abort outside a transaction attempt");
    }

    #[inline]
    fn operand_value(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(i) => i as u64,
        }
    }
}

/// The simulated multicore machine.
///
/// Construction wires `num_cores` interpreters to one shared memory system
/// and one concurrency-control protocol; [`run`](Machine::run) executes all
/// programs to completion, deterministically (the scheduler always advances
/// the core with the smallest `(clock, id)`).
///
/// See the crate-level documentation for a complete example.
pub struct Machine {
    cfg: SimConfig,
    mem: MemorySystem,
    protocol: AnyProtocol,
    cores: Vec<Core>,
    /// One program per core, stored beside (not inside) the cores so the
    /// batched interpreter can hold the current basic block's instruction
    /// slice across the mutable per-core state it updates.
    programs: Vec<Program>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cfg", &self.cfg)
            .field("protocol", &self.protocol.name())
            .field("cores", &self.cores.len())
            .finish()
    }
}

impl Machine {
    /// Creates a machine running one program per core.
    ///
    /// Accepts any built-in protocol by value (monomorphized dispatch), an
    /// [`AnyProtocol`], or a `Box<dyn Protocol>` for external protocol
    /// implementations (virtual dispatch through the
    /// [`AnyProtocol::Dyn`] adapter).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != cfg.num_cores`.
    pub fn new(cfg: SimConfig, protocol: impl Into<AnyProtocol>, programs: Vec<Program>) -> Self {
        assert_eq!(
            programs.len(),
            cfg.num_cores,
            "need exactly one program per core"
        );
        Machine {
            mem: MemorySystem::new(cfg.mem, cfg.num_cores),
            protocol: protocol.into(),
            cores: programs.iter().map(|p| Core::new(p.entry())).collect(),
            programs,
            cfg,
        }
    }

    /// Installs `core`'s input tape.
    pub fn set_tape(&mut self, core: usize, values: Vec<u64>) {
        self.cores[core].tape = InputTape::new(values);
    }

    /// Writes an initial value into shared memory (workload setup; no
    /// timing).
    pub fn init_word(&mut self, addr: Addr, value: u64) {
        self.mem.write_word(addr, value);
    }

    /// The shared memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the shared memory system (workload setup and test
    /// assertions).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// The concurrency-control protocol.
    ///
    /// Returns the concrete [`AnyProtocol`] so callers reading counters
    /// ([`AnyProtocol::stats`], [`AnyProtocol::retcon_stats`]) dispatch
    /// through an inlined `match`, not a vtable.
    pub fn protocol(&self) -> &AnyProtocol {
        &self.protocol
    }

    /// Runs every core to completion and reports.
    ///
    /// Scheduling policy: the deterministic `(clock, id)` min-heap, unless
    /// [`SimConfig::schedule_seed`] selects a [`SeededFuzz`] perturbation
    /// (still exactly reproducible from the seed).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidProgram`] if any program fails validation;
    /// [`SimError::CycleLimit`] if the run exceeds the configured cap.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        match self.cfg.schedule_seed {
            None => self.run_with(&mut DeterministicMinHeap::new()),
            Some(seed) => self.run_with(&mut SeededFuzz::new(seed)),
        }
    }

    /// Runs every core to completion under an explicit [`Schedule`] policy.
    ///
    /// The default policy ([`DeterministicMinHeap`]) always advances the
    /// runnable core with the smallest `(clock, id)`: each runnable core
    /// has exactly one heap entry carrying its current clock, and the
    /// popped core then *batches* — `run_core` keeps executing its
    /// instructions while `(clock, id)` stays strictly below the next heap
    /// key ([`Bound::Until`]). A core's clock only grows and no other core
    /// runs in between, so the batched execution order is identical to
    /// re-popping after every instruction — but the schedule is only
    /// consulted at stall boundaries (overtaken, barrier, halt).
    /// Exploration policies instead return [`Bound::Step`] and are
    /// consulted at every instruction boundary.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidProgram`] if any program fails validation;
    /// [`SimError::CycleLimit`] if the run exceeds the configured cap.
    pub fn run_with<S: Schedule + ?Sized>(&mut self, sched: &mut S) -> Result<SimReport, SimError> {
        for (i, program) in self.programs.iter().enumerate() {
            program
                .validate()
                .map_err(|error| SimError::InvalidProgram { core: i, error })?;
        }
        let clocks: Vec<u64> = self.cores.iter().map(|c| c.now).collect();
        sched.begin(&clocks);
        loop {
            let decision = sched.next_core(&MachinePeek {
                cores: &self.cores,
                programs: &self.programs,
                protocol: &self.protocol,
            });
            match decision {
                Some(Decision { core: c, bound }) => {
                    debug_assert!(
                        !self.cores[c].halted && !self.cores[c].at_barrier,
                        "schedule decided an unrunnable core {c}"
                    );
                    self.run_core(c, bound, sched)?;
                    let core = &self.cores[c];
                    sched.core_yielded(c, core.now, !core.halted && !core.at_barrier);
                }
                None => {
                    // No runnable core: either everyone halted, or every
                    // non-halted core is parked at the barrier.
                    if self.cores.iter().all(|c| c.halted) {
                        break;
                    }
                    self.release_barrier(sched);
                }
            }
        }
        Ok(self.report())
    }

    fn release_barrier<S: Schedule + ?Sized>(&mut self, sched: &mut S) {
        let release_at = self
            .cores
            .iter()
            .filter(|c| c.at_barrier)
            .map(|c| c.now)
            .max()
            .expect("release_barrier with no parked cores");
        for (i, c) in self.cores.iter_mut().enumerate() {
            if c.at_barrier {
                c.breakdown.barrier += release_at - c.now;
                c.now = release_at;
                c.at_barrier = false;
                sched.core_released(i, c.now);
            }
        }
    }

    fn report(&self) -> SimReport {
        let mut protocol_stats = retcon_htm::ProtocolStats::default();
        for i in 0..self.cores.len() {
            protocol_stats.merge(self.protocol.stats(CoreId(i)));
        }
        SimReport {
            protocol_name: self.protocol.name().to_string(),
            cycles: self.cores.iter().map(|c| c.now).max().unwrap_or(0),
            per_core: self
                .cores
                .iter()
                .map(|c| CoreReport {
                    breakdown: c.breakdown,
                    instructions: c.instructions,
                    finished_at: c.now,
                })
                .collect(),
            protocol: protocol_stats,
            retcon: self.protocol.retcon_stats(),
        }
    }

    /// Executes instructions on core `c` until its [`Bound`] expires: its
    /// `(clock, id)` reaches a [`Bound::Until`] key (the smallest key among
    /// the other runnable cores), one instruction attempt completes under
    /// [`Bound::Step`], it parks at a barrier, or it halts. [`Bound::Free`]
    /// means no other core is runnable.
    ///
    /// # Equivalence with single-stepping
    ///
    /// The old scheduler popped the heap, executed *one* instruction, and
    /// re-pushed. Batching is observationally identical because between
    /// two instructions of the same core (a) no other core's clock moves,
    /// (b) this core's clock never decreases, and (c) the cycle-limit and
    /// remote-abort checks run per instruction here exactly as they ran
    /// per pop there. The loop exits the moment another core's `(clock,
    /// id)` key becomes smaller, which is precisely when the old scheduler
    /// would have popped a different core.
    fn run_core<S: Schedule + ?Sized>(
        &mut self,
        c: usize,
        bound: Bound,
        sched: &mut S,
    ) -> Result<(), SimError> {
        let core_id = CoreId(c);
        let max_cycles = self.cfg.max_cycles;
        let stall_retry = self.cfg.stall_retry;
        // Hoist the per-instruction borrows out of the loop: the protocol,
        // the memory system and this core's interpreter state are disjoint
        // fields, resolved once per batch instead of per instruction.
        let Machine {
            mem,
            protocol,
            cores,
            programs,
            ..
        } = self;
        let core = &mut cores[c];
        let program = &programs[c];
        // Current basic block's instruction slice, refreshed only on
        // control transfers: the straight-line fetch is one indexed load.
        let mut block = core.pc.block;
        let mut instrs = program.block_instrs(block);
        // Transactional status for cycle accounting, tracked locally — it
        // only changes at the boundaries handled below, so the batch loop
        // charges cycles without a protocol query per instruction.
        let mut in_tx = protocol.tx_active(core_id);
        // Whether an instruction attempt already completed (Bound::Step
        // yields after exactly one; a restart forced by a *remote* abort is
        // bookkeeping, not an attempt, and does not consume the step).
        let mut stepped = false;
        loop {
            match bound {
                Bound::Until(b_clock, b_id) => {
                    if (core.now, c) >= (b_clock, b_id) {
                        return Ok(());
                    }
                }
                Bound::Step => {
                    if stepped {
                        return Ok(());
                    }
                }
                Bound::Free => {}
            }
            if core.now > max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            // A remote core may have aborted us before this batch; the
            // check stays per-instruction to mirror the protocols' abort
            // handshake exactly (DATM's cascades can raise the flag from
            // this core's own accesses).
            if protocol.take_aborted(core_id) {
                core.restart_tx();
                in_tx = false;
                continue;
            }
            debug_assert_eq!(
                in_tx,
                protocol.tx_active(core_id),
                "batched in_tx fell out of sync on core {c}"
            );
            let pc = core.pc;
            if pc.block != block {
                block = pc.block;
                instrs = program.block_instrs(block);
            }
            let instr = *instrs
                .get(pc.index)
                .expect("validated program cannot run off the end");
            match instr {
                Instr::Imm { dst, value } => {
                    protocol.on_imm(core_id, dst);
                    core.regs[dst.index()] = value;
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Mov { dst, src } => {
                    protocol.on_mov(core_id, dst, src);
                    core.regs[dst.index()] = core.regs[src.index()];
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Bin { op, dst, lhs, rhs } => {
                    let lhs_val = core.regs[lhs.index()];
                    let rhs_val = core.operand_value(rhs);
                    let rhs_reg = match rhs {
                        Operand::Reg(r) => Some(r),
                        Operand::Imm(_) => None,
                    };
                    let result = protocol.on_alu(core_id, op, dst, lhs, rhs_reg, lhs_val, rhs_val);
                    core.regs[dst.index()] = result;
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Load { dst, addr, offset } => {
                    let a = Addr(core.regs[addr.index()]).offset(offset);
                    match protocol.read(core_id, dst, a, Some(addr), mem, core.now) {
                        MemResult::Value { value, latency } => {
                            core.regs[dst.index()] = value;
                            core.pc = pc.next();
                            core.charge(in_tx, latency);
                        }
                        MemResult::Stall => {
                            core.stall(stall_retry + sched.observe_stall(c, core.now))
                        }
                        MemResult::Abort => {
                            core.restart_tx();
                            in_tx = false;
                        }
                    }
                }
                Instr::Store { src, addr, offset } => {
                    let a = Addr(core.regs[addr.index()]).offset(offset);
                    let value = core.operand_value(src);
                    let src_reg = match src {
                        Operand::Reg(r) => Some(r),
                        Operand::Imm(_) => None,
                    };
                    match protocol.write(core_id, src_reg, value, a, Some(addr), mem, core.now) {
                        MemResult::Value { latency, .. } => {
                            core.pc = pc.next();
                            core.charge(in_tx, latency);
                        }
                        MemResult::Stall => {
                            core.stall(stall_retry + sched.observe_stall(c, core.now))
                        }
                        MemResult::Abort => {
                            core.restart_tx();
                            in_tx = false;
                        }
                    }
                }
                Instr::Branch {
                    op,
                    lhs,
                    rhs,
                    taken,
                    not_taken,
                } => {
                    let lhs_val = core.regs[lhs.index()];
                    let rhs_val = core.operand_value(rhs);
                    let rhs_reg = match rhs {
                        Operand::Reg(r) => Some(r),
                        Operand::Imm(_) => None,
                    };
                    let outcome = protocol.on_branch(core_id, op, lhs, rhs_reg, lhs_val, rhs_val);
                    core.pc = Pc::at(if outcome { taken } else { not_taken });
                    core.charge(in_tx, 1);
                }
                Instr::Jump { target } => {
                    core.pc = Pc::at(target);
                    core.charge(in_tx, 1);
                }
                Instr::Input { dst } => {
                    protocol.on_imm(core_id, dst);
                    let v = core.tape.next();
                    core.regs[dst.index()] = v;
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Work { cycles } => {
                    core.pc = pc.next();
                    core.charge(in_tx, cycles as u64);
                }
                Instr::TxBegin => {
                    debug_assert!(!protocol.tx_active(core_id), "nested TxBegin on core {c}");
                    protocol.tx_begin(core_id, core.now);
                    core.tx_begin_pc = Some(pc);
                    core.reg_ckpt = core.regs;
                    core.tape.mark();
                    core.pc = pc.next();
                    in_tx = true;
                    core.charge(in_tx, 1);
                }
                Instr::TxCommit => {
                    match protocol.commit(core_id, mem, core.now) {
                        CommitResult::Committed {
                            latency,
                            reg_updates,
                        } => {
                            for &(r, v) in &reg_updates {
                                core.regs[r.index()] = v;
                            }
                            // The attempt's work becomes useful; commit
                            // processing is accounted as "other".
                            core.breakdown.busy += core.attempt_cycles + 1;
                            core.breakdown.other += latency;
                            core.attempt_cycles = 0;
                            core.tx_begin_pc = None;
                            core.now += latency + 1;
                            core.instructions += 1;
                            core.pc = pc.next();
                            in_tx = false;
                        }
                        CommitResult::Stall => {
                            core.stall(stall_retry + sched.observe_stall(c, core.now))
                        }
                        CommitResult::Abort => {
                            core.restart_tx();
                            in_tx = false;
                        }
                    }
                }
                Instr::Barrier => {
                    core.pc = pc.next();
                    core.at_barrier = true;
                    core.now += 1;
                    core.breakdown.busy += 1;
                    core.instructions += 1;
                    return Ok(());
                }
                Instr::Halt => {
                    core.halted = true;
                    return Ok(());
                }
            }
            stepped = true;
        }
    }
}

/// The read-only view a [`Schedule`] may consult before deciding: each
/// core's next action, derived from its program counter and registers.
struct MachinePeek<'a> {
    cores: &'a [Core],
    programs: &'a [Program],
    protocol: &'a AnyProtocol,
}

impl SchedulePeek for MachinePeek<'_> {
    fn num_cores(&self) -> usize {
        self.cores.len()
    }

    fn next_action(&self, c: usize) -> CoreAction {
        let core = &self.cores[c];
        if core.halted {
            return CoreAction::Local;
        }
        // A pending remote abort means this core's real next action is the
        // transaction restart — it re-executes from its TxBegin, and the
        // instruction (and address registers) under the current pc are
        // stale. Report the restart so exploration pruning never claims
        // independence for it (`CoreAction::conflicts_with` treats `Begin`
        // as conflicting with every transactional action).
        if self.protocol.abort_pending(CoreId(c)) {
            return CoreAction::Begin;
        }
        let instr = self.programs[c].block_instrs(core.pc.block)[core.pc.index];
        match instr {
            Instr::Load { addr, offset, .. } => {
                CoreAction::Read(Addr(core.regs[addr.index()]).offset(offset).block().0)
            }
            Instr::Store { addr, offset, .. } => {
                CoreAction::Write(Addr(core.regs[addr.index()]).offset(offset).block().0)
            }
            Instr::TxCommit => CoreAction::Commit,
            Instr::TxBegin => CoreAction::Begin,
            _ => CoreAction::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon::RetconConfig;
    use retcon_htm::{ConflictPolicy, EagerTm, LazyTm, LazyVbTm, RetconTm};
    use retcon_isa::{BinOp, CmpOp, ProgramBuilder, Reg};

    /// `iters` transactional double-increments of the counter at `addr`,
    /// with `work` abstract cycles inside the transaction.
    fn counter_program(addr: u64, iters: u64, work: u32) -> Program {
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        b.imm(Reg(0), iters);
        b.imm(Reg(1), addr);
        b.jump(body);
        b.select(body);
        b.tx_begin();
        b.load(Reg(2), Reg(1), 0);
        b.add_imm(Reg(2), 1);
        b.store(Operand::Reg(Reg(2)), Reg(1), 0);
        if work > 0 {
            b.work(work);
        }
        b.load(Reg(2), Reg(1), 0);
        b.add_imm(Reg(2), 1);
        b.store(Operand::Reg(Reg(2)), Reg(1), 0);
        b.tx_commit();
        b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
        b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
        b.select(done);
        b.halt();
        b.build().unwrap()
    }

    fn run_counter(protocol: impl Into<AnyProtocol>, cores: usize, iters: u64) -> (SimReport, u64) {
        let cfg = SimConfig::with_cores(cores);
        let programs = (0..cores).map(|_| counter_program(0, iters, 5)).collect();
        let mut m = Machine::new(cfg, protocol, programs);
        let report = m.run().expect("run completes");
        (report, m.mem().read_word(Addr(0)))
    }

    #[test]
    fn single_core_counter_is_exact() {
        let (report, value) = run_counter(EagerTm::new(1, ConflictPolicy::OldestWins), 1, 50);
        assert_eq!(value, 100);
        assert_eq!(report.protocol.commits, 50);
        assert_eq!(report.protocol.aborts(), 0);
        assert_eq!(report.breakdown().conflict, 0);
    }

    #[test]
    fn eager_counter_serializes_correctly() {
        let (report, value) = run_counter(EagerTm::new(4, ConflictPolicy::OldestWins), 4, 25);
        assert_eq!(value, 4 * 25 * 2, "no lost updates");
        assert_eq!(report.protocol.commits, 100);
        // Heavy contention: conflicts must show up in the breakdown.
        assert!(report.breakdown().conflict > 0);
    }

    #[test]
    fn lazy_counter_serializes_correctly() {
        let (report, value) = run_counter(LazyTm::new(4), 4, 25);
        assert_eq!(value, 200);
        assert_eq!(report.protocol.commits, 100);
    }

    #[test]
    fn lazy_vb_counter_serializes_correctly() {
        let (report, value) = run_counter(LazyVbTm::new(4), 4, 25);
        assert_eq!(value, 200);
        assert_eq!(report.protocol.commits, 100);
        // Value validation aborts the racing increments.
        assert!(report.protocol.aborts_validation > 0);
    }

    #[test]
    fn retcon_counter_eliminates_aborts() {
        let cfg = RetconConfig {
            initial_threshold: 0,
            ..RetconConfig::default()
        };
        let (report, value) = run_counter(RetconTm::new(4, cfg), 4, 25);
        assert_eq!(value, 200, "symbolic repair preserves every increment");
        assert_eq!(report.protocol.commits, 100);
        assert_eq!(
            report.protocol.aborts(),
            0,
            "counter increments never conflict under RETCON"
        );
        let rs = report.retcon.expect("RETCON stats");
        assert_eq!(rs.transactions, 100);
        assert!(rs.avg_blocks_tracked() >= 1.0);
    }

    #[test]
    fn retcon_scales_better_than_eager_on_counter() {
        let (eager, _) = run_counter(EagerTm::new(8, ConflictPolicy::OldestWins), 8, 25);
        let cfg = RetconConfig {
            initial_threshold: 0,
            ..RetconConfig::default()
        };
        let (retcon, _) = run_counter(RetconTm::new(8, cfg), 8, 25);
        assert!(
            retcon.cycles < eager.cycles,
            "RETCON {} !< eager {}",
            retcon.cycles,
            eager.cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || run_counter(EagerTm::new(4, ConflictPolicy::OldestWins), 4, 10).0;
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.protocol, b.protocol);
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            assert_eq!(x.breakdown, y.breakdown);
            assert_eq!(x.instructions, y.instructions);
        }
    }

    #[test]
    fn barrier_synchronizes_and_accounts_imbalance() {
        // Core 0 works 1000 cycles, core 1 works 10, then both hit a
        // barrier.
        let prog = |work: u32| {
            let mut b = ProgramBuilder::new();
            b.work(work);
            b.barrier();
            b.halt();
            b.build().unwrap()
        };
        let cfg = SimConfig::with_cores(2);
        let protocol = EagerTm::new(2, ConflictPolicy::OldestWins);
        let mut m = Machine::new(cfg, protocol, vec![prog(1000), prog(10)]);
        let report = m.run().unwrap();
        assert_eq!(report.per_core[0].breakdown.barrier, 0);
        assert_eq!(report.per_core[1].breakdown.barrier, 990);
        assert_eq!(
            report.per_core[0].finished_at,
            report.per_core[1].finished_at
        );
    }

    #[test]
    fn input_tape_rewinds_on_abort() {
        // Two cores transactionally append tape values to a shared counter;
        // aborts must not skip or duplicate tape entries.
        let prog = {
            let mut b = ProgramBuilder::new();
            let body = b.block();
            let done = b.block();
            b.imm(Reg(0), 20);
            b.imm(Reg(1), 0);
            b.jump(body);
            b.select(body);
            b.tx_begin();
            b.input(Reg(3));
            b.load(Reg(2), Reg(1), 0);
            b.bin(BinOp::Add, Reg(2), Reg(2), Operand::Reg(Reg(3)));
            b.store(Operand::Reg(Reg(2)), Reg(1), 0);
            b.tx_commit();
            b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
            b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
            b.select(done);
            b.halt();
            b.build().unwrap()
        };
        let cfg = SimConfig::with_cores(2);
        let protocol = EagerTm::new(2, ConflictPolicy::OldestWins);
        let mut m = Machine::new(cfg, protocol, vec![prog.clone(), prog]);
        m.set_tape(0, vec![1; 20]);
        m.set_tape(1, vec![1; 20]);
        let report = m.run().unwrap();
        assert_eq!(m.mem().read_word(Addr(0)), 40);
        assert_eq!(report.protocol.commits, 40);
    }

    #[test]
    fn register_checkpoint_restored_on_abort() {
        // A transaction that increments a register *and* conflicts: after
        // the retries the register result must be as if executed once.
        let prog = {
            let mut b = ProgramBuilder::new();
            let store_back = b.block();
            let done = b.block();
            b.imm(Reg(5), 0); // accumulator incremented inside the tx
            b.imm(Reg(1), 0);
            b.jump(store_back);
            b.select(store_back);
            b.tx_begin();
            b.add_imm(Reg(5), 1); // would double-count if not checkpointed
            b.load(Reg(2), Reg(1), 0);
            b.add_imm(Reg(2), 1);
            b.store(Operand::Reg(Reg(2)), Reg(1), 0);
            b.tx_commit();
            b.jump(done);
            b.select(done);
            // Publish the accumulator non-transactionally at address 100+id.
            b.imm(Reg(6), 100);
            b.store(Operand::Reg(Reg(5)), Reg(6), 0);
            b.halt();
            b.build().unwrap()
        };
        // Run under heavy contention so aborts actually happen.
        let cfg = SimConfig::with_cores(2);
        let protocol = EagerTm::new(2, ConflictPolicy::OldestWins);
        let mut programs = Vec::new();
        for _ in 0..2 {
            programs.push(prog.clone());
        }
        let mut m = Machine::new(cfg, protocol, programs);
        let _ = m.run().unwrap();
        // Each core's accumulator must be exactly 1 regardless of retries.
        assert_eq!(m.mem().read_word(Addr(100)), 1);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut b = ProgramBuilder::new();
        let spin = b.block();
        b.jump(spin);
        b.select(spin);
        b.jump(spin);
        let prog = b.build().unwrap();
        let mut cfg = SimConfig::with_cores(1);
        cfg.max_cycles = 1000;
        let mut m = Machine::new(cfg, EagerTm::new(1, ConflictPolicy::OldestWins), vec![prog]);
        assert!(matches!(m.run(), Err(SimError::CycleLimit { .. })));
    }

    #[test]
    fn breakdown_buckets_sum_to_core_time() {
        let (report, _) = run_counter(EagerTm::new(4, ConflictPolicy::OldestWins), 4, 10);
        for core in &report.per_core {
            assert_eq!(core.breakdown.total(), core.finished_at);
        }
    }
}
