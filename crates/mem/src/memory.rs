//! Architectural memory state.

use std::collections::HashMap;

use retcon_isa::Addr;

/// The architectural memory of the simulated machine: a sparse map from word
/// addresses to 64-bit values. Unwritten words read as zero, like
/// zero-initialized physical memory.
///
/// `GlobalMemory` holds *values only*; which core may access a word, at what
/// latency, and whether doing so conflicts with a speculative region is the
/// business of [`MemorySystem`](crate::MemorySystem). Version management
/// (undo logs, write buffers) layers on top via
/// [`UndoLog`](crate::UndoLog) / [`WriteBuffer`](crate::WriteBuffer).
///
/// # Example
///
/// ```
/// use retcon_mem::GlobalMemory;
/// use retcon_isa::Addr;
///
/// let mut mem = GlobalMemory::new();
/// assert_eq!(mem.read(Addr(10)), 0);
/// mem.write(Addr(10), 99);
/// assert_eq!(mem.read(Addr(10)), 99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalMemory {
    words: HashMap<u64, u64>,
}

impl GlobalMemory {
    /// Creates an all-zero memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr` (zero if never written).
    #[inline]
    pub fn read(&self, addr: Addr) -> u64 {
        self.words.get(&addr.0).copied().unwrap_or(0)
    }

    /// Writes `value` to the word at `addr`.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) {
        if value == 0 {
            // Keep the map sparse: zero is the default.
            self.words.remove(&addr.0);
        } else {
            self.words.insert(addr.0, value);
        }
    }

    /// Number of words holding a nonzero value.
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates over `(address, value)` pairs of nonzero words in arbitrary
    /// order. Intended for test assertions and debugging dumps.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (Addr(a), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = GlobalMemory::new();
        assert_eq!(mem.read(Addr(0)), 0);
        assert_eq!(mem.read(Addr(u64::MAX)), 0);
    }

    #[test]
    fn write_then_read() {
        let mut mem = GlobalMemory::new();
        mem.write(Addr(5), 42);
        mem.write(Addr(6), 43);
        assert_eq!(mem.read(Addr(5)), 42);
        assert_eq!(mem.read(Addr(6)), 43);
        assert_eq!(mem.nonzero_words(), 2);
    }

    #[test]
    fn overwrite_with_zero_stays_sparse() {
        let mut mem = GlobalMemory::new();
        mem.write(Addr(5), 42);
        mem.write(Addr(5), 0);
        assert_eq!(mem.read(Addr(5)), 0);
        assert_eq!(mem.nonzero_words(), 0);
    }

    #[test]
    fn iter_covers_written_words() {
        let mut mem = GlobalMemory::new();
        mem.write(Addr(1), 10);
        mem.write(Addr(2), 20);
        let mut pairs: Vec<(Addr, u64)> = mem.iter().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(Addr(1), 10), (Addr(2), 20)]);
    }
}
