//! `retcon-run --json` contract: a fuzzed-schedule run must record its
//! `--schedule-seed` in the emitted JSON so the run is replayable from
//! the record alone (the lab side pins the matching parse in
//! `crates/lab/tests/schedule_seed_roundtrip.rs`).

use retcon_sim::json::Json;
use std::process::Command;

fn run_json(extra: &[&str]) -> Json {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_retcon-run"));
    cmd.args(["--workload", "counter", "--cores", "4", "--json"]);
    cmd.args(extra);
    let out = cmd.output().expect("retcon-run spawns");
    assert!(
        out.status.success(),
        "retcon-run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    Json::parse(&String::from_utf8(out.stdout).expect("utf-8 output")).expect("valid JSON")
}

#[test]
fn schedule_seed_is_recorded_in_json() {
    let record = run_json(&["--schedule-seed", "7"]);
    let knobs = record.req_arr("knobs").expect("knobs array");
    let pair = knobs
        .iter()
        .find_map(|k| {
            let items = k.as_arr()?;
            (items.first()?.as_str()? == "schedule-seed").then(|| items.get(1)?.as_str())?
        })
        .expect("schedule-seed knob present");
    assert_eq!(pair, "7");
}

#[test]
fn default_schedule_has_no_seed_knob() {
    let record = run_json(&[]);
    let knobs = record.req_arr("knobs").expect("knobs array");
    assert!(knobs.is_empty(), "no knobs for the deterministic schedule");
}
