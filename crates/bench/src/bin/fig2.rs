//! Figure 2: the two-increment counter schedule under five designs.
//!
//! Two processors each run transactions performing two increments of one
//! shared counter. The paper's qualitative claims:
//!
//! * (a) RETCON: both commit concurrently, repairing at commit — no aborts;
//! * (b) DATM: forwarding admits one increment, but the second closes a
//!   dependence cycle — some aborts, fewer than pure eager;
//! * (c) Eager (abort-requester): the loser aborts repeatedly until the
//!   winner commits;
//! * (d) Eager-Stall (oldest wins): the younger stalls instead of aborting;
//! * (e) Lazy: the loser runs to commit and then aborts.

use retcon_bench::{print_header, SEED};
use retcon_workloads::{run_spec, System, Workload};

fn main() {
    print_header(
        "Figure 2: RETCON vs DATM vs Eager vs Eager-Stall vs Lazy",
        "counter micro-benchmark, 2 cores, two increments per transaction",
    );
    let spec = Workload::Counter.build(2, SEED);
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>9} {:>11}",
        "system", "cycles", "commits", "aborts", "stalls", "final-count"
    );
    let systems = [
        ("(a) RetCon", System::Retcon),
        ("(b) DATM", System::Datm),
        ("(c) Eager", System::EagerAbort),
        ("(d) EagerStall", System::Eager),
        ("(e) Lazy", System::Lazy),
    ];
    let mut rows = Vec::new();
    for (label, system) in systems {
        let report = run_spec(&spec, system, 2).expect("counter runs");
        println!(
            "{:<14} {:>10} {:>9} {:>9} {:>9} {:>11}",
            label,
            report.cycles,
            report.protocol.commits,
            report.protocol.aborts(),
            report.protocol.stalls,
            report.protocol.commits * 2,
        );
        rows.push((label, report));
    }
    // The paper's qualitative ordering: RETCON runs conflict-free; every
    // other design pays for the conflict somehow.
    let retcon = &rows[0].1;
    println!();
    println!(
        "RetCon aborts: {} (expected 0 after predictor warmup); eager aborts: {}; lazy aborts: {}",
        retcon.protocol.aborts(),
        rows[2].1.protocol.aborts(),
        rows[4].1.protocol.aborts(),
    );
}
