//! Offline shim for the `proptest` crate.
//!
//! The build container has no crates.io access, so this workspace vendors a
//! minimal, API-compatible subset of proptest sufficient for the test suites
//! in this repository:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_filter`, and `boxed`;
//! * strategies for integer ranges, tuples, [`Just`](strategy::Just),
//!   `any::<T>()`, `prop_oneof!`, `proptest::collection::vec`, and
//!   `proptest::array::uniform4`;
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`, and
//!   the `prop_assert!` family.
//!
//! Differences from real proptest, on purpose:
//!
//! * **Deterministic**: every test function derives its RNG seed from its
//!   module path and name, so runs are exactly reproducible.
//! * **No shrinking**: a failing case panics with the generated inputs in
//!   the assertion message instead of minimizing them.

pub mod strategy;

pub mod test_runner {
    /// Configuration for a `proptest!` block (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic xorshift-based RNG used to generate test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a fixed seed (zero is remapped).
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed | 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next pseudo-random word (splitmix64 output function over a
        /// xorshift state walk — plenty for test-input generation).
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing fixed-size arrays from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),+ $(,)?) => {
            $(
                /// Generates arrays of the given arity from `element`.
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            )+
        };
    }

    uniform_fn!(
        uniform2 => 2,
        uniform3 => 3,
        uniform4 => 4,
        uniform8 => 8,
        uniform16 => 16,
    );
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Compile-time FNV-1a hash used to derive per-test RNG seeds.
#[must_use]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        i += 1;
    }
    hash
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset this repository uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     #[test]
///     fn my_property(x in 0u64..10, v in proptest::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
