//! Experiment records: the structured, machine-readable form of every
//! figure and table dataset.
//!
//! A [`RunRecord`] captures one simulation run — which workload, under
//! which system, at which core count and seed, with which configuration
//! knobs — together with the full [`SimReport`] cycle breakdown. An
//! [`ExperimentRecord`] groups the runs that regenerate one paper
//! artifact (`fig9`, `table3`, …) with free-form metadata.
//!
//! Records store **integers only** (cycles and counters); derived
//! quantities such as speedups are computed on demand. That choice makes
//! the JSON emitters in this module exactly invertible — the round-trip
//! property the test suite pins — and keeps the on-disk format
//! diff-friendly across runs.

use retcon_sim::json::Json;
use retcon_sim::SimReport;

/// One simulation run with its full context.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Workload label (Table 2 name, e.g. `"genome-sz"`).
    pub workload: String,
    /// System label (e.g. `"eager"`, `"lazy-vb"`, `"RetCon"`).
    pub system: String,
    /// Core count of this run.
    pub cores: u64,
    /// Workload-build seed.
    pub seed: u64,
    /// Configuration knobs that deviate from the named system's defaults
    /// (e.g. `("ivb", "4")` in a structure-size sweep). Empty for plain
    /// runs.
    pub knobs: Vec<(String, String)>,
    /// Sequential-baseline cycles for the same workload and seed, or 0
    /// when the dataset does not measure a baseline.
    pub seq_cycles: u64,
    /// The complete simulator report.
    pub report: SimReport,
}

impl RunRecord {
    /// Speedup over the sequential baseline, when one was measured.
    pub fn speedup(&self) -> Option<f64> {
        if self.seq_cycles == 0 || self.report.cycles == 0 {
            None
        } else {
            Some(self.seq_cycles as f64 / self.report.cycles as f64)
        }
    }

    /// The value of knob `key`, if this run set it.
    pub fn knob(&self, key: &str) -> Option<&str> {
        self.knobs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The fuzzed-schedule seed this run was driven with, if any — the
    /// `schedule-seed` knob `retcon-run --schedule-seed` records, parsed
    /// back to the value to pass on replay. `None` for the default
    /// deterministic schedule or an unparseable knob value.
    pub fn schedule_seed(&self) -> Option<u64> {
        self.knob("schedule-seed").and_then(|v| v.parse().ok())
    }

    /// Serializes the run (losslessly) as JSON. The shape is shared with
    /// `retcon-run --json`:
    ///
    /// ```text
    /// { "workload": "...", "system": "...", "cores": N, "seed": N,
    ///   "knobs": [["key","value"], ...], "seq_cycles": N,
    ///   "report": { SimReport::to_json ... } }
    /// ```
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::str(&self.workload)),
            ("system", Json::str(&self.system)),
            ("cores", Json::UInt(self.cores)),
            ("seed", Json::UInt(self.seed)),
            (
                "knobs",
                Json::Arr(
                    self.knobs
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::str(k), Json::str(v)]))
                        .collect(),
                ),
            ),
            ("seq_cycles", Json::UInt(self.seq_cycles)),
            ("report", self.report.to_json()),
        ])
    }

    /// Reconstructs a run from the [`RunRecord::to_json`] shape.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<RunRecord, String> {
        let mut knobs = Vec::new();
        for (i, pair) in json.req_arr("knobs")?.iter().enumerate() {
            let items = pair
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("knobs[{i}]: expected a [key, value] pair"))?;
            let key = items[0]
                .as_str()
                .ok_or_else(|| format!("knobs[{i}]: non-string key"))?;
            let value = items[1]
                .as_str()
                .ok_or_else(|| format!("knobs[{i}]: non-string value"))?;
            knobs.push((key.to_string(), value.to_string()));
        }
        Ok(RunRecord {
            workload: json.req_str("workload")?.to_string(),
            system: json.req_str("system")?.to_string(),
            cores: json.req_u64("cores")?,
            seed: json.req_u64("seed")?,
            knobs,
            seq_cycles: json.req_u64("seq_cycles")?,
            report: SimReport::from_json(
                json.get("report")
                    .ok_or_else(|| "missing field `report`".to_string())?,
            )?,
        })
    }
}

/// One regenerated paper artifact: a named group of runs plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Dataset name (`"fig9"`, `"table3"`, …).
    pub name: String,
    /// The seed every run used.
    pub seed: u64,
    /// Free-form metadata (configuration tables, static inventories);
    /// order is preserved.
    pub meta: Vec<(String, String)>,
    /// The runs, in the dataset's canonical (serial) order.
    pub runs: Vec<RunRecord>,
}

impl ExperimentRecord {
    /// Finds the run for `workload` under `system` with the *highest* core
    /// count — the headline configuration when a dataset also carries
    /// 1-core baselines.
    pub fn find(&self, workload: &str, system: &str) -> Option<&RunRecord> {
        self.runs
            .iter()
            .filter(|r| r.workload == workload && r.system == system)
            .max_by_key(|r| r.cores)
    }

    /// Finds the run for `workload` under `system` at exactly `cores`.
    pub fn find_at(&self, workload: &str, system: &str, cores: u64) -> Option<&RunRecord> {
        self.runs
            .iter()
            .find(|r| r.workload == workload && r.system == system && r.cores == cores)
    }

    /// Speedup of `workload` under `system` (highest-core run), when a
    /// baseline was measured.
    pub fn speedup_of(&self, workload: &str, system: &str) -> Option<f64> {
        self.find(workload, system).and_then(RunRecord::speedup)
    }

    /// The value of meta key `key`.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the experiment (losslessly) as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("experiment", Json::str(&self.name)),
            ("seed", Json::UInt(self.seed)),
            (
                "meta",
                Json::Arr(
                    self.meta
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::str(k), Json::str(v)]))
                        .collect(),
                ),
            ),
            (
                "runs",
                Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }

    /// The stable on-disk JSON text (pretty-printed, trailing newline).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Reconstructs an experiment from the [`ExperimentRecord::to_json`]
    /// shape.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<ExperimentRecord, String> {
        let mut meta = Vec::new();
        for (i, pair) in json.req_arr("meta")?.iter().enumerate() {
            let items = pair
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("meta[{i}]: expected a [key, value] pair"))?;
            meta.push((
                items[0]
                    .as_str()
                    .ok_or_else(|| format!("meta[{i}]: non-string key"))?
                    .to_string(),
                items[1]
                    .as_str()
                    .ok_or_else(|| format!("meta[{i}]: non-string value"))?
                    .to_string(),
            ));
        }
        let mut runs = Vec::new();
        for (i, run) in json.req_arr("runs")?.iter().enumerate() {
            runs.push(RunRecord::from_json(run).map_err(|e| format!("runs[{i}]: {e}"))?);
        }
        Ok(ExperimentRecord {
            name: json.req_str("experiment")?.to_string(),
            seed: json.req_u64("seed")?,
            meta,
            runs,
        })
    }

    /// Parses the on-disk JSON text form.
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors and schema mismatches.
    pub fn from_json_str(text: &str) -> Result<ExperimentRecord, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        ExperimentRecord::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_sim::{CoreReport, TimeBreakdown};

    fn sample_run() -> RunRecord {
        let mut report = SimReport {
            protocol_name: "eager".to_string(),
            cycles: 1000,
            ..Default::default()
        };
        report.per_core.push(CoreReport {
            breakdown: TimeBreakdown {
                busy: 600,
                conflict: 300,
                barrier: 50,
                other: 50,
            },
            instructions: 700,
            finished_at: 1000,
        });
        report.protocol.commits = 64;
        report.protocol.aborts_conflict = 3;
        RunRecord {
            workload: "counter".to_string(),
            system: "eager".to_string(),
            cores: 1,
            seed: 42,
            knobs: vec![("ivb".to_string(), "4".to_string())],
            seq_cycles: 2000,
            report,
        }
    }

    #[test]
    fn run_roundtrips_and_derives() {
        let run = sample_run();
        assert_eq!(RunRecord::from_json(&run.to_json()).unwrap(), run);
        assert_eq!(run.speedup(), Some(2.0));
        assert_eq!(run.knob("ivb"), Some("4"));
        assert_eq!(run.knob("ssb"), None);
    }

    #[test]
    fn experiment_roundtrips_through_text() {
        let exp = ExperimentRecord {
            name: "fig_test".to_string(),
            seed: 42,
            meta: vec![("note".to_string(), "a, b = c".to_string())],
            runs: vec![sample_run()],
        };
        let text = exp.to_json_string();
        assert_eq!(ExperimentRecord::from_json_str(&text).unwrap(), exp);
    }

    #[test]
    fn find_prefers_highest_core_count() {
        let mut base = sample_run();
        base.seq_cycles = 0;
        let mut big = base.clone();
        big.cores = 32;
        big.report.cycles = 100;
        big.seq_cycles = 1000;
        let exp = ExperimentRecord {
            name: "x".to_string(),
            seed: 42,
            meta: vec![],
            runs: vec![base, big],
        };
        assert_eq!(exp.find("counter", "eager").unwrap().cores, 32);
        assert_eq!(exp.find_at("counter", "eager", 1).unwrap().cores, 1);
        assert_eq!(exp.speedup_of("counter", "eager"), Some(10.0));
        assert_eq!(exp.find("missing", "eager"), None);
    }

    #[test]
    fn schema_errors_are_descriptive() {
        let err = ExperimentRecord::from_json_str("{\"experiment\": \"x\"}").unwrap_err();
        assert!(err.contains("meta"), "{err}");
        let err = ExperimentRecord::from_json_str("not json").unwrap_err();
        assert!(err.contains("parse error"), "{err}");
    }
}
