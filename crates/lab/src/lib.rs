//! `retcon-lab` — experiment orchestration for the RETCON reproduction.
//!
//! The paper's entire evaluation (§5, Figures 1–10, Tables 1–3) is a
//! deterministic `System × Workload × cores` matrix. This crate turns
//! that matrix into a first-class subsystem with three layers:
//!
//! 1. **records** ([`record`], [`csv`]) — [`record::ExperimentRecord`] /
//!    [`record::RunRecord`] capture each run's full context and
//!    [`retcon_sim::SimReport`] cycle breakdown, with hand-rolled JSON
//!    (lossless) and CSV (flat, byte-stable) emitters *and* parsers, so
//!    result sets round-trip offline with no external dependencies;
//! 2. **runner** ([`runner`]) — a `std::thread`-scoped job-parallel
//!    executor that fans a job list across N workers and returns records
//!    bit-identical to serial execution (pinned by the root determinism
//!    suite at `--jobs 1/4/8`);
//! 3. **checks** ([`checks`]) — EXPERIMENTS.md's qualitative claims (who
//!    wins, by roughly what factor, where the crossovers sit) as a
//!    declarative expectation table evaluated against fresh records;
//! 4. **explore** ([`explore`]) — the `retcon-explore` campaign suite
//!    (seeded schedule fuzzing + bounded interleaving search with
//!    serializability oracles) emitted through the same record shapes.
//!
//! The `retcon-lab` binary ties them together:
//!
//! ```text
//! cargo run --release -p retcon-lab -- all --jobs 8 --out results/
//! cargo run --release -p retcon-lab -- run fig9 --jobs 8
//! cargo run --release -p retcon-lab -- check --quick
//! cargo run --release -p retcon-lab -- explore --quick --jobs 8
//! cargo run --release -p retcon-lab -- list
//! ```
//!
//! Every bin in `crates/bench/src/bin/` is a thin wrapper over
//! [`cli::bin_main`]: it regenerates its dataset through the same record
//! types and accepts `--json` / `--csv` / `--jobs N` on top of the
//! historical stdout table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod checks;
pub mod cli;
pub mod csv;
pub mod datasets;
pub mod engine;
pub mod explore;
pub mod record;
pub mod render;
pub mod runner;

pub use datasets::Dataset;
pub use engine::{FaultPlan, ReportCache, ResultStore, RunKey, SimCache};
pub use record::{ExperimentRecord, RunRecord};

/// The seed used for every reported experiment (runs are fully
/// deterministic).
pub const SEED: u64 = 42;

/// The paper's core count.
pub const CORES: usize = 32;
