//! Model-based property tests for the cache array and directory.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use retcon_isa::BlockAddr;
use retcon_mem::{CacheArray, CacheGeometry, CoreId, Directory, SpecBits};

/// Random cache operations checked against a naive reference model that
/// tracks only membership and capacity (replacement policy is the cache's
/// own business; membership and bounds are the invariants).
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Insert(u64),
    Remove(u64),
    Touch(u64),
    MarkSpec(u64),
    ClearSpec,
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..64).prop_map(CacheOp::Insert),
        (0u64..64).prop_map(CacheOp::Remove),
        (0u64..64).prop_map(CacheOp::Touch),
        (0u64..64).prop_map(CacheOp::MarkSpec),
        Just(CacheOp::ClearSpec),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_membership_and_capacity(ops in proptest::collection::vec(cache_op(), 1..200)) {
        let geometry = CacheGeometry { sets: 4, ways: 2 };
        let mut cache = CacheArray::new(geometry);
        // Reference: per-set membership sets.
        let mut model: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
        for op in ops {
            match op {
                CacheOp::Insert(b) => {
                    let set = geometry.set_of(BlockAddr(b));
                    let evicted = cache.insert(BlockAddr(b));
                    let entry = model.entry(set).or_default();
                    entry.insert(b);
                    if let Some((victim, _)) = evicted {
                        prop_assert_eq!(geometry.set_of(victim), set, "victim from wrong set");
                        prop_assert_ne!(victim.0, b, "evicted the block being inserted");
                        entry.remove(&victim.0);
                    }
                    prop_assert!(entry.len() <= geometry.ways, "set over capacity");
                }
                CacheOp::Remove(b) => {
                    let set = geometry.set_of(BlockAddr(b));
                    let was_present = model.entry(set).or_default().remove(&b);
                    prop_assert_eq!(cache.remove(BlockAddr(b)).is_some(), was_present);
                }
                CacheOp::Touch(b) => {
                    let set = geometry.set_of(BlockAddr(b));
                    let present = model.entry(set).or_default().contains(&b);
                    prop_assert_eq!(cache.touch(BlockAddr(b)), present);
                }
                CacheOp::MarkSpec(b) => {
                    let set = geometry.set_of(BlockAddr(b));
                    let present = model.entry(set).or_default().contains(&b);
                    let marked = cache.mark_spec(
                        BlockAddr(b),
                        SpecBits { read: true, written: false },
                    );
                    prop_assert_eq!(marked, present);
                }
                CacheOp::ClearSpec => {
                    cache.clear_all_spec();
                    prop_assert_eq!(cache.spec_blocks().count(), 0);
                }
            }
            // Global membership agreement.
            for b in 0u64..64 {
                let set = geometry.set_of(BlockAddr(b));
                let in_model = model.get(&set).map(|s| s.contains(&b)).unwrap_or(false);
                prop_assert_eq!(cache.contains(BlockAddr(b)), in_model, "block {}", b);
            }
            prop_assert_eq!(cache.len(), model.values().map(|s| s.len()).sum::<usize>());
        }
    }

    /// Directory invariants under random grant/drop sequences: at most one
    /// modified holder; holders reported consistently; a write grant makes
    /// the writer the only holder.
    #[test]
    fn directory_single_writer(ops in proptest::collection::vec(
        (0usize..4, 0u64..8, any::<bool>(), any::<bool>()), 1..200
    )) {
        let mut dir: Directory = Directory::new();
        for (core, block, write, drop) in ops {
            let core = CoreId(core);
            let block = BlockAddr(block);
            if drop {
                dir.drop_holder(core, block);
                prop_assert!(!dir.state(block).holds(core));
            } else if write {
                let victims = dir.grant_write(core, block);
                prop_assert!(!victims.contains(core.0));
                let state = dir.state(block);
                prop_assert!(state.holds_modified(core));
                prop_assert_eq!(state.holders(), vec![core]);
            } else {
                dir.grant_read(core, block);
                let state = dir.state(block);
                prop_assert!(state.holds(core));
                // Reader never ends up as someone else's modified copy.
                let modified_holders = (0..4)
                    .filter(|&c| state.holds_modified(CoreId(c)))
                    .count();
                prop_assert!(modified_holders <= 1);
            }
        }
    }
}
