//! The mutation-test protocol: an intentionally-broken TM the oracles
//! must catch.
//!
//! [`LostUpdateTm`] models the classic *lost update* bug: it serializes
//! write-write conflicts (a block's first transactional writer holds it
//! until commit; later writers stall), but performs **no read validation**
//! whatsoever. Two transactions that both read a counter before either
//! writes it will both base their update on the same initial value — the
//! second commit silently swallows the first's increment. No abort, no
//! stall on the racing read: every interleaving that separates a
//! transaction's read from its write across another's read-modify-write
//! loses an update.
//!
//! The shim exists to mutation-test the exploration oracles (a search
//! harness that cannot flag this protocol is not testing anything) and,
//! because it is driven through `Box<dyn Protocol>` →
//! [`AnyProtocol::Dyn`](retcon_htm::AnyProtocol), it is also the first
//! full-machine coverage of the `Dyn` adapter parity path beyond unit
//! tests.

use retcon_isa::table::BlockTable;
use retcon_isa::{Addr, Reg};
use retcon_mem::{AccessKind, CoreId, MemorySystem};

use retcon_htm::{CommitResult, MemResult, Protocol, ProtocolStats, RegUpdates};

#[derive(Debug, Default)]
struct CoreState {
    active: bool,
    /// Blocks this transaction owns for writing (released at commit).
    owned: Vec<u64>,
    stats: ProtocolStats,
}

/// A deliberately-unserializable TM: write-write conflicts stall, reads
/// validate nothing (see module docs).
#[derive(Debug)]
pub struct LostUpdateTm {
    cores: Vec<CoreState>,
    /// Per-block bitmask of active cores holding write ownership.
    writers: BlockTable<u64>,
}

impl LostUpdateTm {
    /// Creates the shim for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        LostUpdateTm {
            cores: (0..num_cores).map(|_| CoreState::default()).collect(),
            writers: BlockTable::new(),
        }
    }
}

impl Protocol for LostUpdateTm {
    fn name(&self) -> &'static str {
        "lost-update"
    }

    fn tx_begin(&mut self, core: CoreId, _now: u64) {
        self.cores[core.0].active = true;
    }

    fn tx_active(&self, core: CoreId) -> bool {
        self.cores[core.0].active
    }

    fn read(
        &mut self,
        core: CoreId,
        _dst: Reg,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem,
        _now: u64,
    ) -> MemResult {
        // The bug: transactional reads are never tracked or validated.
        let latency = mem.access(core, addr, AccessKind::Read, false);
        MemResult::Value {
            value: mem.read_word(addr),
            latency,
        }
    }

    fn write(
        &mut self,
        core: CoreId,
        _src: Option<Reg>,
        value: u64,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem,
        _now: u64,
    ) -> MemResult {
        if self.cores[core.0].active {
            let block = addr.block().0;
            let me = 1u64 << core.0;
            let holders = self.writers.get(block);
            if holders & !me != 0 {
                // Another active transaction owns the block: wait for its
                // commit. (Write-write conflicts are the only ones this
                // protocol notices.)
                self.cores[core.0].stats.stalls += 1;
                return MemResult::Stall;
            }
            if holders & me == 0 {
                *self.writers.entry(block) |= me;
                self.cores[core.0].owned.push(block);
            }
        }
        let latency = mem.access(core, addr, AccessKind::Write, false);
        mem.write_word(addr, value);
        MemResult::Value { value, latency }
    }

    fn commit(&mut self, core: CoreId, _mem: &mut MemorySystem, _now: u64) -> CommitResult {
        let me = 1u64 << core.0;
        let cs = &mut self.cores[core.0];
        debug_assert!(cs.active);
        for &block in &cs.owned {
            *self.writers.entry(block) &= !me;
        }
        cs.owned.clear();
        cs.active = false;
        cs.stats.commits += 1;
        CommitResult::Committed {
            latency: 0,
            reg_updates: RegUpdates::EMPTY,
        }
    }

    fn take_aborted(&mut self, _core: CoreId) -> bool {
        false
    }

    fn stats(&self, core: CoreId) -> &ProtocolStats {
        &self.cores[core.0].stats
    }

    fn check_quiescent(&self) -> Result<(), String> {
        for (i, cs) in self.cores.iter().enumerate() {
            if cs.active {
                return Err(format!("lost-update: core {i} still active"));
            }
            if !cs.owned.is_empty() {
                return Err(format!(
                    "lost-update: core {i} holds {} blocks at quiescence",
                    cs.owned.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Addr = Addr(0);

    #[test]
    fn loses_an_update_when_reads_interleave() {
        let mut mem = MemorySystem::new(retcon_mem::MemConfig::default(), 2);
        let mut tm = LostUpdateTm::new(2);
        tm.tx_begin(CoreId(0), 0);
        tm.tx_begin(CoreId(1), 0);
        let v0 = match tm.read(CoreId(0), Reg(1), A, None, &mut mem, 1) {
            MemResult::Value { value, .. } => value,
            other => panic!("{other:?}"),
        };
        let v1 = match tm.read(CoreId(1), Reg(1), A, None, &mut mem, 1) {
            MemResult::Value { value, .. } => value,
            other => panic!("{other:?}"),
        };
        // Both transactions read 0; their writes serialize via ownership,
        // but the second overwrites with its stale increment.
        assert!(matches!(
            tm.write(CoreId(0), None, v0 + 1, A, None, &mut mem, 2),
            MemResult::Value { .. }
        ));
        assert!(matches!(
            tm.write(CoreId(1), None, v1 + 1, A, None, &mut mem, 2),
            MemResult::Stall
        ));
        assert!(matches!(
            tm.commit(CoreId(0), &mut mem, 3),
            CommitResult::Committed { .. }
        ));
        assert!(matches!(
            tm.write(CoreId(1), None, v1 + 1, A, None, &mut mem, 4),
            MemResult::Value { .. }
        ));
        assert!(matches!(
            tm.commit(CoreId(1), &mut mem, 5),
            CommitResult::Committed { .. }
        ));
        assert_eq!(mem.read_word(A), 1, "two increments, one survivor");
        assert!(tm.check_quiescent().is_ok());
    }
}
