//! Seeded schedule fuzzing: many reproducible perturbations per scenario.
//!
//! Each run drives the scenario's machine with a
//! [`SeededFuzz`](retcon_sim::SeededFuzz) schedule under one seed of a
//! contiguous seed range; the whole campaign is a pure function of
//! `(scenario, system, budget)`. Distinct interleavings are counted by the
//! schedule's decision fingerprint.

use std::collections::HashSet;

use retcon_sim::{SeededFuzz, SimConfig};
use retcon_workloads::machine_for;

use crate::scenario::{Scenario, SystemUnderTest, Violation};

/// How much fuzzing a campaign performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzBudget {
    /// First schedule seed of the contiguous range.
    pub base_seed: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Eligibility window in cycles (see [`SeededFuzz`]).
    pub window: u64,
    /// Maximum stall jitter in cycles.
    pub max_jitter: u64,
}

/// One oracle violation found by fuzzing, replayable from its seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzViolation {
    /// The schedule seed that produced the failing interleaving; replay
    /// with `SeededFuzz::with_params(seed, window, max_jitter)` (or
    /// `retcon-run --schedule-seed` for default window/jitter).
    pub seed: u64,
    /// The failed check.
    pub violation: Violation,
}

/// Campaign totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// Schedules executed.
    pub runs: u64,
    /// Distinct interleavings among them (decision-fingerprint count).
    pub distinct: u64,
    /// Total scheduling decisions across all runs.
    pub decisions: u64,
    /// Every violation found, in seed order.
    pub violations: Vec<FuzzViolation>,
}

/// Runs the fuzz campaign. Deterministic: same inputs, same outcome.
///
/// # Panics
///
/// Panics if a run exceeds the simulator cycle cap — explore scenarios
/// are sized orders of magnitude below it, so a cap hit is a harness bug.
pub fn fuzz(scenario: &Scenario, system: SystemUnderTest, budget: &FuzzBudget) -> FuzzOutcome {
    let mut fingerprints = HashSet::new();
    let mut outcome = FuzzOutcome {
        runs: 0,
        distinct: 0,
        decisions: 0,
        violations: Vec::new(),
    };
    let cfg = SimConfig::with_cores(scenario.cores);
    for seed in budget.base_seed..budget.base_seed + budget.seeds {
        let mut machine = machine_for(&scenario.spec, system.protocol(scenario.cores), cfg);
        let mut sched = SeededFuzz::with_params(seed, budget.window, budget.max_jitter);
        let report = machine
            .run_with(&mut sched)
            .expect("explore scenario stays under the cycle cap");
        outcome.runs += 1;
        outcome.decisions += sched.decisions();
        fingerprints.insert(sched.trace_hash());
        if let Err(violation) = scenario.check(&machine, &report) {
            outcome.violations.push(FuzzViolation { seed, violation });
        }
    }
    outcome.distinct = fingerprints.len() as u64;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_workloads::System;

    #[test]
    fn fuzz_is_deterministic_and_schedules_are_distinct() {
        let scenario = Scenario::counter(3, 3);
        let budget = FuzzBudget {
            base_seed: 0,
            seeds: 40,
            window: 2,
            max_jitter: 3,
        };
        let a = fuzz(&scenario, SystemUnderTest::Builtin(System::Eager), &budget);
        let b = fuzz(&scenario, SystemUnderTest::Builtin(System::Eager), &budget);
        assert_eq!(a, b);
        assert_eq!(a.runs, 40);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        // Perturbation actually perturbs: nearly every seed is a new
        // interleaving.
        assert!(a.distinct >= 35, "only {} distinct schedules", a.distinct);
    }

    #[test]
    fn fuzz_flags_the_lost_update_mutation() {
        let scenario = Scenario::counter(2, 4);
        let budget = FuzzBudget {
            base_seed: 0,
            seeds: 10,
            window: 2,
            max_jitter: 3,
        };
        let out = fuzz(&scenario, SystemUnderTest::LostUpdate, &budget);
        assert!(
            !out.violations.is_empty(),
            "the broken protocol survived all seeds"
        );
        assert!(out.violations[0].violation.detail.contains("x-counter"));
    }
}
