//! Simulation reports: the measurement side of Figures 1, 3, 4, 9, 10 and
//! Table 3.

use retcon::RetconStats;
use retcon_htm::ProtocolStats;

/// Cycle breakdown of one core's execution, matching the categories of
/// Figure 4: *"busy represents all time spent not stalled on
/// synchronization. barrier represents time stalled at a barrier, an
/// indicator of load imbalance. conflict represents time spent either
/// stalled by another processor or doing work in a transaction that is
/// ultimately aborted. other represents all other sources of
/// synchronization-related stalls"* (here: commit processing, including
/// RETCON's pre-commit repair).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Useful work: committed transactional work plus non-transactional
    /// execution.
    pub busy: u64,
    /// Stall cycles plus work in ultimately-aborted transaction attempts.
    pub conflict: u64,
    /// Cycles parked at barriers (load imbalance).
    pub barrier: u64,
    /// Commit processing (validation, draining, pre-commit repair).
    pub other: u64,
}

impl TimeBreakdown {
    /// Sum of all buckets.
    pub fn total(&self) -> u64 {
        self.busy + self.conflict + self.barrier + self.other
    }

    /// Adds another breakdown's buckets into this one.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        self.busy += other.busy;
        self.conflict += other.conflict;
        self.barrier += other.barrier;
        self.other += other.other;
    }

    /// The fraction of total time in each bucket, as
    /// `(busy, conflict, barrier, other)`; all zeros for an empty
    /// breakdown.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.busy as f64 / t,
            self.conflict as f64 / t,
            self.barrier as f64 / t,
            self.other as f64 / t,
        )
    }
}

/// One core's contribution to the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreReport {
    /// Cycle breakdown.
    pub breakdown: TimeBreakdown,
    /// Dynamic instructions executed (committed and aborted work).
    pub instructions: u64,
    /// The core's finishing time.
    pub finished_at: u64,
}

/// The complete result of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Protocol name (e.g. `"eager"`, `"lazy-vb"`, `"RetCon"`).
    pub protocol_name: String,
    /// Total execution time: the cycle at which the last core halted.
    pub cycles: u64,
    /// Per-core details.
    pub per_core: Vec<CoreReport>,
    /// Aggregate protocol statistics (commits, aborts by cause, stalls).
    pub protocol: ProtocolStats,
    /// Aggregate RETCON structure statistics (Table 3), when the protocol
    /// collects them.
    pub retcon: Option<RetconStats>,
}

impl SimReport {
    /// Aggregate cycle breakdown across cores.
    pub fn breakdown(&self) -> TimeBreakdown {
        let mut total = TimeBreakdown::default();
        for c in &self.per_core {
            total.merge(&c.breakdown);
        }
        total
    }

    /// Speedup of this run over a sequential baseline taking `seq_cycles`.
    pub fn speedup_over(&self, seq_cycles: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        seq_cycles as f64 / self.cycles as f64
    }

    /// Abort-to-commit ratio, a quick conflict-pressure indicator.
    pub fn abort_ratio(&self) -> f64 {
        if self.protocol.commits == 0 {
            return 0.0;
        }
        self.protocol.aborts() as f64 / self.protocol.commits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = TimeBreakdown {
            busy: 60,
            conflict: 20,
            barrier: 15,
            other: 5,
        };
        assert_eq!(b.total(), 100);
        let (busy, conflict, barrier, other) = b.fractions();
        assert!((busy - 0.60).abs() < 1e-12);
        assert!((conflict - 0.20).abs() < 1e-12);
        assert!((barrier - 0.15).abs() < 1e-12);
        assert!((other - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_zero() {
        assert_eq!(TimeBreakdown::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_adds() {
        let mut a = TimeBreakdown {
            busy: 1,
            conflict: 2,
            barrier: 3,
            other: 4,
        };
        a.merge(&TimeBreakdown {
            busy: 10,
            conflict: 20,
            barrier: 30,
            other: 40,
        });
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn report_helpers() {
        let mut r = SimReport {
            cycles: 50,
            ..Default::default()
        };
        assert_eq!(r.speedup_over(100), 2.0);
        r.protocol.commits = 10;
        r.protocol.aborts_conflict = 5;
        assert_eq!(r.abort_ratio(), 0.5);
        r.per_core.push(CoreReport {
            breakdown: TimeBreakdown {
                busy: 7,
                ..Default::default()
            },
            ..Default::default()
        });
        assert_eq!(r.breakdown().busy, 7);
    }
}
