//! `retcon-serve` — a deduplicating, content-addressed experiment
//! service over the lab runner.
//!
//! The lab layer already has the hard parts of a service: byte-stable
//! JSON records, a deterministic job-parallel runner, and a shared report
//! cache ([`retcon_lab::engine`]). This crate lifts them into a
//! long-running daemon so a fleet of clients hammering overlapping
//! parameter sweeps gets mostly cache hits and the misses fan out across
//! a worker pool — the serving-stack shape of the ROADMAP's north star.
//!
//! Three layers:
//!
//! * [`proto`] — the wire format: line-delimited JSON over a plain TCP
//!   socket (`std::net` only; the build environment has no HTTP crates,
//!   so framing is hand-rolled the way `crates/lab` hand-rolls JSON).
//!   A sweep request names a `workloads × systems × cores × seeds`
//!   matrix; responses stream one record line per run *as runs finish*,
//!   then a `done` summary.
//! * [`server`] — the daemon: per-connection reader/writer threads, a
//!   content-addressed [`ResultStore`](retcon_lab::ResultStore) keyed by
//!   [`RunKey::content_hash`](retcon_lab::RunKey::content_hash), a
//!   **single-flight** in-flight table (concurrent requests for the same
//!   key join one execution), a FIFO work queue fanned across a worker
//!   pool, graceful drain on shutdown, and a `stats` request.
//! * [`client`] — a blocking client used by `examples/serve_client.rs`,
//!   the smoke tests and CI.
//!
//! **Determinism is the contract:** a served sweep's record set, ordered
//! by the request's canonical index, is byte-identical to running the
//! same matrix offline through `retcon_lab::runner::run_jobs` —
//! regardless of client interleaving, connection count, or cache state.
//! The root `tests/serve.rs` suite cmp-verifies this the way
//! `--jobs 1/8` byte-equality is pinned today.
//!
//! **Fault model (repair, not abort):** the daemon survives worker
//! panics (`catch_unwind` + bounded retry, then per-key quarantine),
//! poisoned mutexes (every lock recovers via `into_inner`), torn or
//! corrupt spill files (content-hash re-verified on read, failures
//! quarantined to a sidecar dir and never served), hostile request
//! lines (oversized / truncated / unknown types get a structured error
//! and the connection stays alive), and its own death: a restart on the
//! same `--spill` dir warm-starts the store so completed keys come back
//! as byte-identical hits. Faults are injected deterministically in
//! tests through [`retcon_lab::FaultPlan`]. DESIGN.md § Serving → Fault
//! model has the full taxonomy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientConfig};
pub use proto::{Request, Response, SweepRequest};
pub use server::{Server, ServerConfig};
