//! Cross-protocol equivalence: for workloads whose transactions *commute*
//! (pure additive updates), every protocol must produce bit-identical final
//! memory — the serialization order cannot matter, so any deviation is a
//! lost or phantom update in some protocol.

use proptest::prelude::*;

use retcon_isa::{Addr, BinOp, CmpOp, Operand, Program, ProgramBuilder, Reg};
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::{counter_total_transactions, SplitMix64, System, Workload};

/// Each transaction adds tape-provided deltas to `updates` counters chosen
/// by tape-provided indices (mod `pool`), with optional work between them.
fn additive_program(pool: u64, iters: u64, updates: u32, work: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let body = b.block();
    let done = b.block();
    b.imm(Reg(0), iters);
    b.jump(body);
    b.select(body);
    b.tx_begin();
    for _ in 0..updates {
        b.input(Reg(1)); // counter index
        b.input(Reg(2)); // delta
        b.bin(BinOp::Mod, Reg(1), Reg(1), Operand::Imm(pool as i64));
        b.bin(BinOp::Shl, Reg(1), Reg(1), Operand::Imm(3));
        b.load(Reg(3), Reg(1), 0);
        b.bin(BinOp::Add, Reg(3), Reg(3), Operand::Reg(Reg(2)));
        b.store(Operand::Reg(Reg(3)), Reg(1), 0);
        if work > 0 {
            b.work(work);
        }
    }
    b.tx_commit();
    b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
    b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
    b.select(done);
    b.halt();
    b.build().expect("program is well-formed")
}

/// Runs the additive workload under `system` and returns the final counter
/// values.
fn final_state(
    system: System,
    cores: usize,
    pool: u64,
    iters: u64,
    updates: u32,
    work: u32,
    seed: u64,
) -> Vec<u64> {
    let mut machine = Machine::new(
        SimConfig::with_cores(cores),
        system.protocol(cores),
        (0..cores)
            .map(|_| additive_program(pool, iters, updates, work))
            .collect(),
    );
    let mut rng = SplitMix64::new(seed);
    for c in 0..cores {
        let tape: Vec<u64> = (0..2 * iters * updates as u64)
            .map(|i| {
                if i % 2 == 0 {
                    rng.next_u64() >> 8 // index
                } else {
                    rng.below(50) // small delta
                }
            })
            .collect();
        machine.set_tape(c, tape);
    }
    machine.run().expect("run completes");
    (0..pool)
        .map(|i| machine.mem().read_word(Addr(i * 8)))
        .collect()
}

/// Smoke-test matrix: the paper's shared-counter program (Figure 2) run
/// under every protocol of the evaluation. Each transaction increments the
/// single shared counter at `Addr(0)` twice, so *any* serializable commit
/// order ends with `counter == 2 * transactions`; a protocol that loses or
/// phantoms an update, or double-commits a transaction, fails one of the
/// assertions below.
#[test]
fn shared_counter_smoke_matrix_all_protocols() {
    let cores = 4usize;
    let seed = 7u64;
    let mut states: Vec<(&'static str, Vec<u64>)> = Vec::new();
    for system in [
        System::Eager,
        System::Lazy,
        System::LazyVb,
        System::Retcon,
        System::Datm,
    ] {
        let spec = Workload::Counter.build(cores, seed);
        let txs = counter_total_transactions(cores);
        let mut machine = Machine::new(
            SimConfig::with_cores(cores),
            system.protocol(cores),
            spec.programs.clone(),
        );
        for (i, tape) in spec.tapes.iter().enumerate() {
            machine.set_tape(i, tape.clone());
        }
        for &(addr, value) in &spec.init {
            machine.init_word(addr, value);
        }
        let report = machine.run().expect("counter workload completes");

        // Serializable commit order: every transaction commits exactly once,
        // and the final counter equals the outcome of every serial order of
        // those commits.
        assert_eq!(
            report.protocol.commits,
            txs,
            "commit count under {} is not one-per-transaction",
            system.label()
        );
        assert_eq!(
            machine.mem().read_word(Addr(0)),
            2 * txs,
            "final counter under {} diverges from the serial oracle",
            system.label()
        );

        // Snapshot the counter's block for the cross-protocol comparison.
        let state: Vec<u64> = (0..8)
            .map(|w| machine.mem().read_word(Addr(w * 8)))
            .collect();
        states.push((system.label(), state));
    }
    // Identical final memory state across the whole matrix.
    let (first_label, first_state) = &states[0];
    for (label, state) in &states[1..] {
        assert_eq!(
            state, first_state,
            "final memory under {label} differs from {first_label}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Commutative workloads end in the same state under every protocol —
    /// and that state equals the oracle sum of all deltas.
    #[test]
    fn additive_workloads_agree_across_protocols(
        cores in 2usize..5,
        pool in 1u64..4,
        updates in 1u32..3,
        work in 0u32..20,
        seed in any::<u64>(),
    ) {
        let iters = 8u64;
        // Oracle: replay the tapes directly.
        let mut oracle = vec![0u64; pool as usize];
        let mut rng = SplitMix64::new(seed);
        for _ in 0..cores {
            for _ in 0..iters * updates as u64 {
                let idx = (rng.next_u64() >> 8) % pool;
                let delta = rng.below(50);
                oracle[idx as usize] = oracle[idx as usize].wrapping_add(delta);
            }
        }
        for system in [
            System::Eager,
            System::Lazy,
            System::LazyVb,
            System::Retcon,
            System::RetconIdeal,
        ] {
            let state = final_state(system, cores, pool, iters, updates, work, seed);
            prop_assert_eq!(
                &state, &oracle,
                "final state under {} diverges from the oracle", system.label()
            );
        }
    }
}
