//! Integration tests for the schedule-exploration subsystem: the
//! scheduler seam stays deterministic, fuzzed and searched schedules
//! preserve every serializability oracle on the real protocols, the
//! lost-update mutation is flagged with a replayable trace, and the
//! `explore` experiment records are byte-stable across job counts and
//! round-trip through both serialization formats.

use retcon_explore::{
    bounded_search, fuzz, replay, Campaign, FuzzBudget, Mode, Scenario, ScenarioSpec, SearchBudget,
    SystemUnderTest,
};
use retcon_isa::Addr;
use retcon_sim::SimConfig;
use retcon_workloads::{run_spec_configured, System, Workload};

/// `SimConfig::schedule_seed` (the `retcon-run --schedule-seed` path):
/// fuzzed runs are exactly reproducible from the seed, still
/// serializable, and actually explore different interleavings.
#[test]
fn schedule_seed_is_reproducible_and_serializable() {
    let spec = Workload::Counter.build(4, 42);
    let expected = 2 * retcon_workloads::counter_total_transactions(4);
    let run = |seed: u64| {
        let mut cfg = SimConfig::with_cores(4);
        cfg.schedule_seed = Some(seed);
        run_spec_configured(&spec, System::Eager.protocol(4), cfg).expect("fuzzed run completes")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.cycles, b.cycles, "same seed, same schedule");
    assert_eq!(a.protocol, b.protocol);
    assert_eq!(a.protocol.commits * 2, expected, "no lost updates");
    let cycles: Vec<u64> = (0..5).map(|s| run(s).cycles).collect();
    assert!(
        cycles.windows(2).any(|w| w[0] != w[1]),
        "five seeds produced one schedule: {cycles:?}"
    );
}

/// Fuzzed schedules across the protocol matrix against the *same* exact
/// final-state oracle — the cross-protocol agreement property under
/// schedule perturbation.
#[test]
fn fuzzed_schedules_preserve_oracles_across_protocols() {
    let scenario = Scenario::pool(3, 3, 3, 2, 7);
    let budget = FuzzBudget {
        base_seed: 1,
        seeds: 25,
        window: 2,
        max_jitter: 3,
    };
    for system in [System::Eager, System::LazyVb, System::Retcon, System::Datm] {
        let out = fuzz(&scenario, SystemUnderTest::Builtin(system), &budget);
        assert_eq!(out.runs, 25);
        assert!(
            out.violations.is_empty(),
            "{}: {:?}",
            system.label(),
            out.violations[0]
        );
        assert!(
            out.distinct > 15,
            "{}: schedules barely vary",
            system.label()
        );
    }
}

/// The bounded search: quiet on correct protocols, and the lost-update
/// mutation (running behind `AnyProtocol::Dyn`) is flagged within the CI
/// budget with a trace that replays to the same violation.
#[test]
fn bounded_search_flags_the_mutation_with_a_replayable_trace() {
    let scenario = Scenario::counter(2, 3);
    let budget = SearchBudget::quick();
    for system in [System::Eager, System::Retcon] {
        let out = bounded_search(&scenario, SystemUnderTest::Builtin(system), &budget);
        assert!(
            out.violation.is_none(),
            "false positive under {}: {:?}",
            system.label(),
            out.violation
        );
    }
    let out = bounded_search(&scenario, SystemUnderTest::LostUpdate, &budget);
    let found = out.violation.expect("mutation shim must be flagged");
    let replayed = replay(
        &scenario,
        SystemUnderTest::LostUpdate,
        &found.trace,
        budget.window,
    )
    .expect_err("the failing trace must reproduce its violation");
    assert_eq!(replayed, found.violation);
}

/// The mutation shim is also direct coverage of the `AnyProtocol::Dyn`
/// adapter in a full machine run: it executes, commits, and leaves memory
/// consistent with its (buggy) semantics — final counter strictly below
/// the serial oracle, never above.
#[test]
fn dyn_adapter_runs_the_mutation_shim_end_to_end() {
    let scenario = Scenario::counter(2, 4);
    let cfg = SimConfig::with_cores(2);
    let mut machine =
        retcon_workloads::machine_for(&scenario.spec, SystemUnderTest::LostUpdate.protocol(2), cfg);
    let report = machine.run().expect("shim run completes");
    assert_eq!(machine.protocol().name(), "lost-update");
    assert_eq!(report.protocol.commits, 8, "every transaction commits");
    let value = machine.mem().read_word(Addr(0));
    assert!(value <= 16, "phantom updates: {value}");
    assert!(
        machine.protocol().check_quiescent().is_ok(),
        "ownership must drain even in the buggy shim"
    );
}

/// The lab `explore` record: byte-identical at any `--jobs` count, and
/// losslessly round-trips through the JSON and CSV emitters like every
/// other dataset.
#[test]
fn explore_records_are_byte_stable_and_round_trip() {
    let campaigns = vec![
        Campaign {
            scenario: ScenarioSpec::Counter { cores: 2, iters: 2 },
            system: SystemUnderTest::Builtin(System::Eager),
            mode: Mode::Fuzz(FuzzBudget {
                base_seed: 1,
                seeds: 20,
                window: 2,
                max_jitter: 3,
            }),
            expect_violation: false,
        },
        Campaign {
            scenario: ScenarioSpec::Pool {
                cores: 2,
                pool: 2,
                iters: 2,
                incs: 1,
                seed: 5,
            },
            system: SystemUnderTest::Builtin(System::Retcon),
            mode: Mode::Search(SearchBudget {
                max_schedules: 40,
                max_branch_points: 16,
                window: 1,
            }),
            expect_violation: false,
        },
        Campaign {
            scenario: ScenarioSpec::Counter { cores: 2, iters: 2 },
            system: SystemUnderTest::LostUpdate,
            mode: Mode::Search(SearchBudget::quick()),
            expect_violation: true,
        },
    ];
    let serial = retcon_lab::explore::run_suite(&campaigns, "test", 1);
    assert!(serial.all_expected, "{}", serial.summary);
    let parallel = retcon_lab::explore::run_suite(&campaigns, "test", 4);
    let bytes = serial.record.to_json_string();
    assert_eq!(
        bytes,
        parallel.record.to_json_string(),
        "explore record differs between --jobs 1 and --jobs 4"
    );
    // Lossless JSON round-trip, stable CSV projection.
    let reparsed = retcon_lab::ExperimentRecord::from_json_str(&bytes).expect("JSON parses");
    assert_eq!(reparsed, serial.record);
    let csv = retcon_lab::csv::to_csv(&serial.record).expect("CSV emits");
    let via_csv = retcon_lab::csv::from_csv(&csv).expect("CSV parses");
    assert_eq!(
        retcon_lab::csv::to_csv(&via_csv).expect("CSV re-emits"),
        csv,
        "CSV projection is not byte-stable"
    );
    // The mutation campaign's replayable trace landed in the metadata.
    assert!(
        serial
            .record
            .meta
            .iter()
            .any(|(k, v)| k.starts_with("violation.") && v.contains("trace=")),
        "no replayable trace in record meta"
    );
}
