//! The eager-conflict-detection HTM baseline (§2 of the paper).

use retcon_isa::{Addr, CoreSet, Reg};
use retcon_mem::{AccessKind, CoreId, MemorySystem, UndoLog};

use crate::cm::{decide, Age, ConflictPolicy, Decision};
use crate::protocol::Protocol;
use crate::result::{AbortCause, CommitResult, MemResult, ProtocolStats, RegUpdates};
use crate::storm::{StallAction, StallStorm};

#[derive(Debug, Default)]
struct CoreState {
    active: bool,
    /// Cycle of the transaction's *first* begin; survives retries so the
    /// oldest transaction eventually wins.
    birth: Option<u64>,
    undo: UndoLog,
    aborted: bool,
    stats: ProtocolStats,
}

/// The baseline hardware transactional memory of §2: conflicts detected
/// eagerly through speculative cache bits, eager version management with an
/// undo log, zero-cycle rollback, and a configurable contention policy
/// (the baseline uses timestamp-based [`ConflictPolicy::OldestWins`]).
///
/// # Example
///
/// ```
/// use retcon_htm::{EagerTm, Protocol, MemResult, ConflictPolicy};
/// use retcon_mem::{MemorySystem, MemConfig, CoreId};
/// use retcon_isa::{Addr, CoreSet, Reg};
///
/// let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
/// let mut tm = EagerTm::new(2, ConflictPolicy::OldestWins);
/// tm.tx_begin(CoreId(0), 0);
/// let r = tm.write(CoreId(0), None, 7, Addr(0), None, &mut mem, 1);
/// assert!(matches!(r, MemResult::Value { value: 7, .. }));
///
/// // A younger conflicting transaction stalls behind the older one.
/// tm.tx_begin(CoreId(1), 5);
/// let r = tm.read(CoreId(1), Reg(0), Addr(0), None, &mut mem, 6);
/// assert_eq!(r, MemResult::Stall);
/// ```
#[derive(Debug)]
pub struct EagerTm<const N: usize = 1> {
    _class: core::marker::PhantomData<[u64; N]>,
    policy: ConflictPolicy,
    cores: Vec<CoreState>,
    /// Scratch: the victims of the conflict being resolved (reused so the
    /// contended steady state never allocates).
    victims: Vec<(CoreId, Age)>,
}

impl<const N: usize> EagerTm<N> {
    /// Creates the protocol for `num_cores` cores with the given contention
    /// policy.
    pub fn new(num_cores: usize, policy: ConflictPolicy) -> Self {
        EagerTm {
            _class: core::marker::PhantomData,
            policy,
            cores: (0..num_cores).map(|_| CoreState::default()).collect(),
            victims: Vec::new(),
        }
    }

    fn age(&self, core: CoreId) -> Option<Age> {
        let cs = &self.cores[core.0];
        if cs.active {
            Some((cs.birth.expect("active tx has a birth"), core.0))
        } else {
            None
        }
    }

    fn abort_core(
        &mut self,
        core: CoreId,
        mem: &mut MemorySystem<N>,
        cause: AbortCause,
        remote: bool,
    ) {
        let cs = &mut self.cores[core.0];
        debug_assert!(cs.active, "aborting an inactive transaction on {core}");
        cs.undo.rollback(mem.memory_mut());
        mem.clear_spec(core);
        cs.active = false;
        cs.aborted = remote;
        cs.stats.record_abort(cause);
    }

    /// Resolves the conflicts of a pending access (`conflicts` is the set
    /// of conflicting cores). Returns `None` when the requester may
    /// proceed (victims aborted), or the result to hand back.
    fn resolve(
        &mut self,
        core: CoreId,
        conflicts: CoreSet<N>,
        mem: &mut MemorySystem<N>,
    ) -> Option<MemResult> {
        let mut victims = std::mem::take(&mut self.victims);
        victims.clear();
        for c in conflicts {
            let c = CoreId(c);
            victims.push((
                c,
                self.age(c)
                    .expect("speculative bits imply an active transaction"),
            ));
        }
        let result = match decide(self.policy, self.age(core), &victims) {
            Decision::AbortVictims => {
                for &(v, _) in &victims {
                    self.abort_core(v, mem, AbortCause::Conflict, true);
                }
                None
            }
            Decision::StallRequester => {
                self.cores[core.0].stats.stalls += 1;
                Some(MemResult::Stall)
            }
            Decision::AbortRequester => {
                self.abort_core(core, mem, AbortCause::Conflict, false);
                Some(MemResult::Abort)
            }
        };
        self.victims = victims;
        result
    }
}

impl<const N: usize> Protocol<N> for EagerTm<N> {
    fn name(&self) -> &'static str {
        match self.policy {
            ConflictPolicy::OldestWins => "eager",
            ConflictPolicy::RequesterLoses => "eager-abort",
        }
    }

    fn tx_begin(&mut self, core: CoreId, now: u64) {
        let cs = &mut self.cores[core.0];
        debug_assert!(
            !cs.active,
            "nested transactions are flattened by the simulator"
        );
        cs.active = true;
        cs.birth.get_or_insert(now);
    }

    fn tx_active(&self, core: CoreId) -> bool {
        self.cores[core.0].active
    }

    fn read(
        &mut self,
        core: CoreId,
        _dst: Reg,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let spec = self.cores[core.0].active;
        let latency = match mem.plan_if_clean(core, addr, AccessKind::Read) {
            Ok(plan) => mem.access_planned(&plan, spec),
            Err(conflicts) => {
                if let Some(result) = self.resolve(core, conflicts, mem) {
                    return result;
                }
                // Resolution may have changed coherence state: classify now.
                mem.access(core, addr, AccessKind::Read, spec)
            }
        };
        MemResult::Value {
            value: mem.read_word(addr),
            latency,
        }
    }

    fn write(
        &mut self,
        core: CoreId,
        _src: Option<Reg>,
        value: u64,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let clean_plan = match mem.plan_if_clean(core, addr, AccessKind::Write) {
            Ok(plan) => Some(plan),
            Err(conflicts) => {
                if let Some(result) = self.resolve(core, conflicts, mem) {
                    return result;
                }
                None
            }
        };
        let spec = self.cores[core.0].active;
        if spec {
            // Eager version management: log the pre-speculative value, then
            // update memory in place.
            let cs = &mut self.cores[core.0];
            cs.undo.record(mem.memory(), addr);
        }
        let latency = match clean_plan {
            Some(plan) => mem.access_planned(&plan, spec),
            // Resolution may have changed coherence state: classify now.
            None => mem.access(core, addr, AccessKind::Write, spec),
        };
        mem.write_word(addr, value);
        MemResult::Value { value, latency }
    }

    fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, _now: u64) -> CommitResult {
        let cs = &mut self.cores[core.0];
        debug_assert!(cs.active, "commit without an active transaction on {core}");
        cs.undo.clear();
        cs.active = false;
        cs.birth = None;
        cs.stats.commits += 1;
        mem.clear_spec(core);
        CommitResult::Committed {
            latency: 0,
            reg_updates: RegUpdates::EMPTY,
        }
    }

    fn take_aborted(&mut self, core: CoreId) -> bool {
        std::mem::take(&mut self.cores[core.0].aborted)
    }

    fn abort_pending(&self, core: CoreId) -> bool {
        self.cores[core.0].aborted
    }

    fn stats(&self, core: CoreId) -> &ProtocolStats {
        &self.cores[core.0].stats
    }

    fn stall_storm(
        &self,
        core: CoreId,
        action: StallAction,
        mem: &MemorySystem<N>,
    ) -> Option<StallStorm<N>> {
        // Commits never stall here, and an access retry is a fixed point
        // exactly when the contention manager would stall the requester
        // again: the conflict mask and every age are frozen while this core
        // owns the scheduler, and a stalled retry mutates nothing but the
        // stall counter. Victims go on the stack — the dry run must not
        // allocate (the scratch holds 64 victims; wider conflicts decline
        // certification and retry step-by-step).
        let (addr, kind) = match action {
            StallAction::Read(a) => (a, AccessKind::Read),
            StallAction::Write(a) => (a, AccessKind::Write),
            StallAction::Commit => return None,
        };
        let conflicts = mem.conflict_mask_of(core, addr, kind);
        if conflicts.is_empty() {
            return None;
        }
        let mut victims = [(CoreId(0), (0u64, 0usize)); 64];
        let mut n = 0;
        for c in conflicts {
            if n == victims.len() {
                return None;
            }
            victims[n] = (CoreId(c), self.age(CoreId(c))?);
            n += 1;
        }
        match decide(self.policy, self.age(core), &victims[..n]) {
            Decision::StallRequester => Some(StallStorm::access(CoreSet::EMPTY, addr.block())),
            _ => None,
        }
    }

    fn apply_stall_retries(
        &mut self,
        core: CoreId,
        _storm: &StallStorm<N>,
        n: u64,
        _mem: &mut MemorySystem<N>,
    ) {
        // n repetitions of `resolve`'s StallRequester arm.
        self.cores[core.0].stats.stalls += n;
    }

    fn check_quiescent(&self) -> Result<(), String> {
        for (i, cs) in self.cores.iter().enumerate() {
            if cs.active {
                return Err(format!("eager: core {i} still has an active transaction"));
            }
            if cs.birth.is_some() {
                return Err(format!("eager: core {i} kept a transaction birth stamp"));
            }
            if !cs.undo.is_empty() {
                return Err(format!(
                    "eager: core {i} undo log holds {} entries at quiescence",
                    cs.undo.len()
                ));
            }
            if cs.aborted {
                return Err(format!("eager: core {i} has an undelivered abort flag"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_mem::MemConfig;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const A: Addr = Addr(0);

    fn setup(policy: ConflictPolicy) -> (MemorySystem, EagerTm) {
        (
            MemorySystem::new(MemConfig::default(), 2),
            EagerTm::new(2, policy),
        )
    }

    fn value(r: MemResult) -> u64 {
        match r {
            MemResult::Value { value, .. } => value,
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn non_conflicting_tx_commits() {
        let (mut mem, mut tm) = setup(ConflictPolicy::OldestWins);
        tm.tx_begin(C0, 0);
        assert!(tm.tx_active(C0));
        tm.write(C0, None, 5, A, None, &mut mem, 1);
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 2)), 5);
        let r = tm.commit(C0, &mut mem, 3);
        assert!(matches!(r, CommitResult::Committed { .. }));
        assert!(!tm.tx_active(C0));
        assert_eq!(tm.stats(C0).commits, 1);
        assert_eq!(mem.read_word(A), 5);
    }

    #[test]
    fn younger_requester_stalls_oldest_wins() {
        let (mut mem, mut tm) = setup(ConflictPolicy::OldestWins);
        tm.tx_begin(C0, 0);
        tm.write(C0, None, 5, A, None, &mut mem, 1);
        tm.tx_begin(C1, 10);
        assert_eq!(tm.read(C1, Reg(0), A, None, &mut mem, 11), MemResult::Stall);
        assert_eq!(tm.stats(C1).stalls, 1);
        // After C0 commits, C1 proceeds.
        tm.commit(C0, &mut mem, 12);
        assert_eq!(value(tm.read(C1, Reg(0), A, None, &mut mem, 13)), 5);
    }

    #[test]
    fn older_requester_aborts_younger_victim() {
        let (mut mem, mut tm) = setup(ConflictPolicy::OldestWins);
        tm.tx_begin(C1, 0);
        tm.write(C1, None, 9, A, None, &mut mem, 1);
        // C0 is older by birth 0? No: C1 born 0, C0 born 5 -> C0 younger.
        // Make C0 older: begin before C1... instead use non-tx access which
        // always wins.
        let v = value(tm.read(C0, Reg(0), A, None, &mut mem, 6));
        // C1's speculative write was rolled back before the read.
        assert_eq!(v, 0);
        assert!(tm.take_aborted(C1));
        assert!(!tm.tx_active(C1));
        assert_eq!(tm.stats(C1).aborts(), 1);
        assert_eq!(mem.read_word(A), 0);
    }

    #[test]
    fn timestamp_orders_two_txs() {
        let (mut mem, mut tm) = setup(ConflictPolicy::OldestWins);
        tm.tx_begin(C0, 0); // older
        tm.tx_begin(C1, 5); // younger
        tm.write(C1, None, 9, A, None, &mut mem, 6);
        // Older requester aborts the younger victim.
        let v = value(tm.write(C0, None, 7, A, None, &mut mem, 7));
        assert_eq!(v, 7);
        assert!(tm.take_aborted(C1));
        // C1's write rolled back, then C0's applied.
        assert_eq!(mem.read_word(A), 7);
    }

    #[test]
    fn requester_loses_policy_self_aborts() {
        let (mut mem, mut tm) = setup(ConflictPolicy::RequesterLoses);
        tm.tx_begin(C0, 0);
        tm.write(C0, None, 5, A, None, &mut mem, 1);
        tm.tx_begin(C1, 2);
        assert_eq!(tm.read(C1, Reg(0), A, None, &mut mem, 3), MemResult::Abort);
        assert!(!tm.tx_active(C1));
        // Self-aborts are reported via the return value, not the flag.
        assert!(!tm.take_aborted(C1));
        assert_eq!(tm.stats(C1).aborts_conflict, 1);
    }

    #[test]
    fn abort_restores_memory() {
        let (mut mem, mut tm) = setup(ConflictPolicy::OldestWins);
        mem.write_word(A, 100);
        tm.tx_begin(C1, 5);
        tm.write(C1, None, 1, A, None, &mut mem, 6);
        tm.write(C1, None, 2, A, None, &mut mem, 7);
        assert_eq!(mem.read_word(A), 2);
        // Non-tx reader aborts C1 and sees the pre-speculative value.
        let v = value(tm.read(C0, Reg(0), A, None, &mut mem, 8));
        assert_eq!(v, 100);
    }

    #[test]
    fn birth_survives_abort_for_fairness() {
        let (mut mem, mut tm) = setup(ConflictPolicy::OldestWins);
        tm.tx_begin(C1, 0);
        tm.write(C1, None, 1, A, None, &mut mem, 1);
        // Non-tx access aborts C1.
        let _ = tm.read(C0, Reg(0), A, None, &mut mem, 2);
        assert!(tm.take_aborted(C1));
        // Retry keeps the original birth (0), so C1 is older than a tx born
        // at cycle 5 and now wins the same conflict.
        tm.tx_begin(C1, 3);
        tm.tx_begin(C0, 5);
        tm.write(C0, None, 7, A, None, &mut mem, 6);
        let r = tm.write(C1, None, 9, A, None, &mut mem, 7);
        assert!(matches!(r, MemResult::Value { .. }));
        assert!(tm.take_aborted(C0));
    }

    #[test]
    fn read_read_sharing_no_conflict() {
        let (mut mem, mut tm) = setup(ConflictPolicy::OldestWins);
        mem.write_word(A, 3);
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 2)), 3);
        assert_eq!(value(tm.read(C1, Reg(0), A, None, &mut mem, 3)), 3);
        assert!(matches!(
            tm.commit(C0, &mut mem, 4),
            CommitResult::Committed { .. }
        ));
        assert!(matches!(
            tm.commit(C1, &mut mem, 5),
            CommitResult::Committed { .. }
        ));
    }
}
