//! The enabled tracer: a preallocated ring buffer of fixed-width
//! events.
//!
//! All memory is allocated once, in [`RingTracer::with_capacity`] —
//! recording an event into a full ring overwrites the oldest event and
//! bumps a drop counter, so the simulator's steady state never
//! allocates with tracing on either. Tests that pin event streams
//! assert `dropped() == 0` first: a stream hash only identifies a
//! *complete* stream.

use crate::event::{EventKind, TraceEvent, Tracer};

/// Default ring capacity (events). Sized from the heaviest traced shape
/// in the suite: 32-core unoptimized `python` under RetCon emits ~1.6M
/// events (commits + aborts + per-episode stalls + storm fast-forwards),
/// so 4M leaves ~2.5x headroom before anything drops.
pub const DEFAULT_CAPACITY: usize = 1 << 22;

/// A drop-oldest ring buffer of [`TraceEvent`]s with a deterministic
/// stream hash.
#[derive(Debug, Clone)]
pub struct RingTracer {
    buf: Vec<TraceEvent>,
    /// Index of the next write (== oldest event once the ring wrapped).
    head: usize,
    /// Events currently held (`<= buf.capacity()`).
    len: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    capacity: usize,
}

impl Default for RingTracer {
    fn default() -> Self {
        RingTracer::with_capacity(DEFAULT_CAPACITY)
    }
}

impl RingTracer {
    /// A ring holding at most `capacity` events, fully preallocated
    /// here (the one allocation this tracer ever makes).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> RingTracer {
        assert!(capacity > 0, "a zero-capacity ring can hold nothing");
        RingTracer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events have been recorded (or all were dropped).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten by newer ones (0 means the stream is
    /// complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum events the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let start = if self.len < self.capacity {
            0
        } else {
            self.head
        };
        (0..self.len).map(move |i| &self.buf[(start + i) % self.capacity])
    }

    /// How many held events are of `kind`.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.events().filter(|e| e.kind == kind as u8).count() as u64
    }

    /// Appends `other`'s events (oldest first) with every core id
    /// shifted by `core_offset` — the shard-merge primitive: shard `s`
    /// traced its cores locally from zero, the merge restores global
    /// numbering.
    pub fn extend_offset(&mut self, other: &RingTracer, core_offset: usize) {
        for e in other.events() {
            self.push(TraceEvent {
                core: (e.core as usize + core_offset).min(u16::MAX as usize) as u16,
                ..*e
            });
        }
        self.dropped += other.dropped;
    }

    /// A deterministic FNV-1a hash of the complete event stream (order,
    /// fields, and drop count all included) — the value determinism
    /// tests pin: same `(config, seed)` must reproduce it exactly.
    pub fn stream_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.len as u64);
        mix(self.dropped);
        for e in self.events() {
            mix(e.at);
            mix(e.arg);
            mix(u64::from(e.core) << 8 | u64::from(e.kind));
        }
        h
    }

    fn push(&mut self, e: TraceEvent) {
        if self.len < self.capacity {
            debug_assert_eq!(self.head, 0, "head moves only once full");
            self.buf.push(e);
            self.len += 1;
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn record(&mut self, core: usize, kind: EventKind, at: u64, arg: u64) {
        self.push(TraceEvent::new(core, kind, at, arg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_below_capacity() {
        let mut r = RingTracer::with_capacity(8);
        for i in 0..5u64 {
            r.record(i as usize, EventKind::TxBegin, i * 10, i);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let ats: Vec<u64> = r.events().map(|e| e.at).collect();
        assert_eq!(ats, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut r = RingTracer::with_capacity(3);
        for i in 0..5u64 {
            r.record(0, EventKind::Commit, i, 0);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ats: Vec<u64> = r.events().map(|e| e.at).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest first, oldest dropped");
        assert_eq!(r.count(EventKind::Commit), 3);
    }

    #[test]
    fn stream_hash_is_deterministic_and_field_sensitive() {
        let mut a = RingTracer::with_capacity(16);
        let mut b = RingTracer::with_capacity(16);
        for r in [&mut a, &mut b] {
            r.record(1, EventKind::TxBegin, 5, 0);
            r.record(1, EventKind::Commit, 9, 2);
        }
        assert_eq!(a.stream_hash(), b.stream_hash());
        b.record(2, EventKind::Abort, 11, 0);
        assert_ne!(a.stream_hash(), b.stream_hash());
    }

    #[test]
    fn extend_offset_renumbers_cores() {
        let mut shard = RingTracer::with_capacity(4);
        shard.record(0, EventKind::Commit, 7, 1);
        shard.record(1, EventKind::Abort, 8, 0);
        let mut merged = RingTracer::with_capacity(8);
        merged.extend_offset(&shard, 16);
        let cores: Vec<u16> = merged.events().map(|e| e.core).collect();
        assert_eq!(cores, vec![16, 17]);
    }
}
