//! Figure 2: the two-increment counter schedule under five designs.
//!
//! Two processors each run transactions performing two increments of one
//! shared counter. The paper's qualitative claims:
//!
//! * (a) RETCON: both commit concurrently, repairing at commit — no aborts;
//! * (b) DATM: forwarding admits one increment, but the second closes a
//!   dependence cycle — some aborts, fewer than pure eager;
//! * (c) Eager (abort-requester): the loser aborts repeatedly until the
//!   winner commits;
//! * (d) Eager-Stall (oldest wins): the younger stalls instead of aborting;
//! * (e) Lazy: the loser runs to commit and then aborts.
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Fig2)
}
