//! The twelve figure/table datasets of the paper's evaluation, as job
//! lists plus assembly into [`ExperimentRecord`]s.
//!
//! Each [`Dataset`] knows the `System × Workload × cores` sub-matrix that
//! regenerates one artifact of §5 (the same matrices the bins in
//! `crates/bench/src/bin/` historically ran serially and printed as ad-hoc
//! tables). `table1` and `table2` carry no simulations — they are static
//! inventories emitted as metadata records, so `retcon-lab -- all` writes
//! machine-readable output for *every* artifact.
//!
//! Conventions:
//!
//! * runs are at [`crate::CORES`] with [`crate::SEED`] unless the dataset
//!   sweeps cores;
//! * datasets that report speedups include a 1-core eager run per workload,
//!   and assembly wires its cycle count into every same-workload record's
//!   `seq_cycles` (the 1-core eager run *is* the sequential baseline —
//!   `retcon_workloads::sequential_baseline` does exactly this);
//! * job order is canonical; together with the runner's index-addressed
//!   collection this makes record files byte-reproducible at any
//!   `--jobs` count.

use crate::record::ExperimentRecord;
use crate::runner::{run_jobs_cached, Job, ReportCache};
use crate::{CORES, SEED};
use retcon::RetconConfig;
use retcon_sim::{SimConfig, SimError};
use retcon_workloads::{System, Workload};
use std::collections::HashMap;

/// One regenerable artifact of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Table 1 — simulated machine configuration (static).
    Table1,
    /// Table 2 — workload inventory and static footprints (static).
    Table2,
    /// Figure 1 — eager-baseline scalability at 32 cores.
    Fig1,
    /// Figure 2 — the two-increment counter schedule under five designs.
    Fig2,
    /// Figure 3 — scalability before/after software restructurings.
    Fig3,
    /// Figure 4 — runtime breakdown on the eager baseline.
    Fig4,
    /// Figure 9 — eager vs lazy-vb vs RETCON vs DATM scalability.
    Fig9,
    /// Figure 10 — runtime breakdown normalized to eager.
    Fig10,
    /// Table 3 — RETCON structure utilization and pre-commit overhead.
    Table3,
    /// §5.3 — default RETCON vs the idealized variant.
    AblationIdeal,
    /// Structure-size and predictor-threshold sweeps.
    AblationSizes,
    /// Core-count scaling sweep (1–32) for selected workloads.
    Scaling,
    /// Past-the-paper core scaling (64–1024) on the group-local counter
    /// workload. Deliberately excluded from [`Dataset::ALL`]: the `all`
    /// record set is pinned byte-for-byte against committed manifests,
    /// and this dataset exists to exercise the wider `CoreSet` size
    /// classes beyond it. Run it explicitly: `retcon-lab run scaling_xl`.
    ScalingXl,
}

/// The initial-value-buffer capacities `ablation_sizes` sweeps.
pub const IVB_SWEEP: [usize; 5] = [1, 2, 4, 16, 64];
/// The symbolic-store-buffer capacities `ablation_sizes` sweeps.
pub const SSB_SWEEP: [usize; 4] = [2, 8, 32, 128];
/// The constraint-buffer capacities `ablation_sizes` sweeps.
pub const CB_SWEEP: [usize; 4] = [1, 4, 16, 64];
/// The predictor violation-backoff values `ablation_sizes` sweeps (yada).
pub const BACKOFF_SWEEP: [u32; 4] = [0, 10, 100, 1000];
/// The core counts the `scaling` sweep visits.
pub const SCALING_CORES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// The core counts the `scaling_xl` sweep visits — one per `CoreSet`
/// size class (1/2/4/8/16 words).
pub const XL_SCALING_CORES: [usize; 5] = [64, 128, 256, 512, 1024];

/// The workloads `ablation_sizes` sweeps structure sizes on.
pub fn ablation_workloads() -> [Workload; 3] {
    [
        Workload::Genome { resizable: true },
        Workload::Python { optimized: true },
        Workload::Vacation {
            optimized: true,
            resizable: true,
        },
    ]
}

/// The workloads the `scaling` sweep covers.
pub fn scaling_workloads() -> [Workload; 3] {
    [
        Workload::Counter,
        Workload::Genome { resizable: true },
        Workload::Python { optimized: true },
    ]
}

impl Dataset {
    /// Every dataset, in regeneration order.
    pub const ALL: [Dataset; 12] = [
        Dataset::Table1,
        Dataset::Table2,
        Dataset::Fig1,
        Dataset::Fig2,
        Dataset::Fig3,
        Dataset::Fig4,
        Dataset::Fig9,
        Dataset::Fig10,
        Dataset::Table3,
        Dataset::AblationIdeal,
        Dataset::AblationSizes,
        Dataset::Scaling,
    ];

    /// The dataset's file/CLI name (matches the historical bin name).
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Table1 => "table1",
            Dataset::Table2 => "table2",
            Dataset::Fig1 => "fig1",
            Dataset::Fig2 => "fig2",
            Dataset::Fig3 => "fig3",
            Dataset::Fig4 => "fig4",
            Dataset::Fig9 => "fig9",
            Dataset::Fig10 => "fig10",
            Dataset::Table3 => "table3",
            Dataset::AblationIdeal => "ablation_ideal",
            Dataset::AblationSizes => "ablation_sizes",
            Dataset::Scaling => "scaling",
            Dataset::ScalingXl => "scaling_xl",
        }
    }

    /// Looks a dataset up by [`Dataset::name`]. Covers every member of
    /// [`Dataset::ALL`] plus the run-explicitly extras ([`Dataset::ScalingXl`]).
    pub fn parse(name: &str) -> Option<Dataset> {
        Dataset::ALL
            .into_iter()
            .chain([Dataset::ScalingXl])
            .find(|d| d.name() == name)
    }

    /// One-line description (the paper artifact).
    pub fn title(self) -> &'static str {
        match self {
            Dataset::Table1 => "Table 1 — simulated machine configuration",
            Dataset::Table2 => "Table 2 — workload inventory",
            Dataset::Fig1 => "Figure 1 — scalability of the aggressive eager HTM, 32 cores",
            Dataset::Fig2 => "Figure 2 — two-increment counter schedule under five designs",
            Dataset::Fig3 => "Figure 3 — scalability before/after software restructurings",
            Dataset::Fig4 => "Figure 4 — runtime breakdown on the baseline",
            Dataset::Fig9 => "Figure 9 — eager vs lazy-vb vs RetCon vs DATM scalability",
            Dataset::Fig10 => "Figure 10 — runtime breakdown normalized to eager",
            Dataset::Table3 => "Table 3 — RETCON structure utilization and pre-commit overhead",
            Dataset::AblationIdeal => "§5.3 — default RETCON vs the idealized variant",
            Dataset::AblationSizes => "structure-size and predictor-threshold sweeps",
            Dataset::Scaling => "core-count sweep (1–32) for selected workloads",
            Dataset::ScalingXl => "past-the-paper core sweep (64–1024), not part of `all`",
        }
    }

    /// The canonical job list regenerating this dataset (empty for the
    /// static tables).
    pub fn jobs(self) -> Vec<Job> {
        let base = |w: Workload| Job::new(w, System::Eager, 1, SEED);
        let at_scale = |w: Workload, s: System| Job::new(w, s, CORES, SEED);
        let mut jobs = Vec::new();
        match self {
            Dataset::Table1 | Dataset::Table2 => {}
            Dataset::Fig1 => {
                for w in Workload::fig1() {
                    jobs.push(base(w));
                    jobs.push(at_scale(w, System::Eager));
                }
            }
            Dataset::Fig2 => {
                for s in [
                    System::Retcon,
                    System::Datm,
                    System::EagerAbort,
                    System::Eager,
                    System::Lazy,
                ] {
                    jobs.push(Job::new(Workload::Counter, s, 2, SEED));
                }
            }
            Dataset::Fig3 => {
                for w in Workload::fig9() {
                    jobs.push(base(w));
                    jobs.push(at_scale(w, System::Eager));
                }
            }
            Dataset::Fig4 => {
                for w in Workload::fig9() {
                    jobs.push(at_scale(w, System::Eager));
                }
            }
            Dataset::Fig9 => {
                for w in Workload::fig9() {
                    jobs.push(base(w));
                    for s in System::FIG9 {
                        jobs.push(at_scale(w, s));
                    }
                }
            }
            Dataset::Fig10 => {
                for w in Workload::fig9() {
                    for s in System::FIG9 {
                        jobs.push(at_scale(w, s));
                    }
                }
            }
            Dataset::Table3 => {
                for w in Workload::all() {
                    jobs.push(at_scale(w, System::Retcon));
                }
            }
            Dataset::AblationIdeal => {
                for w in Workload::fig9() {
                    jobs.push(base(w));
                    jobs.push(at_scale(w, System::Retcon));
                    jobs.push(at_scale(w, System::RetconIdeal));
                }
            }
            Dataset::AblationSizes => {
                for w in ablation_workloads() {
                    jobs.push(base(w));
                    for cap in IVB_SWEEP {
                        jobs.push(sweep_job(w, "ivb", cap, |cfg, v| cfg.ivb_capacity = v));
                    }
                    for cap in SSB_SWEEP {
                        jobs.push(sweep_job(w, "ssb", cap, |cfg, v| cfg.ssb_capacity = v));
                    }
                    for cap in CB_SWEEP {
                        jobs.push(sweep_job(w, "cb", cap, |cfg, v| {
                            cfg.constraint_capacity = v;
                        }));
                    }
                }
                jobs.push(base(Workload::Yada));
                for backoff in BACKOFF_SWEEP {
                    let cfg = RetconConfig {
                        violation_backoff: backoff,
                        ..RetconConfig::default()
                    };
                    jobs.push(Job::with_cfg(
                        Workload::Yada,
                        CORES,
                        SEED,
                        cfg,
                        vec![("backoff".to_string(), backoff.to_string())],
                    ));
                }
            }
            Dataset::Scaling => {
                for w in scaling_workloads() {
                    for n in SCALING_CORES {
                        jobs.push(Job::new(w, System::Eager, n, SEED));
                        jobs.push(Job::new(w, System::Retcon, n, SEED));
                    }
                }
            }
            Dataset::ScalingXl => {
                // No 1-core sequential baseline: the workload's total work
                // grows with the core count, so a fixed-work speedup curve
                // is meaningless — the record reports raw cycles.
                for n in XL_SCALING_CORES {
                    for s in [System::Eager, System::LazyVb, System::Retcon] {
                        jobs.push(Job::new(Workload::ScalingXl, s, n, SEED));
                    }
                }
            }
        }
        jobs
    }

    /// Regenerates the dataset: runs its jobs on `workers` threads, wires
    /// sequential baselines, and assembles the record.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] (in job order).
    pub fn collect(self, workers: usize) -> Result<ExperimentRecord, SimError> {
        self.collect_cached(workers, &ReportCache::new())
    }

    /// [`Dataset::collect`] with a shared [`ReportCache`], so overlapping
    /// datasets reuse simulations (`fig10` is a strict subset of `fig9`'s
    /// at-scale matrix; `ablation_ideal` repeats its baselines). The
    /// record is identical either way — simulations are deterministic.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] (in job order).
    pub fn collect_cached(
        self,
        workers: usize,
        cache: &ReportCache,
    ) -> Result<ExperimentRecord, SimError> {
        match self {
            Dataset::Table1 => Ok(table1_record()),
            Dataset::Table2 => Ok(table2_record()),
            _ => {
                let jobs = self.jobs();
                let mut runs = run_jobs_cached(&jobs, workers, cache)?;
                wire_baselines(&mut runs);
                Ok(ExperimentRecord {
                    name: self.name().to_string(),
                    seed: SEED,
                    meta: Vec::new(),
                    runs,
                })
            }
        }
    }
}

fn sweep_job(
    w: Workload,
    knob: &str,
    cap: usize,
    apply: impl FnOnce(&mut RetconConfig, usize),
) -> Job {
    let mut cfg = RetconConfig::default();
    apply(&mut cfg, cap);
    Job::with_cfg(
        w,
        CORES,
        SEED,
        cfg,
        vec![(knob.to_string(), cap.to_string())],
    )
}

/// Fills `seq_cycles` of every record from its workload's 1-core eager
/// run, where the record set contains one.
pub(crate) fn wire_baselines(runs: &mut [crate::record::RunRecord]) {
    let baselines: HashMap<String, u64> = runs
        .iter()
        .filter(|r| r.system == System::Eager.label() && r.cores == 1)
        .map(|r| (r.workload.clone(), r.report.cycles))
        .collect();
    for run in runs {
        if let Some(&seq) = baselines.get(&run.workload) {
            run.seq_cycles = seq;
        }
    }
}

/// Table 1 as a metadata record: every knob of the simulated machine.
fn table1_record() -> ExperimentRecord {
    let cfg = SimConfig::default();
    let rc = RetconConfig::default();
    let lat = cfg.mem.latency;
    let meta: Vec<(String, String)> = [
        ("cores", cfg.num_cores.to_string()),
        (
            "l1_kb",
            (cfg.mem.l1.capacity_blocks() * 64 / 1024).to_string(),
        ),
        ("l1_ways", cfg.mem.l1.ways.to_string()),
        ("l1_sets", cfg.mem.l1.sets.to_string()),
        (
            "l2_mb",
            (cfg.mem.l2.capacity_blocks() * 64 / 1024 / 1024).to_string(),
        ),
        ("l2_ways", cfg.mem.l2.ways.to_string()),
        ("l2_hit_cycles", lat.l2_hit.to_string()),
        ("dram_cycles", lat.dram.to_string()),
        ("hop_cycles", lat.hop.to_string()),
        ("ivb_entries", rc.ivb_capacity.to_string()),
        ("constraint_entries", rc.constraint_capacity.to_string()),
        ("ssb_entries", rc.ssb_capacity.to_string()),
        ("predictor_threshold", rc.initial_threshold.to_string()),
        ("violation_backoff", rc.violation_backoff.to_string()),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    ExperimentRecord {
        name: "table1".to_string(),
        seed: SEED,
        meta,
        runs: Vec::new(),
    }
}

/// The Table 2 model descriptions, in display order.
pub fn table2_descriptions() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "counter",
            "Figure 2 micro: two increments of one shared counter per tx",
        ),
        ("genome", "hashtable segment inserts, fixed-size table"),
        (
            "genome-sz",
            "variant with resizable table (shared size-field increment per insert)",
        ),
        (
            "intruder",
            "shared in/out queues feed addresses + tree-rebalance hot words",
        ),
        ("intruder_opt", "thread-private queues, fixed hashtable map"),
        (
            "intruder_opt-sz",
            "optimized variant with resizable (size-tracked) map",
        ),
        (
            "kmeans",
            "cluster-centre accumulation with untrackable (multiply) updates",
        ),
        (
            "labyrinth",
            "pre-tx grid copy; long variable-length routing transactions",
        ),
        (
            "ssca2",
            "tiny transactions, scattered graph updates (coherence-bound)",
        ),
        (
            "vacation",
            "read-mostly reservations + tree-rebalance hot words",
        ),
        ("vacation_opt", "hashtable tables, no rebalancing"),
        (
            "vacation_opt-sz",
            "optimized variant with size-tracked orders table",
        ),
        (
            "yada",
            "pointer-chasing cavity refinement (loaded values feed addresses)",
        ),
        (
            "python",
            "GIL elision: hot refcounts + shared address-feeding free list",
        ),
        (
            "python_opt",
            "interpreter globals made thread-private; refcounts remain",
        ),
    ]
}

/// Table 2 as a metadata record: model descriptions plus the static
/// footprint (programs, total instructions, tape words) of each
/// 32-core build.
fn table2_record() -> ExperimentRecord {
    let mut meta: Vec<(String, String)> = table2_descriptions()
        .iter()
        .map(|(name, desc)| (format!("desc:{name}"), desc.to_string()))
        .collect();
    for w in Workload::all() {
        let spec = w.build(CORES, SEED);
        let instr: usize = spec.programs.iter().map(|p| p.len()).sum();
        let tape: usize = spec.tapes.iter().map(|t| t.len()).sum();
        meta.push((
            format!("footprint:{}", w.label()),
            format!(
                "programs={};instr={};tape={}",
                spec.programs.len(),
                instr,
                tape
            ),
        ));
    }
    ExperimentRecord {
        name: "table2".to_string(),
        seed: SEED,
        meta,
        runs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.name()), Some(d));
            assert!(!d.title().is_empty());
        }
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn static_tables_have_metadata() {
        let t1 = Dataset::Table1.collect(1).unwrap();
        assert!(t1.runs.is_empty());
        assert_eq!(t1.meta_value("ivb_entries"), Some("16"));
        assert_eq!(t1.meta_value("ssb_entries"), Some("32"));

        let t2 = Dataset::Table2.collect(1).unwrap();
        assert_eq!(
            t2.meta
                .iter()
                .filter(|(k, _)| k.starts_with("desc:"))
                .count(),
            15
        );
        assert_eq!(
            t2.meta
                .iter()
                .filter(|(k, _)| k.starts_with("footprint:"))
                .count(),
            15
        );
    }

    #[test]
    fn job_lists_are_canonical() {
        // fig9: per workload a baseline plus the four compared systems.
        assert_eq!(Dataset::Fig9.jobs().len(), 14 * 5);
        // fig10 reuses the comparison without baselines.
        assert_eq!(Dataset::Fig10.jobs().len(), 14 * 4);
        // fig2 runs the counter under five designs at two cores.
        let fig2 = Dataset::Fig2.jobs();
        assert_eq!(fig2.len(), 5);
        assert!(fig2.iter().all(|j| j.cores == 2));
        // scaling: three workloads, six core counts, two systems.
        assert_eq!(Dataset::Scaling.jobs().len(), 3 * 6 * 2);
        // ablation_sizes: 3 workloads × (1 + 5 + 4 + 4) + yada (1 + 4).
        assert_eq!(Dataset::AblationSizes.jobs().len(), 3 * 14 + 5);
        // Static tables run nothing.
        assert!(Dataset::Table1.jobs().is_empty());
        assert!(Dataset::Table2.jobs().is_empty());
    }

    #[test]
    fn baselines_wire_into_same_workload_runs() {
        // Miniature dataset: counter baseline + 2-core runs.
        let jobs = vec![
            Job::new(Workload::Counter, System::Eager, 1, SEED),
            Job::new(Workload::Counter, System::Retcon, 2, SEED),
        ];
        let mut runs = crate::runner::run_jobs(&jobs, 1).unwrap();
        wire_baselines(&mut runs);
        let seq = runs[0].report.cycles;
        assert!(seq > 0);
        assert_eq!(runs[0].seq_cycles, seq);
        assert_eq!(runs[1].seq_cycles, seq);
        assert!(runs[1].speedup().is_some());
    }
}
