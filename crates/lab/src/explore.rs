//! The `retcon-lab -- explore` command: runs the schedule-exploration
//! campaign suite and emits the standard experiment record shapes.
//!
//! Each campaign becomes one [`RunRecord`]: the record's report is the
//! scenario's *default-schedule* run (deterministic, so the record set is
//! byte-identical at any `--jobs` count and across hosts), and the
//! exploration outcome rides in the knobs (`mode`, `schedules`,
//! `distinct`, …). Violations are serialized into the record metadata as
//! replayable descriptions — `seed=…` for fuzzed schedules, `trace=…`
//! choice traces for searched ones.

use crate::record::{ExperimentRecord, RunRecord};
use retcon_explore::{run_campaigns, suite, Campaign, CampaignResult, Mode, SystemUnderTest};
use std::collections::BTreeMap;

/// The assembled outcome of one `explore` invocation.
#[derive(Debug)]
pub struct ExploreRun {
    /// The experiment record (JSON/CSV payload).
    pub record: ExperimentRecord,
    /// The stdout summary table.
    pub summary: String,
    /// Whether every campaign met its expectation: no violations on the
    /// correct protocols, violations on the mutation shim. The smoke exit
    /// code.
    pub all_expected: bool,
}

/// Runs the suite and assembles record + summary. Pure function of
/// `(quick, jobs)` up to thread scheduling, which the index-addressed
/// campaign runner makes invisible — record bytes are identical at any
/// `--jobs` count.
pub fn run(quick: bool, jobs: usize) -> ExploreRun {
    run_suite(&suite(quick), if quick { "quick" } else { "full" }, jobs)
}

/// [`run`] over an explicit campaign list (tests use miniature suites).
pub fn run_suite(campaigns: &[Campaign], budget_label: &str, jobs: usize) -> ExploreRun {
    let results = run_campaigns(campaigns, jobs);
    let record = record_from(budget_label, &results);
    let (summary, all_expected) = summarize(&results, &record);
    ExploreRun {
        record,
        summary,
        all_expected,
    }
}

fn knob(key: &str, value: impl ToString) -> (String, String) {
    (key.to_string(), value.to_string())
}

fn record_from(budget_label: &str, results: &[CampaignResult]) -> ExperimentRecord {
    let mut meta = vec![
        ("budget".to_string(), budget_label.to_string()),
        (
            "oracles".to_string(),
            "exact final state (commutative); conservation (transfer); \
             exactly-once commits; protocol quiescence invariants"
                .to_string(),
        ),
    ];
    // Distinct-schedule totals per protocol (fingerprint counts summed
    // across that protocol's campaigns; different scenarios cannot
    // produce identical decision sequences in practice).
    let mut distinct: BTreeMap<&str, u64> = BTreeMap::new();
    for r in results {
        if let SystemUnderTest::Builtin(_) = r.campaign.system {
            *distinct.entry(r.campaign.system.label()).or_default() += r.distinct;
        }
    }
    for (system, count) in &distinct {
        meta.push((format!("distinct.{system}"), count.to_string()));
    }
    let mut violation_idx = 0usize;
    for r in results {
        for v in &r.violations {
            meta.push((
                format!("violation.{violation_idx}"),
                format!(
                    "{} {} {} {}{}",
                    r.campaign.scenario.label(),
                    r.campaign.system.label(),
                    r.campaign.mode.label(),
                    v,
                    if r.campaign.expect_violation {
                        " [expected: mutation test]"
                    } else {
                        ""
                    }
                ),
            ));
            violation_idx += 1;
        }
    }
    let runs = results
        .iter()
        .map(|r| {
            let mut knobs = vec![
                knob("mode", r.campaign.mode.label()),
                knob("schedules", r.schedules),
                knob("distinct", r.distinct),
                knob("decisions", r.decisions),
                knob("violations", r.violations_total),
            ];
            if let Mode::Search(_) = r.campaign.mode {
                knobs.push(knob("branched", r.branched));
                knobs.push(knob("pruned", r.pruned));
                knobs.push(knob("exhausted", if r.exhausted { "yes" } else { "no" }));
            }
            if r.campaign.expect_violation {
                knobs.push(knob("mutation", "expect-violation"));
            }
            RunRecord {
                workload: r.campaign.scenario.label().to_string(),
                system: r.campaign.system.label().to_string(),
                cores: r.campaign.scenario.cores() as u64,
                seed: r.campaign.scenario.seed(),
                knobs,
                seq_cycles: 0,
                report: r.default_report.clone(),
            }
        })
        .collect();
    ExperimentRecord {
        name: "explore".to_string(),
        seed: 42,
        meta,
        runs,
    }
}

/// Renders the stdout summary and computes the expectation gate.
fn summarize(results: &[CampaignResult], record: &ExperimentRecord) -> (String, bool) {
    let mut ok = true;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<11} {:<12} {:<7} {:>9} {:>9} {:>11}  status\n",
        "scenario", "system", "mode", "schedules", "distinct", "violations"
    ));
    for r in results {
        let expected = r.as_expected();
        ok &= expected;
        let status = match (r.violations_total == 0, r.campaign.expect_violation) {
            (true, false) => "ok",
            (false, true) => "ok (mutation caught)",
            (true, true) => "MUTATION MISSED",
            (false, false) => "VIOLATED",
        };
        out.push_str(&format!(
            "{:<11} {:<12} {:<7} {:>9} {:>9} {:>11}  {}\n",
            r.campaign.scenario.label(),
            r.campaign.system.label(),
            r.campaign.mode.label(),
            r.schedules,
            r.distinct,
            r.violations_total,
            status
        ));
    }
    let total_schedules: u64 = results.iter().map(|r| r.schedules).sum();
    out.push_str(&format!(
        "\n{} campaigns, {} schedules explored; per-protocol distinct: {}\n",
        results.len(),
        total_schedules,
        record
            .meta
            .iter()
            .filter(|(k, _)| k.starts_with("distinct."))
            .map(|(k, v)| format!("{}={v}", &k["distinct.".len()..]))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (k, v) in record
        .meta
        .iter()
        .filter(|(k, _)| k.starts_with("violation"))
    {
        out.push_str(&format!("{k}: {v}\n"));
    }
    (out, ok)
}
