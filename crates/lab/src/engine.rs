//! The reusable experiment engine shared by the offline lab and the
//! `retcon-serve` daemon.
//!
//! PRs 2–6 built the hard parts of a serving stack inside the lab run
//! path: byte-stable records, a deterministic job-parallel runner, and a
//! cross-dataset report cache. This module lifts those pieces behind a
//! small, shareable surface:
//!
//! * [`RunKey`] — the simulation inputs a report is a pure function of,
//!   with a **canonical byte encoding** and a stable **content hash**
//!   (built on [`retcon_sim::canon`]). The invariant the test suite
//!   pins: keys with equal canonical bytes produce byte-identical
//!   records, and the hash is a function of nothing but those bytes.
//! * [`SimCache`] — the cache seam the runner executes through. The
//!   lab's in-memory [`ReportCache`] and the daemon's capacity-bounded
//!   [`ResultStore`] both implement it, so offline `all` and the server
//!   share one dedup implementation (a hit returns exactly what a fresh
//!   run would — simulations are deterministic, so caching cannot change
//!   output).
//! * [`simulate`] / [`record_for`] — the pure execution and
//!   record-assembly functions both consumers call.

use crate::record::RunRecord;
use retcon::RetconConfig;
use retcon_htm::{AnyProtocol, RetconTm};
use retcon_sim::canon::{content_hash128, Canon};
use retcon_sim::json::Json;
use retcon_sim::{SimConfig, SimError, SimReport};
use retcon_workloads::{run_spec_sized, run_spec_with, System, Workload};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Locks a mutex, recovering from poison instead of propagating it.
///
/// A poisoned mutex means some thread panicked while holding the lock —
/// in this codebase every guarded structure (caches, stores, queues,
/// waiter tables) is kept consistent *before* any operation that can
/// panic, so the data under a poisoned lock is still valid. Recovering
/// with [`PoisonError::into_inner`] turns "one worker panicked" into a
/// non-event instead of cascading `expect("poisoned")` panics through
/// every thread that touches the lock afterwards — the repair-not-abort
/// rule applied to the serving stack itself.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The simulation inputs one report is a pure function of.
///
/// This is the unit the serving stack deduplicates on: two requests whose
/// keys canonicalize to the same bytes are one simulation. Display-only
/// context (knob labels, sequential baselines) is deliberately *not* part
/// of the key — see [`crate::runner::Job`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Workload to build.
    pub workload: Workload,
    /// System to run it under.
    pub system: System,
    /// RETCON configuration override (structure-size sweeps); `None`
    /// runs `system`'s default protocol.
    pub cfg: Option<RetconConfig>,
    /// Core count.
    pub cores: usize,
    /// Workload-build seed.
    pub seed: u64,
}

impl RunKey {
    /// A plain run of `workload` under `system`.
    pub fn new(workload: Workload, system: System, cores: usize, seed: u64) -> RunKey {
        RunKey {
            workload,
            system,
            cfg: None,
            cores,
            seed,
        }
    }

    /// The machine configuration this key runs under (the default
    /// Table 1 machine at the key's core count; the lab has never varied
    /// the other knobs, but they are part of the canonical encoding so a
    /// future sweep cannot silently collide).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::with_cores(self.cores)
    }

    /// The key with an explicit-but-default RETCON config normalized
    /// away: `System::Retcon` with `cfg: Some(RetconConfig::default())`
    /// runs the exact same simulation as `cfg: None`, so both forms must
    /// canonicalize (and therefore hash) identically.
    fn normalized_cfg(&self) -> Option<&RetconConfig> {
        match &self.cfg {
            Some(cfg) if self.system == System::Retcon && *cfg == RetconConfig::default() => None,
            other => other.as_ref(),
        }
    }

    /// Writes the key's canonical byte encoding: a versioned tag, the
    /// workload and system labels, the (normalized) RETCON config, the
    /// seed, and the full machine configuration.
    pub fn canonical_encode(&self, c: &mut Canon) {
        c.tag("runkey-v1");
        c.str(self.workload.label());
        c.str(self.system.label());
        match self.normalized_cfg() {
            None => c.bool(false),
            Some(cfg) => {
                c.bool(true);
                c.tag("retconconfig-v1");
                c.usize(cfg.ivb_capacity);
                c.usize(cfg.constraint_capacity);
                c.usize(cfg.ssb_capacity);
                c.bool(cfg.unlimited_state);
                c.bool(cfg.parallel_reacquire);
                c.bool(cfg.free_commit_stores);
                c.u32(cfg.violation_backoff);
                c.u32(cfg.initial_threshold);
            }
        }
        c.u64(self.seed);
        self.sim_config().canonical_encode(c);
    }

    /// The key's canonical bytes (a fresh stream, encoded).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut c = Canon::new();
        self.canonical_encode(&mut c);
        c.finish()
    }

    /// The key's 128-bit content hash — the address of its report in a
    /// [`ResultStore`]. A pure function of [`RunKey::canonical_bytes`].
    pub fn content_hash(&self) -> u128 {
        let mut c = Canon::new();
        self.canonical_encode(&mut c);
        c.content_hash()
    }
}

/// Runs the simulation a key describes (no caching). Pure: same key,
/// same report, byte for byte.
///
/// # Errors
///
/// Propagates [`SimError`] (cycle-limit or validation failures — both
/// indicate workload bugs, so callers treat them as fatal).
pub fn simulate(key: &RunKey) -> Result<SimReport, SimError> {
    let spec = key.workload.build(key.cores, key.seed);
    if key.cfg.is_none() && key.cores > 64 {
        // Past the single-word CoreSet class (64 cores) the `AnyProtocol`
        // below cannot represent the machine; dispatch through the
        // size-classed entry. Serial (`shards = 1`): a lab record must
        // never depend on host-thread availability.
        return run_spec_sized(&spec, key.system, key.cores, 1);
    }
    let protocol: AnyProtocol = match key.cfg {
        Some(cfg) => RetconTm::new(key.cores, cfg).into(),
        None => key.system.protocol(key.cores),
    };
    run_spec_with(&spec, protocol, key.cores)
}

/// Assembles the record a key + report pair serializes as. Knob labels
/// and sequential baselines are presentation concerns layered on top by
/// the lab's dataset assembly; the serving stack emits records exactly in
/// this form, which is why a served sweep is byte-identical to
/// `run_jobs` over the same keys.
pub fn record_for(key: &RunKey, report: SimReport) -> RunRecord {
    RunRecord {
        workload: key.workload.label().to_string(),
        system: key.system.label().to_string(),
        cores: key.cores as u64,
        seed: key.seed,
        knobs: Vec::new(),
        seq_cycles: 0,
        report,
    }
}

/// The cache seam the runner executes through.
///
/// Implementations must be position-independent (a `lookup` hit returns
/// exactly what [`simulate`] would — deterministic simulations make this
/// free) and thread-safe (the runner's workers and the daemon's pool
/// share one instance).
pub trait SimCache: Sync {
    /// The cached report for `key`, if present.
    fn lookup(&self, key: &RunKey) -> Option<SimReport>;
    /// Stores `report` for `key`. `cost_micros` is the wall-clock the
    /// simulation took — cost-aware stores use it to bias eviction.
    fn insert(&self, key: &RunKey, report: &SimReport, cost_micros: u64);
}

/// The lab's unbounded in-memory memo, shareable across datasets:
/// `fig10`'s job list is a strict subset of `fig9`'s at-scale runs, and
/// `ablation_ideal` repeats `fig9`'s baselines, so `retcon-lab -- all` /
/// `check` would otherwise recompute byte-identical reports.
///
/// Caching cannot change output: simulations are deterministic, so a hit
/// returns exactly what a fresh run would (two workers racing on the same
/// key both compute the same report; last insert wins, harmlessly).
#[derive(Debug, Default)]
pub struct ReportCache {
    reports: Mutex<HashMap<RunKey, SimReport>>,
}

impl ReportCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct simulations memoized.
    pub fn len(&self) -> usize {
        lock_recover(&self.reports).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SimCache for ReportCache {
    fn lookup(&self, key: &RunKey) -> Option<SimReport> {
        lock_recover(&self.reports).get(key).cloned()
    }

    fn insert(&self, key: &RunKey, report: &SimReport, _cost_micros: u64) {
        lock_recover(&self.reports).insert(key.clone(), report.clone());
    }
}

/// What a [`FaultPlan`] tells a spill write to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillFault {
    /// Write normally.
    None,
    /// Simulate an I/O failure: the write is skipped entirely.
    Fail,
    /// Write the file, but with seeded byte damage applied after the
    /// verification hash was computed — a torn/corrupted entry.
    Corrupt,
}

/// What a [`FaultPlan`] tells a response-line write to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineFault {
    /// Write normally.
    None,
    /// Hard-drop the connection before writing (mid-stream disconnect).
    Drop,
    /// Sleep this many milliseconds before writing (slow-client stall).
    Stall(u64),
}

/// A deterministic fault injector for the crash-safety test suites.
///
/// This is a **test-only seam**: production paths run with no plan
/// attached, which reduces every injection point to a skipped `Option`
/// check. Faults are *counter-indexed* — each kind carries the ordinal
/// (0-based) of the operation it strikes, counted on internal atomics —
/// so a test names exactly which spill write fails, which execution
/// panics, or which response line drops, and the run replays
/// deterministically. One-shot faults fire exactly once (the atomic
/// counter passes the ordinal a single time); `panic_on_key` is the one
/// persistent fault, driving the retry-exhaustion → quarantine path.
/// Corruption damage is seeded so a corrupted byte pattern reproduces.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Fail the Nth spill write with a simulated I/O error (no file).
    pub fail_spill_write: Option<u64>,
    /// Corrupt the Nth spill write (file lands, bytes damaged).
    pub corrupt_spill_write: Option<u64>,
    /// Panic inside the Nth worker execution (one-shot; a retry of the
    /// same key is a new execution and succeeds).
    pub panic_on_execution: Option<u64>,
    /// Panic on *every* execution of the key with this content hash
    /// (exhausts the bounded retries and quarantines the key).
    pub panic_on_key: Option<u128>,
    /// Hard-drop the connection right before the Nth response line.
    pub drop_after_line: Option<u64>,
    /// Before the Nth response line, stall for `(n, millis)` — a client
    /// that stops draining its socket.
    pub stall_line: Option<(u64, u64)>,
    /// Seed for the corruption damage pattern.
    pub seed: u64,
    spill_writes: AtomicU64,
    executions: AtomicU64,
    lines: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing). Chain the `*_on` builders to arm
    /// specific faults — the counter atomics stay private.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms a simulated I/O failure on the Nth spill write.
    #[must_use]
    pub fn fail_spill_write_on(mut self, n: u64) -> FaultPlan {
        self.fail_spill_write = Some(n);
        self
    }

    /// Arms seeded byte damage on the Nth spill write.
    #[must_use]
    pub fn corrupt_spill_write_on(mut self, n: u64, seed: u64) -> FaultPlan {
        self.corrupt_spill_write = Some(n);
        self.seed = seed;
        self
    }

    /// Arms a one-shot panic inside the Nth worker execution.
    #[must_use]
    pub fn panic_on_execution_n(mut self, n: u64) -> FaultPlan {
        self.panic_on_execution = Some(n);
        self
    }

    /// Arms a persistent panic on every execution of `hash`.
    #[must_use]
    pub fn panic_on_key_hash(mut self, hash: u128) -> FaultPlan {
        self.panic_on_key = Some(hash);
        self
    }

    /// Arms a hard connection drop before the Nth response line.
    #[must_use]
    pub fn drop_after_line_n(mut self, n: u64) -> FaultPlan {
        self.drop_after_line = Some(n);
        self
    }

    /// Arms a `millis`-long stall before the Nth response line.
    #[must_use]
    pub fn stall_line_n(mut self, n: u64, millis: u64) -> FaultPlan {
        self.stall_line = Some((n, millis));
        self
    }

    /// Draws the fault (if any) for the next spill write.
    pub fn on_spill_write(&self) -> SpillFault {
        let n = self.spill_writes.fetch_add(1, Ordering::AcqRel);
        if self.fail_spill_write == Some(n) {
            SpillFault::Fail
        } else if self.corrupt_spill_write == Some(n) {
            SpillFault::Corrupt
        } else {
            SpillFault::None
        }
    }

    /// Whether the next execution (of the key hashing to `hash`) should
    /// panic.
    pub fn on_execution(&self, hash: u128) -> bool {
        let n = self.executions.fetch_add(1, Ordering::AcqRel);
        self.panic_on_execution == Some(n) || self.panic_on_key == Some(hash)
    }

    /// Draws the fault (if any) for the next response line.
    pub fn on_line(&self) -> LineFault {
        let n = self.lines.fetch_add(1, Ordering::AcqRel);
        if self.drop_after_line == Some(n) {
            LineFault::Drop
        } else if let Some((at, millis)) = self.stall_line {
            if at == n {
                return LineFault::Stall(millis);
            }
            LineFault::None
        } else {
            LineFault::None
        }
    }

    /// Applies seeded damage to `bytes`: even seeds truncate at a
    /// seed-chosen point, odd seeds flip a handful of seed-chosen bytes.
    /// Always changes the content of a non-empty buffer.
    pub fn corrupt(&self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let mut state = self.seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        if self.seed % 2 == 0 {
            let keep = (next() as usize) % bytes.len();
            bytes.truncate(keep);
        } else {
            for _ in 0..4 {
                let draw = next();
                let idx = (draw as usize) % bytes.len();
                bytes[idx] ^= ((draw >> 32) as u8) | 1;
            }
        }
    }
}

/// A snapshot of a [`ResultStore`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups served by re-reading a spilled record from disk.
    pub spill_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports inserted.
    pub insertions: u64,
    /// Resident entries evicted to honor the capacity bound.
    pub evictions: u64,
    /// Entries currently resident in memory.
    pub resident: u64,
    /// Estimated bytes currently resident.
    pub resident_cost: u64,
    /// Spill entries that failed verification (torn, corrupted, or
    /// mis-keyed) and were moved to the quarantine sidecar directory —
    /// never served.
    pub quarantined: u64,
    /// Spill entries verified and re-indexed by [`ResultStore::warm_start`].
    pub recovered_on_boot: u64,
    /// Spill writes that failed (I/O error or injected fault). The result
    /// stays memory-resident; it is only lost to a restart.
    pub spill_write_failures: u64,
    /// Files currently in the spill directory, including the
    /// `quarantine/` sidecar (0 without a spill directory).
    pub spill_files: u64,
    /// Total bytes of those files.
    pub spill_bytes: u64,
}

/// One resident entry: the report plus its recency stamp and cost.
#[derive(Debug)]
struct StoreEntry {
    report: SimReport,
    /// Estimated serialized size — the capacity currency.
    cost: u64,
    /// Wall-clock micros the simulation took (recompute cost).
    sim_micros: u64,
    /// Recency stamp (monotone ticks; larger = newer).
    tick: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    entries: HashMap<u128, StoreEntry>,
    /// Recency index: tick → hash. Ticks are unique (monotone counter),
    /// so the first entry is always the least recently used.
    lru: BTreeMap<u64, u128>,
    next_tick: u64,
    resident_cost: u64,
    /// Hashes with a verified spill file on disk: everything this store
    /// instance spilled successfully plus everything a
    /// [`ResultStore::warm_start`] scan recovered. Gates the disk read on
    /// a lookup miss so cold misses never touch the filesystem.
    on_disk: HashSet<u128>,
}

/// The daemon's content-addressed result store: reports keyed by
/// [`RunKey::content_hash`], capacity-bounded in estimated bytes with
/// cost-aware LRU eviction, and an optional **durable** on-disk spill so
/// results survive eviction *and* daemon crashes.
///
/// Eviction is LRU with one cost-aware refinement: among the four least
/// recently used entries, the one that was *cheapest to compute* is
/// evicted first — a hot store keeps the reports that are expensive to
/// regenerate (a 32-core `python` run costs ~500 ms; a 1-core `counter`
/// run costs ~1 ms) at a small recency penalty.
///
/// ## Crash safety (the spill contract)
///
/// With a spill directory attached, every insert **writes through** to
/// disk (not just evictions), so a SIGKILL loses nothing that finished.
/// Each spill file is a self-verifying envelope
/// `{"key":"<hash>","check":"<hash>","report":{…}}` where `check` is the
/// content hash of the report's byte-stable compact JSON. Writes go to a
/// temp file and land by atomic rename, so a torn write can never
/// shadow a good entry. Every disk read re-verifies: the filename, the
/// embedded key, and the payload hash must all agree, or the file is
/// moved to the `quarantine/` sidecar directory and **never served** —
/// a corrupt store degrades to re-simulation, not to wrong answers.
/// Verification runs only on the disk path; in-memory hits stay
/// hash-free (the `serve_warm` hot path).
///
/// [`ResultStore::warm_start`] scans the spill directory on boot,
/// verifies every entry once, quarantines failures, and indexes the
/// survivors so a restarted daemon serves prior results as hits.
#[derive(Debug)]
pub struct ResultStore {
    /// Maximum estimated resident bytes before eviction.
    capacity_bytes: u64,
    spill_dir: Option<PathBuf>,
    faults: Option<Arc<FaultPlan>>,
    inner: Mutex<StoreInner>,
    hits: AtomicU64,
    spill_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
    recovered_on_boot: AtomicU64,
    spill_write_failures: AtomicU64,
    /// Optional spill-write latency sink (micros per landed write); the
    /// daemon attaches its metrics registry's histogram here. Purely
    /// observational — never consulted by any store decision.
    spill_write_hist: Option<Arc<retcon_obs::Log2Hist>>,
}

/// How many least-recently-used candidates the cost-aware eviction
/// considers per eviction.
const EVICT_WINDOW: usize = 4;

impl ResultStore {
    /// An empty store bounded at `capacity_bytes` of estimated resident
    /// report data, with no spill directory.
    pub fn new(capacity_bytes: u64) -> ResultStore {
        ResultStore {
            capacity_bytes,
            spill_dir: None,
            faults: None,
            inner: Mutex::default(),
            hits: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            recovered_on_boot: AtomicU64::new(0),
            spill_write_failures: AtomicU64::new(0),
            spill_write_hist: None,
        }
    }

    /// Enables durable on-disk spill: every inserted report is written
    /// through to `dir/<hash>.json` as a self-verifying envelope (see the
    /// type docs), survives eviction and process death, and is re-read —
    /// and re-admitted — on a later lookup.
    pub fn with_spill(mut self, dir: PathBuf) -> ResultStore {
        self.spill_dir = Some(dir);
        self
    }

    /// Attaches a deterministic fault injector to the spill path
    /// (test-only; see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> ResultStore {
        self.faults = Some(plan);
        self
    }

    /// Routes spill-write latencies (micros per landed write) into `hist`
    /// — the daemon points this at its metrics registry.
    pub fn with_spill_write_hist(mut self, hist: Arc<retcon_obs::Log2Hist>) -> ResultStore {
        self.spill_write_hist = Some(hist);
        self
    }

    fn spill_path(&self, hash: u128) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{hash:032x}.json")))
    }

    /// The report stored under `hash`, consulting memory first and the
    /// spill directory second (a verified spill hit re-admits the
    /// report). The in-memory path never touches the filesystem or
    /// re-hashes — hot hits stay hot.
    pub fn lookup_hash(&self, hash: u128) -> Option<SimReport> {
        {
            let mut inner = lock_recover(&self.inner);
            let tick = inner.next_tick;
            if let Some(entry) = inner.entries.get_mut(&hash) {
                let old = entry.tick;
                entry.tick = tick;
                let report = entry.report.clone();
                inner.lru.remove(&old);
                inner.lru.insert(tick, hash);
                inner.next_tick += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(report);
            }
            if !inner.on_disk.contains(&hash) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        if let Some(report) = self.spill_read(hash) {
            self.spill_hits.fetch_add(1, Ordering::Relaxed);
            // Re-admit: recently wanted again. Spill micros are unknown
            // post-restart; admit at zero recompute cost (it can be
            // re-read from disk again if evicted). The file is already on
            // disk, so skip the write-through.
            self.admit(hash, &report, 0, false);
            return Some(report);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Reads and fully verifies the spill file for `hash`. Any failure —
    /// unreadable, unparseable, mis-keyed, or a payload whose content
    /// hash does not match its `check` field — quarantines the file and
    /// returns `None`: a record that does not verify is never served.
    fn spill_read(&self, hash: u128) -> Option<SimReport> {
        let path = self.spill_path(hash)?;
        let t = Instant::now();
        let verified = verify_spill_file(hash, &path);
        retcon_obs::phase::add(
            retcon_obs::phase::Phase::SpillRead,
            t.elapsed().as_micros() as u64,
        );
        match verified {
            Ok(report) => Some(report),
            Err(_) => {
                self.quarantine(hash, &path);
                None
            }
        }
    }

    /// Moves a failed spill file into the `quarantine/` sidecar (kept for
    /// post-mortem, never re-read) and drops it from the disk index.
    fn quarantine(&self, hash: u128, path: &Path) {
        lock_recover(&self.inner).on_disk.remove(&hash);
        if let Some(dir) = &self.spill_dir {
            let sidecar = dir.join("quarantine");
            let _ = std::fs::create_dir_all(&sidecar);
            if let Some(name) = path.file_name() {
                let _ = std::fs::rename(path, sidecar.join(name));
            }
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes the spill envelope for `hash` crash-safely: temp file, then
    /// atomic rename — a torn write never lands under the final name.
    /// On success the hash joins the disk index; on failure (real or
    /// injected) the failure is counted and the result stays
    /// memory-resident only.
    fn spill_write(&self, hash: u128, text: &str) {
        let Some(dir) = &self.spill_dir else { return };
        let fault = self
            .faults
            .as_deref()
            .map_or(SpillFault::None, FaultPlan::on_spill_write);
        if fault == SpillFault::Fail {
            self.spill_write_failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let check = content_hash128(text.as_bytes());
        let mut bytes =
            format!("{{\"key\":\"{hash:032x}\",\"check\":\"{check:032x}\",\"report\":{text}}}")
                .into_bytes();
        if fault == SpillFault::Corrupt {
            if let Some(plan) = &self.faults {
                plan.corrupt(&mut bytes);
            }
        }
        let tmp = dir.join(format!(".tmp-{hash:032x}-{}", std::process::id()));
        let t = Instant::now();
        let landed = std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, dir.join(format!("{hash:032x}.json"))));
        let micros = t.elapsed().as_micros() as u64;
        retcon_obs::phase::add(retcon_obs::phase::Phase::SpillWrite, micros);
        match landed {
            Ok(()) => {
                if let Some(hist) = &self.spill_write_hist {
                    hist.observe(micros);
                }
                lock_recover(&self.inner).on_disk.insert(hash);
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.spill_write_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stores `report` under `hash`, evicting as needed and writing
    /// through to the spill directory (durability — see the type docs).
    pub fn insert_hash(&self, hash: u128, report: &SimReport, sim_micros: u64) {
        self.admit(hash, report, sim_micros, true);
    }

    fn admit(&self, hash: u128, report: &SimReport, sim_micros: u64, write_spill: bool) {
        let text = report.to_json().to_string();
        let cost = text.len() as u64;
        {
            let mut inner = lock_recover(&self.inner);
            if inner.entries.contains_key(&hash) {
                return; // Racing insert of the same content: keep the first.
            }
            self.insertions.fetch_add(1, Ordering::Relaxed);
            let tick = inner.next_tick;
            inner.next_tick += 1;
            inner.entries.insert(
                hash,
                StoreEntry {
                    report: report.clone(),
                    cost,
                    sim_micros,
                    tick,
                },
            );
            inner.lru.insert(tick, hash);
            inner.resident_cost += cost;
            // Evict until within capacity (never the entry just inserted —
            // it is the newest, and the window only sees the oldest four
            // unless the store has shrunk to that size; guard explicitly).
            // Spill is write-through, so eviction only drops memory: the
            // victim's file (if its write succeeded) is already on disk.
            while inner.resident_cost > self.capacity_bytes && inner.entries.len() > 1 {
                let victim = {
                    let candidates: Vec<u128> = inner
                        .lru
                        .values()
                        .copied()
                        .filter(|h| *h != hash)
                        .take(EVICT_WINDOW)
                        .collect();
                    // Cheapest-to-recompute among the oldest few.
                    candidates
                        .into_iter()
                        .min_by_key(|h| inner.entries[h].sim_micros)
                        .expect("entries.len() > 1 guarantees a candidate")
                };
                let entry = inner.entries.remove(&victim).expect("victim resident");
                inner.lru.remove(&entry.tick);
                inner.resident_cost -= entry.cost;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Durable write-through, outside the lock; a failed write only
        // costs a re-simulation after the next restart.
        if write_spill {
            self.spill_write(hash, &text);
        }
    }

    /// Rebuilds the disk index from the spill directory — the daemon's
    /// warm-start boot scan. Every `<hash>.json` entry is verified once
    /// (envelope key and payload hash); survivors are indexed so later
    /// lookups serve them as (spill) hits, failures are quarantined, and
    /// stale temp files from an interrupted write are swept. Returns
    /// `(recovered, quarantined)`.
    pub fn warm_start(&self) -> (u64, u64) {
        let Some(dir) = self.spill_dir.clone() else {
            return (0, 0);
        };
        let mut recovered = 0u64;
        let mut quarantined = 0u64;
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return (0, 0);
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with(".tmp-") {
                // A write interrupted by the crash; it never landed.
                let _ = std::fs::remove_file(&path);
                continue;
            }
            let Some(hex) = name.strip_suffix(".json") else {
                continue;
            };
            let Ok(hash) = u128::from_str_radix(hex, 16) else {
                continue;
            };
            match verify_spill_file(hash, &path) {
                Ok(_) => {
                    lock_recover(&self.inner).on_disk.insert(hash);
                    recovered += 1;
                }
                Err(_) => {
                    self.quarantine(hash, &path);
                    quarantined += 1;
                }
            }
        }
        self.recovered_on_boot
            .fetch_add(recovered, Ordering::Relaxed);
        (recovered, quarantined)
    }

    /// Spill-directory occupancy: `(files, bytes)` across the directory
    /// itself and the `quarantine/` sidecar (temp files from in-flight
    /// writes included — they are real disk usage). `(0, 0)` without a
    /// spill directory. Scans the filesystem, so callers on a hot path
    /// should not call this per-request; the daemon calls it once per
    /// `stats`/`metrics` request.
    pub fn spill_occupancy(&self) -> (u64, u64) {
        let Some(dir) = &self.spill_dir else {
            return (0, 0);
        };
        let mut files = 0u64;
        let mut bytes = 0u64;
        for dir in [dir.clone(), dir.join("quarantine")] {
            let Ok(entries) = std::fs::read_dir(dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let Ok(meta) = entry.metadata() else { continue };
                if meta.is_file() {
                    files += 1;
                    bytes += meta.len();
                }
            }
        }
        (files, bytes)
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let (spill_files, spill_bytes) = self.spill_occupancy();
        let inner = lock_recover(&self.inner);
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            spill_hits: self.spill_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: inner.entries.len() as u64,
            resident_cost: inner.resident_cost,
            quarantined: self.quarantined.load(Ordering::Relaxed),
            recovered_on_boot: self.recovered_on_boot.load(Ordering::Relaxed),
            spill_write_failures: self.spill_write_failures.load(Ordering::Relaxed),
            spill_files,
            spill_bytes,
        }
    }
}

/// Parses and verifies one spill envelope: the embedded `key` must match
/// the hash the filename claims, and the re-serialized report payload
/// must hash to the embedded `check`. Compact JSON emission is
/// byte-stable (the repo-wide record contract), so parse→re-serialize
/// reproduces the exact bytes the writer hashed; any byte of damage
/// either breaks the parse, changes the payload hash, or breaks the key
/// binding — all three verify failures.
fn verify_spill_file(hash: u128, path: &Path) -> Result<SimReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("unparseable: {e}"))?;
    let key =
        u128::from_str_radix(json.req_str("key")?, 16).map_err(|e| format!("bad key: {e}"))?;
    if key != hash {
        return Err(format!(
            "key {key:032x} does not match filename {hash:032x}"
        ));
    }
    let check =
        u128::from_str_radix(json.req_str("check")?, 16).map_err(|e| format!("bad check: {e}"))?;
    let report_json = json
        .get("report")
        .ok_or_else(|| "missing field `report`".to_string())?;
    let payload = report_json.to_string();
    if content_hash128(payload.as_bytes()) != check {
        return Err("content hash mismatch".to_string());
    }
    SimReport::from_json(report_json)
}

impl SimCache for ResultStore {
    fn lookup(&self, key: &RunKey) -> Option<SimReport> {
        self.lookup_hash(key.content_hash())
    }

    fn insert(&self, key: &RunKey, report: &SimReport, cost_micros: u64) {
        self.insert_hash(key.content_hash(), report, cost_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(cores: usize, seed: u64) -> RunKey {
        RunKey::new(Workload::Counter, System::Retcon, cores, seed)
    }

    #[test]
    fn canonical_bytes_separate_distinct_keys() {
        let a = key(2, 42);
        assert_eq!(a.canonical_bytes(), key(2, 42).canonical_bytes());
        assert_ne!(a.canonical_bytes(), key(4, 42).canonical_bytes());
        assert_ne!(a.canonical_bytes(), key(2, 43).canonical_bytes());
        let mut eager = a.clone();
        eager.system = System::Eager;
        assert_ne!(a.canonical_bytes(), eager.canonical_bytes());
    }

    #[test]
    fn default_retcon_cfg_normalizes_to_none() {
        // `Retcon + Some(default)` runs the identical simulation to
        // `Retcon + None` (the runner maps both to the same protocol), so
        // they must share a hash — the ISSUE-pinned invariant that hash
        // equality tracks record byte-equality.
        let plain = key(2, 42);
        let mut explicit = plain.clone();
        explicit.cfg = Some(RetconConfig::default());
        assert_eq!(plain.canonical_bytes(), explicit.canonical_bytes());
        assert_eq!(plain.content_hash(), explicit.content_hash());

        // A non-default config must NOT normalize away.
        let mut sized = plain.clone();
        sized.cfg = Some(RetconConfig {
            ivb_capacity: 4,
            ..RetconConfig::default()
        });
        assert_ne!(plain.content_hash(), sized.content_hash());

        // And a default config under a *different* system is not the same
        // simulation as that system's default protocol.
        let mut eager_cfg = plain.clone();
        eager_cfg.system = System::Eager;
        eager_cfg.cfg = Some(RetconConfig::default());
        let mut eager_plain = plain.clone();
        eager_plain.system = System::Eager;
        assert_ne!(eager_cfg.content_hash(), eager_plain.content_hash());
    }

    #[test]
    fn report_cache_round_trips() {
        let cache = ReportCache::new();
        let k = key(2, 42);
        assert!(cache.lookup(&k).is_none());
        let report = simulate(&k).unwrap();
        cache.insert(&k, &report, 10);
        assert_eq!(cache.lookup(&k), Some(report));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn store_hits_and_misses_are_counted() {
        let store = ResultStore::new(1 << 20);
        let k = key(1, 42);
        assert!(store.lookup(&k).is_none());
        let report = simulate(&k).unwrap();
        store.insert(&k, &report, 10);
        assert_eq!(store.lookup(&k), Some(report));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.resident), (1, 1, 1, 1));
        assert!(s.resident_cost > 0);
    }

    #[test]
    fn store_evicts_cheapest_of_oldest_when_full() {
        let store = ResultStore::new(1); // everything over budget
        let a = key(1, 1);
        let b = key(1, 2);
        let ra = simulate(&a).unwrap();
        let rb = simulate(&b).unwrap();
        store.insert(&a, &ra, 5);
        store.insert(&b, &rb, 500);
        // Capacity 1 byte: inserting b evicts a (older AND cheaper).
        let s = store.stats();
        assert_eq!(s.resident, 1);
        assert!(s.evictions >= 1);
        assert!(store.lookup(&b).is_some());
        assert!(store.lookup(&a).is_none());
    }

    fn temp_spill_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("retcon-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_spills_and_reloads() {
        let dir = temp_spill_dir("reload");
        let store = ResultStore::new(1).with_spill(dir.clone());
        let a = key(1, 1);
        let b = key(1, 2);
        let ra = simulate(&a).unwrap();
        store.insert(&a, &ra, 5);
        store.insert(&b, &simulate(&b).unwrap(), 5);
        // `a` was evicted; its write-through spill file reloads it
        // byte-identically after hash verification.
        assert_eq!(store.lookup(&a), Some(ra));
        assert_eq!(store.stats().spill_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_start_recovers_spilled_results_without_resimulating() {
        let dir = temp_spill_dir("warm");
        let a = key(1, 1);
        let b = key(2, 2);
        let ra = simulate(&a).unwrap();
        let rb = simulate(&b).unwrap();
        {
            // Write-through means both land on disk immediately, long
            // before any eviction.
            let store = ResultStore::new(1 << 20).with_spill(dir.clone());
            store.insert(&a, &ra, 5);
            store.insert(&b, &rb, 5);
        }
        // "Restart": a fresh store on the same directory.
        let store = ResultStore::new(1 << 20).with_spill(dir.clone());
        assert_eq!(store.warm_start(), (2, 0));
        assert_eq!(store.lookup(&a), Some(ra));
        assert_eq!(store.lookup(&b), Some(rb));
        let s = store.stats();
        assert_eq!(s.recovered_on_boot, 2);
        assert_eq!(s.spill_hits, 2);
        assert_eq!(s.quarantined, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_spill_entries_are_quarantined_never_served() {
        let dir = temp_spill_dir("corrupt");
        let a = key(1, 1);
        let ra = simulate(&a).unwrap();
        let plan = Arc::new(FaultPlan {
            corrupt_spill_write: Some(0),
            seed: 43, // odd: byte flips
            ..FaultPlan::default()
        });
        {
            let store = ResultStore::new(1 << 20)
                .with_spill(dir.clone())
                .with_faults(plan);
            store.insert(&a, &ra, 5);
        }
        let store = ResultStore::new(1 << 20).with_spill(dir.clone());
        assert_eq!(store.warm_start(), (0, 1), "corrupt entry must quarantine");
        assert_eq!(store.lookup(&a), None, "a corrupt record must never serve");
        let s = store.stats();
        assert_eq!((s.quarantined, s.recovered_on_boot), (1, 0));
        // The file moved to the sidecar, out of the scan path.
        assert!(dir
            .join("quarantine")
            .join(format!("{:032x}.json", a.content_hash()))
            .exists());
        let fresh = ResultStore::new(1 << 20).with_spill(dir.clone());
        assert_eq!(fresh.warm_start(), (0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_spill_write_keeps_result_in_memory_only() {
        let dir = temp_spill_dir("failwrite");
        let a = key(1, 1);
        let ra = simulate(&a).unwrap();
        let plan = Arc::new(FaultPlan {
            fail_spill_write: Some(0),
            ..FaultPlan::default()
        });
        let store = ResultStore::new(1 << 20)
            .with_spill(dir.clone())
            .with_faults(plan);
        store.insert(&a, &ra, 5);
        // Still served from memory this process...
        assert_eq!(store.lookup(&a), Some(ra));
        assert_eq!(store.stats().spill_write_failures, 1);
        drop(store);
        // ...but a restart re-simulates it: nothing landed on disk.
        let restarted = ResultStore::new(1 << 20).with_spill(dir.clone());
        assert_eq!(restarted.warm_start(), (0, 0));
        assert_eq!(restarted.lookup(&a), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_spill_entry_is_quarantined() {
        let dir = temp_spill_dir("truncate");
        let a = key(1, 1);
        {
            let store = ResultStore::new(1 << 20).with_spill(dir.clone());
            store.insert(&a, &simulate(&a).unwrap(), 5);
        }
        let path = dir.join(format!("{:032x}.json", a.content_hash()));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let store = ResultStore::new(1 << 20).with_spill(dir.clone());
        assert_eq!(store.warm_start(), (0, 1));
        assert_eq!(store.lookup(&a), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn misfiled_spill_entry_fails_key_binding() {
        // A valid envelope under the wrong filename (e.g. a stray rename)
        // must not serve under the wrong key.
        let dir = temp_spill_dir("misfile");
        let a = key(1, 1);
        let b = key(1, 2);
        {
            let store = ResultStore::new(1 << 20).with_spill(dir.clone());
            store.insert(&a, &simulate(&a).unwrap(), 5);
        }
        let a_path = dir.join(format!("{:032x}.json", a.content_hash()));
        let b_path = dir.join(format!("{:032x}.json", b.content_hash()));
        std::fs::rename(&a_path, &b_path).unwrap();
        let store = ResultStore::new(1 << 20).with_spill(dir.clone());
        assert_eq!(store.warm_start(), (0, 1));
        assert_eq!(store.lookup(&b), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_for_matches_runner_shape() {
        let k = key(2, 7);
        let record = record_for(&k, simulate(&k).unwrap());
        assert_eq!(record.workload, "counter");
        assert_eq!(record.system, "RetCon");
        assert_eq!(record.cores, 2);
        assert_eq!(record.seed, 7);
        assert!(record.knobs.is_empty());
        assert_eq!(record.seq_cycles, 0);
    }
}
