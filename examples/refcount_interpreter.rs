//! The paper's headline scenario: GIL elision over a refcounting
//! interpreter.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example refcount_interpreter
//! ```
//!
//! The `python_opt` workload models CPython with its interpreter globals
//! made thread-private: every "bytecode batch" transaction still INCREFs
//! and DECREFs reference counts of hot shared objects (`None`, small
//! ints, …). Under the eager baseline — and even under value-based
//! validation — those refcount updates serialize the interpreter; RETCON
//! tracks the counts symbolically (`[rc] + k` with a `≠ 0` dealloc
//! constraint) and repairs them at commit, recovering near-linear scaling
//! (the paper reports 30× on 32 cores).

use retcon_workloads::{run, sequential_baseline, System, Workload};

fn main() {
    let w = Workload::Python { optimized: true };
    let seed = 7;
    let seq = sequential_baseline(w, seed).expect("sequential run");
    println!("transactionalized python interpreter (python_opt), speedup over sequential\n");
    println!(
        "{:>7} {:>9} {:>9} {:>9}",
        "cores", "eager", "lazy-vb", "RetCon"
    );
    for cores in [2usize, 4, 8, 16, 32] {
        let mut row = format!("{cores:>7}");
        for system in [System::Eager, System::LazyVb, System::Retcon] {
            let report = run(w, system, cores, seed).expect("workload runs");
            row += &format!(" {:>9.1}", report.speedup_over(seq));
        }
        println!("{row}");
    }
    // Show what RETCON's hardware actually did at full scale.
    let report = run(w, System::Retcon, 32, seed).expect("workload runs");
    let rs = report.retcon.expect("RETCON stats");
    println!("\nRETCON at 32 cores:");
    println!("  committed transactions      {}", rs.transactions);
    println!(
        "  avg blocks lost / tx        {:.1} (max {})",
        rs.avg_blocks_lost(),
        rs.max.blocks_lost
    );
    println!(
        "  avg blocks tracked / tx     {:.1} (max {})",
        rs.avg_blocks_tracked(),
        rs.max.blocks_tracked
    );
    println!(
        "  avg symbolic stores / tx    {:.1} (max {})",
        rs.avg_private_stores(),
        rs.max.private_stores
    );
    println!(
        "  avg constraints checked     {:.1} (max {})",
        rs.avg_constraint_addrs(),
        rs.max.constraint_addrs
    );
    println!(
        "  pre-commit repair overhead  {:.2}% of transaction lifetime",
        rs.commit_stall_percent()
    );
}
