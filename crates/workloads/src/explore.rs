//! Explore-sized workload variants.
//!
//! The schedule-exploration subsystem (`retcon-explore`) runs thousands to
//! millions of interleavings per configuration, so its workloads must be
//! *small* — a handful of transactions per core — while still exercising
//! the conflict patterns the full-size workloads are built around. Each
//! builder here returns the [`WorkloadSpec`] together with an exact
//! serial-order oracle: the commutative transaction bodies (additive
//! updates, conserving transfers) make the final state identical under
//! *every* serializable commit order, so the oracle is valid for any
//! explored schedule — a violation is a genuine serializability bug, never
//! an artifact of reordering.

use retcon_isa::{Addr, BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// The shared-counter micro-workload at explore size: every transaction
/// increments the one shared counter twice (the Figure 2 schedule), `iters`
/// transactions per core.
///
/// Oracle: final counter value is exactly [`counter_expected`] under any
/// serializable schedule.
pub fn counter(num_cores: usize, iters: u64) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let addr = alloc.alloc_words(1);
    let mut programs = Vec::with_capacity(num_cores);
    for _ in 0..num_cores {
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        b.imm(Reg(0), iters);
        b.imm(Reg(1), addr.0);
        b.jump(body);
        b.select(body);
        b.tx_begin();
        for i in 0..2 {
            b.load(Reg(2), Reg(1), 0);
            b.bin(BinOp::Add, Reg(2), Reg(2), Operand::Imm(1));
            b.store(Operand::Reg(Reg(2)), Reg(1), 0);
            if i == 0 {
                b.work(5);
            }
        }
        b.tx_commit();
        b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
        b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
        b.select(done);
        b.halt();
        programs.push(b.build().expect("explore counter program is well-formed"));
    }
    WorkloadSpec {
        name: "x-counter",
        tapes: vec![Vec::new(); num_cores],
        init: Vec::new(),
        programs,
    }
}

/// The exact final counter value for [`counter`]: two increments per
/// transaction, `iters` transactions per core.
pub fn counter_expected(num_cores: usize, iters: u64) -> u64 {
    2 * iters * num_cores as u64
}

/// A counter-pool workload: each transaction picks one of `pool`
/// block-private counters by tape (seeded), increments it `incs` times,
/// and commits. Returns the spec and the exact expected final value of
/// every counter (valid under any serializable schedule — increments
/// commute).
pub fn pool(
    num_cores: usize,
    pool: u64,
    iters: u64,
    incs: u32,
    seed: u64,
) -> (WorkloadSpec, Vec<u64>) {
    assert!(pool > 0 && incs > 0);
    let mut programs = Vec::with_capacity(num_cores);
    for _ in 0..num_cores {
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        b.imm(Reg(0), iters);
        b.jump(body);
        b.select(body);
        b.input(Reg(1));
        b.bin(BinOp::Mod, Reg(1), Reg(1), Operand::Imm(pool as i64));
        b.bin(BinOp::Shl, Reg(1), Reg(1), Operand::Imm(3)); // one block each
        b.tx_begin();
        for i in 0..incs {
            b.load(Reg(2), Reg(1), 0);
            b.bin(BinOp::Add, Reg(2), Reg(2), Operand::Imm(1));
            b.store(Operand::Reg(Reg(2)), Reg(1), 0);
            if i + 1 < incs {
                b.work(3);
            }
        }
        b.tx_commit();
        b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
        b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
        b.select(done);
        b.halt();
        programs.push(b.build().expect("explore pool program is well-formed"));
    }
    let mut rng = SplitMix64::new(seed);
    let mut expected = vec![0u64; pool as usize];
    let tapes: Vec<Vec<u64>> = (0..num_cores)
        .map(|_| {
            (0..iters)
                .map(|_| {
                    let v = rng.next_u64() >> 8;
                    expected[(v % pool) as usize] += incs as u64;
                    v
                })
                .collect()
        })
        .collect();
    (
        WorkloadSpec {
            name: "x-pool",
            tapes,
            init: Vec::new(),
            programs,
        },
        expected,
    )
}

/// A transfer workload: each transaction moves one unit from a
/// tape-chosen source counter to a tape-chosen destination counter when
/// the source is positive (a branchy, non-additive body). Returns the
/// spec and the conserved total — the sum over the pool never changes
/// under any serializable schedule.
pub fn transfer(num_cores: usize, pool: u64, iters: u64, seed: u64) -> (WorkloadSpec, u64) {
    assert!(pool > 0);
    const INITIAL: u64 = 100;
    let mut programs = Vec::with_capacity(num_cores);
    for _ in 0..num_cores {
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let transfer = b.block();
        let skip = b.block();
        let done = b.block();
        b.imm(Reg(0), iters);
        b.jump(body);
        b.select(body);
        b.input(Reg(1)); // source index
        b.input(Reg(2)); // destination index
        b.bin(BinOp::Mod, Reg(1), Reg(1), Operand::Imm(pool as i64));
        b.bin(BinOp::Shl, Reg(1), Reg(1), Operand::Imm(3));
        b.bin(BinOp::Mod, Reg(2), Reg(2), Operand::Imm(pool as i64));
        b.bin(BinOp::Shl, Reg(2), Reg(2), Operand::Imm(3));
        b.tx_begin();
        b.load(Reg(3), Reg(1), 0);
        b.branch(CmpOp::Gt, Reg(3), Operand::Imm(0), transfer, skip);
        b.select(transfer);
        b.bin(BinOp::Sub, Reg(3), Reg(3), Operand::Imm(1));
        b.store(Operand::Reg(Reg(3)), Reg(1), 0);
        b.load(Reg(4), Reg(2), 0);
        b.bin(BinOp::Add, Reg(4), Reg(4), Operand::Imm(1));
        b.store(Operand::Reg(Reg(4)), Reg(2), 0);
        b.jump(skip);
        b.select(skip);
        b.tx_commit();
        b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
        b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
        b.select(done);
        b.halt();
        programs.push(b.build().expect("explore transfer program is well-formed"));
    }
    let mut rng = SplitMix64::new(seed);
    let tapes: Vec<Vec<u64>> = (0..num_cores)
        .map(|_| (0..2 * iters).map(|_| rng.next_u64() >> 8).collect())
        .collect();
    (
        WorkloadSpec {
            name: "x-transfer",
            tapes,
            init: (0..pool).map(|i| (Addr(i * 8), INITIAL)).collect(),
            programs,
        },
        INITIAL * pool,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn counter_oracle_holds_under_default_schedule() {
        let spec = counter(3, 4);
        for p in &spec.programs {
            assert!(p.validate().is_ok());
        }
        let cfg = retcon_sim::SimConfig::with_cores(3);
        let mut m = retcon_sim::Machine::new(cfg, System::Eager.protocol(3), spec.programs.clone());
        let report = m.run().expect("runs");
        assert_eq!(report.protocol.commits, 12);
        assert_eq!(m.mem().read_word(Addr(0)), counter_expected(3, 4));
    }

    #[test]
    fn pool_oracle_matches_tape_replay() {
        let (spec, expected) = pool(3, 4, 5, 2, 9);
        let cfg = retcon_sim::SimConfig::with_cores(3);
        let mut m =
            retcon_sim::Machine::new(cfg, System::Retcon.protocol(3), spec.programs.clone());
        for (i, tape) in spec.tapes.iter().enumerate() {
            m.set_tape(i, tape.clone());
        }
        m.run().expect("runs");
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(m.mem().read_word(Addr(i as u64 * 8)), want, "counter {i}");
        }
        assert_eq!(expected.iter().sum::<u64>(), 3 * 5 * 2);
    }

    #[test]
    fn transfer_conserves_total() {
        let (spec, total) = transfer(2, 3, 6, 11);
        let report = run_spec(&spec, System::LazyVb, 2).expect("runs");
        assert_eq!(report.protocol.commits, 12);
        let cfg = retcon_sim::SimConfig::with_cores(2);
        let mut m =
            retcon_sim::Machine::new(cfg, System::LazyVb.protocol(2), spec.programs.clone());
        for (i, tape) in spec.tapes.iter().enumerate() {
            m.set_tape(i, tape.clone());
        }
        for &(addr, value) in &spec.init {
            m.init_word(addr, value);
        }
        m.run().expect("runs");
        let sum: u64 = (0..3).map(|i| m.mem().read_word(Addr(i * 8))).sum();
        assert_eq!(sum, total);
    }
}
