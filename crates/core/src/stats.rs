//! RETCON structure-utilization statistics (Table 3 of the paper).

/// Per-transaction utilization snapshot, taken at commit.
///
/// The fields correspond one-to-one with the columns of Table 3: 64-byte
/// blocks stolen during the transaction, initial-value-buffer entries,
/// symbolic registers repaired at commit, symbolic stores performed at
/// commit ("private stores"), and symbolic constraints checked at commit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxSnapshot {
    /// Blocks stolen away during the transaction ("blocks lost").
    pub blocks_lost: u64,
    /// Initial value buffer entries ("blocks tracked").
    pub blocks_tracked: u64,
    /// Symbolic registers repaired at commit.
    pub symbolic_registers: u64,
    /// Symbolic store buffer entries drained at commit ("private stores").
    pub private_stores: u64,
    /// Symbolic constraints checked at commit (interval entries plus
    /// equality bits; "constr. addrs").
    pub constraint_addrs: u64,
    /// Cycles spent in the pre-commit repair process ("commit cycles").
    pub commit_cycles: u64,
}

impl TxSnapshot {
    /// Stable field names, in the order [`TxSnapshot::as_array`] uses.
    /// This is the schema contract for machine-readable records
    /// (`retcon-lab`); extend it only by appending.
    pub const FIELDS: [&'static str; 6] = [
        "blocks_lost",
        "blocks_tracked",
        "symbolic_registers",
        "private_stores",
        "constraint_addrs",
        "commit_cycles",
    ];

    /// The counters in [`TxSnapshot::FIELDS`] order.
    pub fn as_array(&self) -> [u64; 6] {
        [
            self.blocks_lost,
            self.blocks_tracked,
            self.symbolic_registers,
            self.private_stores,
            self.constraint_addrs,
            self.commit_cycles,
        ]
    }

    /// Rebuilds a snapshot from [`TxSnapshot::FIELDS`]-ordered counters.
    pub fn from_array(values: [u64; 6]) -> Self {
        TxSnapshot {
            blocks_lost: values[0],
            blocks_tracked: values[1],
            symbolic_registers: values[2],
            private_stores: values[3],
            constraint_addrs: values[4],
            commit_cycles: values[5],
        }
    }
}

/// Aggregate Table 3 statistics over many transactions: average and maximum
/// of each [`TxSnapshot`] column, plus the fraction of transaction lifetime
/// spent in pre-commit repair ("commit stall %").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetconStats {
    /// Number of committed transactions recorded.
    pub transactions: u64,
    /// Column-wise sums (for averages).
    pub sum: TxSnapshot,
    /// Column-wise maxima.
    pub max: TxSnapshot,
    /// Total cycles spent inside transactions (for the commit-stall
    /// percentage).
    pub tx_cycles: u64,
    /// Commits whose constraint checks failed (repair aborted).
    pub violations: u64,
}

impl RetconStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one committed transaction's snapshot and its total lifetime in
    /// cycles.
    pub fn record_commit(&mut self, snap: TxSnapshot, tx_lifetime_cycles: u64) {
        self.transactions += 1;
        self.tx_cycles += tx_lifetime_cycles;
        self.sum.blocks_lost += snap.blocks_lost;
        self.sum.blocks_tracked += snap.blocks_tracked;
        self.sum.symbolic_registers += snap.symbolic_registers;
        self.sum.private_stores += snap.private_stores;
        self.sum.constraint_addrs += snap.constraint_addrs;
        self.sum.commit_cycles += snap.commit_cycles;
        self.max.blocks_lost = self.max.blocks_lost.max(snap.blocks_lost);
        self.max.blocks_tracked = self.max.blocks_tracked.max(snap.blocks_tracked);
        self.max.symbolic_registers = self.max.symbolic_registers.max(snap.symbolic_registers);
        self.max.private_stores = self.max.private_stores.max(snap.private_stores);
        self.max.constraint_addrs = self.max.constraint_addrs.max(snap.constraint_addrs);
        self.max.commit_cycles = self.max.commit_cycles.max(snap.commit_cycles);
    }

    /// Records a commit-time constraint violation (repair failed, the
    /// transaction aborted).
    pub fn record_violation(&mut self) {
        self.violations += 1;
    }

    /// Merges another accumulator into this one (e.g. across cores).
    pub fn merge(&mut self, other: &RetconStats) {
        self.transactions += other.transactions;
        self.tx_cycles += other.tx_cycles;
        self.violations += other.violations;
        self.sum.blocks_lost += other.sum.blocks_lost;
        self.sum.blocks_tracked += other.sum.blocks_tracked;
        self.sum.symbolic_registers += other.sum.symbolic_registers;
        self.sum.private_stores += other.sum.private_stores;
        self.sum.constraint_addrs += other.sum.constraint_addrs;
        self.sum.commit_cycles += other.sum.commit_cycles;
        self.max.blocks_lost = self.max.blocks_lost.max(other.max.blocks_lost);
        self.max.blocks_tracked = self.max.blocks_tracked.max(other.max.blocks_tracked);
        self.max.symbolic_registers = self
            .max
            .symbolic_registers
            .max(other.max.symbolic_registers);
        self.max.private_stores = self.max.private_stores.max(other.max.private_stores);
        self.max.constraint_addrs = self.max.constraint_addrs.max(other.max.constraint_addrs);
        self.max.commit_cycles = self.max.commit_cycles.max(other.max.commit_cycles);
    }

    fn avg(&self, sum: u64) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            sum as f64 / self.transactions as f64
        }
    }

    /// Average blocks lost per transaction.
    pub fn avg_blocks_lost(&self) -> f64 {
        self.avg(self.sum.blocks_lost)
    }

    /// Average IVB entries per transaction.
    pub fn avg_blocks_tracked(&self) -> f64 {
        self.avg(self.sum.blocks_tracked)
    }

    /// Average symbolic registers repaired per transaction.
    pub fn avg_symbolic_registers(&self) -> f64 {
        self.avg(self.sum.symbolic_registers)
    }

    /// Average symbolic stores performed at commit per transaction.
    pub fn avg_private_stores(&self) -> f64 {
        self.avg(self.sum.private_stores)
    }

    /// Average constraints checked at commit per transaction.
    pub fn avg_constraint_addrs(&self) -> f64 {
        self.avg(self.sum.constraint_addrs)
    }

    /// Average pre-commit repair cycles per transaction.
    pub fn avg_commit_cycles(&self) -> f64 {
        self.avg(self.sum.commit_cycles)
    }

    /// Percentage of transaction lifetime spent in pre-commit repair
    /// (Table 3's "commit stall %").
    pub fn commit_stall_percent(&self) -> f64 {
        if self.tx_cycles == 0 {
            0.0
        } else {
            100.0 * self.sum.commit_cycles as f64 / self.tx_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(
        lost: u64,
        tracked: u64,
        regs: u64,
        stores: u64,
        constr: u64,
        cycles: u64,
    ) -> TxSnapshot {
        TxSnapshot {
            blocks_lost: lost,
            blocks_tracked: tracked,
            symbolic_registers: regs,
            private_stores: stores,
            constraint_addrs: constr,
            commit_cycles: cycles,
        }
    }

    #[test]
    fn averages_and_maxima() {
        let mut s = RetconStats::new();
        s.record_commit(snap(1, 2, 0, 4, 2, 10), 100);
        s.record_commit(snap(3, 4, 2, 0, 4, 30), 300);
        assert_eq!(s.transactions, 2);
        assert_eq!(s.avg_blocks_lost(), 2.0);
        assert_eq!(s.avg_blocks_tracked(), 3.0);
        assert_eq!(s.avg_symbolic_registers(), 1.0);
        assert_eq!(s.avg_private_stores(), 2.0);
        assert_eq!(s.avg_constraint_addrs(), 3.0);
        assert_eq!(s.avg_commit_cycles(), 20.0);
        assert_eq!(s.max.blocks_lost, 3);
        assert_eq!(s.max.commit_cycles, 30);
        assert!((s.commit_stall_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RetconStats::new();
        assert_eq!(s.avg_blocks_lost(), 0.0);
        assert_eq!(s.commit_stall_percent(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = RetconStats::new();
        a.record_commit(snap(1, 1, 1, 1, 1, 5), 50);
        a.record_violation();
        let mut b = RetconStats::new();
        b.record_commit(snap(3, 3, 3, 3, 3, 15), 150);
        a.merge(&b);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.violations, 1);
        assert_eq!(a.max.blocks_lost, 3);
        assert_eq!(a.avg_blocks_lost(), 2.0);
        assert_eq!(a.tx_cycles, 200);
    }
}
