//! The paper's `lazy-vb` configuration: value-based commit validation.
//!
//! §5.1: *"we also evaluate a limited variant of RETCON in which values read
//! are not allowed to change: instead, all reads are checked to have the same
//! value at commit (at a precise byte granularity). This RETCON variant,
//! which we refer to as lazy-vb, captures commits due to laziness and
//! false/silent sharing but does not allow commits where a value read has
//! been changed remotely."*

use retcon_isa::table::EpochMap;
use retcon_isa::{Addr, BlockAddr, Reg};
use retcon_mem::{AccessKind, CoreId, MemorySystem, WriteBuffer};

use crate::protocol::Protocol;
use crate::result::{AbortCause, CommitResult, MemResult, ProtocolStats, RegUpdates};

#[derive(Debug, Default)]
struct CoreState {
    active: bool,
    birth: Option<u64>,
    wb: WriteBuffer,
    /// First-read value per word, in read order (the value log).
    rlog: Vec<(Addr, u64)>,
    /// Word -> first-read value, epoch-stamped (one array probe per read,
    /// O(1) per-transaction clear).
    rmap: EpochMap<u64>,
    aborted: bool,
    stats: ProtocolStats,
}

impl CoreState {
    #[inline]
    fn log_read(&mut self, addr: Addr, value: u64) {
        if self.rmap.insert_if_absent(addr.0, value) {
            self.rlog.push((addr, value));
        }
    }

    fn reset_tx(&mut self) {
        self.wb.discard();
        self.rlog.clear();
        self.rmap.clear();
        self.active = false;
    }
}

/// Value-based conflict detection: no speculative bits, no in-flight
/// conflicts. Every transactional read logs the value it observed (repeated
/// reads are served from the log, giving a consistent snapshot — the same
/// behaviour RETCON's initial value buffer provides after a steal); commit
/// revalidates every logged word against memory and aborts on any change,
/// then drains the write buffer. Commit is atomic with respect to other
/// cores (the simulator executes it in one step), so committed transactions
/// serialize at their commit points.
///
/// # Example
///
/// ```
/// use retcon_htm::{LazyVbTm, Protocol, MemResult, CommitResult};
/// use retcon_mem::{MemorySystem, MemConfig, CoreId};
/// use retcon_isa::{Addr, Reg};
///
/// let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
/// let mut tm = LazyVbTm::new(2);
/// tm.tx_begin(CoreId(0), 0);
/// let _ = tm.read(CoreId(0), Reg(0), Addr(0), None, &mut mem, 1);
/// // A remote write changes the value: no in-flight conflict...
/// let _ = tm.write(CoreId(1), None, 9, Addr(0), None, &mut mem, 2);
/// // ...but the commit-time value check catches it.
/// assert_eq!(tm.commit(CoreId(0), &mut mem, 3), CommitResult::Abort);
/// ```
#[derive(Debug)]
pub struct LazyVbTm<const N: usize = 1> {
    _class: core::marker::PhantomData<[u64; N]>,
    cores: Vec<CoreState>,
}

impl<const N: usize> LazyVbTm<N> {
    /// Creates the protocol for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        LazyVbTm {
            _class: core::marker::PhantomData,
            cores: (0..num_cores).map(|_| CoreState::default()).collect(),
        }
    }
}

impl<const N: usize> Protocol<N> for LazyVbTm<N> {
    fn name(&self) -> &'static str {
        "lazy-vb"
    }

    fn tx_begin(&mut self, core: CoreId, now: u64) {
        let cs = &mut self.cores[core.0];
        debug_assert!(!cs.active);
        cs.active = true;
        cs.birth.get_or_insert(now);
    }

    fn tx_active(&self, core: CoreId) -> bool {
        self.cores[core.0].active
    }

    fn read(
        &mut self,
        core: CoreId,
        _dst: Reg,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let cs = &mut self.cores[core.0];
        if cs.active {
            if let Some(v) = cs.wb.read(addr) {
                return MemResult::Value {
                    value: v,
                    latency: 1,
                };
            }
            if let Some(v) = cs.rmap.get(addr.0) {
                // Snapshot semantics: repeated reads observe the logged
                // value even if memory has moved on; validation decides at
                // commit.
                return MemResult::Value {
                    value: v,
                    latency: 1,
                };
            }
        }
        let active = self.cores[core.0].active;
        let latency = mem.access(core, addr, AccessKind::Read, false);
        let value = mem.read_word(addr);
        if active {
            self.cores[core.0].log_read(addr, value);
        }
        MemResult::Value { value, latency }
    }

    fn write(
        &mut self,
        core: CoreId,
        _src: Option<Reg>,
        value: u64,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        if self.cores[core.0].active {
            self.cores[core.0].wb.write(addr, value);
            return MemResult::Value { value, latency: 1 };
        }
        let latency = mem.access(core, addr, AccessKind::Write, false);
        mem.write_word(addr, value);
        MemResult::Value { value, latency }
    }

    fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, _now: u64) -> CommitResult {
        debug_assert!(self.cores[core.0].active);
        // Step 1: reacquire and revalidate every read word by value. The
        // log is taken (not cloned) and handed back below so steady-state
        // commits allocate nothing.
        let rlog: Vec<(Addr, u64)> = std::mem::take(&mut self.cores[core.0].rlog);
        let mut latency = 0;
        let mut acquired: Option<BlockAddr> = None;
        for &(addr, expected) in &rlog {
            if acquired != Some(addr.block()) {
                latency += mem.access(core, addr, AccessKind::Read, false);
                acquired = Some(addr.block());
            }
            if mem.read_word(addr) != expected {
                let cs = &mut self.cores[core.0];
                cs.rlog = rlog;
                cs.reset_tx();
                cs.stats.record_abort(AbortCause::Validation);
                mem.clear_spec(core);
                return CommitResult::Abort;
            }
        }
        // Step 2: drain the write buffer (same take-and-return dance).
        let wb = std::mem::take(&mut self.cores[core.0].wb);
        for (addr, value) in wb.iter() {
            latency += mem.access(core, addr, AccessKind::Write, false);
            mem.write_word(addr, value);
        }
        let cs = &mut self.cores[core.0];
        cs.wb = wb;
        cs.rlog = rlog;
        cs.reset_tx();
        cs.birth = None;
        cs.stats.commits += 1;
        CommitResult::Committed {
            latency,
            reg_updates: RegUpdates::EMPTY,
        }
    }

    fn take_aborted(&mut self, core: CoreId) -> bool {
        std::mem::take(&mut self.cores[core.0].aborted)
    }

    fn abort_pending(&self, core: CoreId) -> bool {
        self.cores[core.0].aborted
    }

    fn stats(&self, core: CoreId) -> &ProtocolStats {
        &self.cores[core.0].stats
    }

    fn check_quiescent(&self) -> Result<(), String> {
        for (i, cs) in self.cores.iter().enumerate() {
            if cs.active {
                return Err(format!("lazy-vb: core {i} still has an active transaction"));
            }
            if cs.birth.is_some() {
                return Err(format!("lazy-vb: core {i} kept a transaction birth stamp"));
            }
            if !cs.wb.is_empty() {
                return Err(format!(
                    "lazy-vb: core {i} write buffer holds {} entries at quiescence",
                    cs.wb.len()
                ));
            }
            if !cs.rlog.is_empty() {
                return Err(format!(
                    "lazy-vb: core {i} value log holds {} entries at quiescence",
                    cs.rlog.len()
                ));
            }
            if cs.aborted {
                return Err(format!("lazy-vb: core {i} has an undelivered abort flag"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_mem::MemConfig;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const A: Addr = Addr(0);

    fn setup() -> (MemorySystem, LazyVbTm) {
        (MemorySystem::new(MemConfig::default(), 2), LazyVbTm::new(2))
    }

    fn value(r: MemResult) -> u64 {
        match r {
            MemResult::Value { value, .. } => value,
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn unchanged_values_commit() {
        let (mut mem, mut tm) = setup();
        mem.write_word(A, 3);
        tm.tx_begin(C0, 0);
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 1)), 3);
        tm.write(C0, None, 4, A, None, &mut mem, 2);
        assert!(matches!(
            tm.commit(C0, &mut mem, 3),
            CommitResult::Committed { .. }
        ));
        assert_eq!(mem.read_word(A), 4);
        assert_eq!(tm.stats(C0).commits, 1);
    }

    #[test]
    fn changed_value_aborts_at_commit() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 1)), 0);
        // Remote non-tx write changes the value mid-flight: no in-flight
        // conflict under value-based detection...
        let _ = tm.write(C1, None, 9, A, None, &mut mem, 2);
        // ...but commit-time validation catches it.
        assert_eq!(tm.commit(C0, &mut mem, 3), CommitResult::Abort);
        assert_eq!(tm.stats(C0).aborts_validation, 1);
    }

    #[test]
    fn silent_store_commits() {
        // The write changed the word and changed it back ("temporally silent
        // sharing"): value validation admits the commit where bit-based
        // eager detection would have aborted.
        let (mut mem, mut tm) = setup();
        mem.write_word(A, 5);
        tm.tx_begin(C0, 0);
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 1)), 5);
        let _ = tm.write(C1, None, 9, A, None, &mut mem, 2);
        let _ = tm.write(C1, None, 5, A, None, &mut mem, 3);
        assert!(matches!(
            tm.commit(C0, &mut mem, 4),
            CommitResult::Committed { .. }
        ));
    }

    #[test]
    fn false_sharing_commits() {
        // Remote write to a *different word of the same block* is invisible
        // to value validation (the paper: lazy-vb avoids false-sharing
        // conflicts).
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        assert_eq!(value(tm.read(C0, Reg(0), Addr(0), None, &mut mem, 1)), 0);
        let _ = tm.write(C1, None, 7, Addr(1), None, &mut mem, 2);
        assert!(matches!(
            tm.commit(C0, &mut mem, 3),
            CommitResult::Committed { .. }
        ));
    }

    #[test]
    fn snapshot_reads_are_stable() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 1)), 0);
        let _ = tm.write(C1, None, 9, A, None, &mut mem, 2);
        // The second read returns the logged value, not the remote update.
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 3)), 0);
        assert_eq!(tm.commit(C0, &mut mem, 4), CommitResult::Abort);
    }

    #[test]
    fn own_writes_forward() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.write(C0, None, 8, A, None, &mut mem, 1);
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 2)), 8);
        // A read that only ever saw own writes does not validate against
        // memory at all.
        assert!(matches!(
            tm.commit(C0, &mut mem, 3),
            CommitResult::Committed { .. }
        ));
    }

    #[test]
    fn racing_increments_lose_exactly_one() {
        // Both read 0, both +1. The first committer wins; the second fails
        // validation — no lost update.
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        let v0 = value(tm.read(C0, Reg(0), A, None, &mut mem, 2));
        let v1 = value(tm.read(C1, Reg(0), A, None, &mut mem, 3));
        tm.write(C0, None, v0 + 1, A, None, &mut mem, 4);
        tm.write(C1, None, v1 + 1, A, None, &mut mem, 5);
        assert!(matches!(
            tm.commit(C0, &mut mem, 6),
            CommitResult::Committed { .. }
        ));
        assert_eq!(tm.commit(C1, &mut mem, 7), CommitResult::Abort);
        assert_eq!(mem.read_word(A), 1);
    }
}
