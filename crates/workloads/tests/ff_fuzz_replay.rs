//! Fast-forward under fuzzed schedules: `SeededFuzz` replay must be
//! bit-identical with fast-forwarding on and off.
//!
//! Jittered schedules draw from a seeded RNG in `observe_stall`, so the
//! determinism contract is stronger than equal reports: the *number* of
//! jitter consultations must match real execution exactly — one per
//! charged retry — or the RNG stream (and every later decision) diverges.
//! Fast-forward therefore degrades to charging a single retry per
//! iteration whenever `Schedule::stall_jitter_free()` is false; this test
//! pins that the reports, decision counts, and schedule trace hashes all
//! stay identical across the toggle.

use retcon_sim::{SeededFuzz, SimConfig};
use retcon_workloads::{machine_for, System, Workload};

fn replay(workload: Workload, system: System, cores: usize, fuzz_seed: u64) {
    let spec = workload.build(cores, 42);
    let mut outcomes = Vec::new();
    for ff in [true, false] {
        let mut machine = machine_for(&spec, system.protocol(cores), SimConfig::with_cores(cores));
        machine.set_fast_forward(ff);
        let mut sched = SeededFuzz::new(fuzz_seed);
        let report = machine.run_with(&mut sched).expect("run completes");
        outcomes.push((report, sched.decisions(), sched.trace_hash()));
    }
    let (on, off) = (&outcomes[0], &outcomes[1]);
    assert_eq!(
        on.0,
        off.0,
        "{} {}: reports differ",
        workload.label(),
        system.label()
    );
    assert_eq!(
        on.1,
        off.1,
        "{} {}: decision counts differ",
        workload.label(),
        system.label()
    );
    assert_eq!(
        on.2,
        off.2,
        "{} {}: trace hashes differ",
        workload.label(),
        system.label()
    );
}

#[test]
fn fuzzed_replay_identical_on_contended_counter_all_systems() {
    for system in [
        System::Eager,
        System::EagerAbort,
        System::Lazy,
        System::LazyVb,
        System::Retcon,
        System::RetconIdeal,
        System::Datm,
    ] {
        replay(Workload::Counter, system, 8, 7);
    }
}

#[test]
fn fuzzed_replay_identical_on_python_retcon() {
    // The stall-storm-heavy shape (scaled down for test time).
    replay(Workload::Python { optimized: false }, System::Retcon, 4, 3);
}

#[test]
fn fuzzed_replay_identical_across_seeds() {
    for fuzz_seed in [1, 99, 12345] {
        replay(Workload::Counter, System::Retcon, 4, fuzz_seed);
    }
}
