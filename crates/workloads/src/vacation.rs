//! The vacation model: a travel-reservation system.
//!
//! STAMP's vacation performs read-mostly reservation transactions over
//! several tables. The base variant aborts on red-black-tree rebalancing
//! (§3: "both intruder and vacation have aborts due to rebalancing
//! operations of a red-black tree used to implement a map interface");
//! `vacation_opt` replaces the tree with a hashtable, and
//! `vacation_opt-sz` makes that hashtable resizable — re-introducing the
//! size-field bottleneck on the customer-orders table.

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::hashtable::HashTable;
use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total reservation transactions across all cores.
const TOTAL_TXS: u64 = 4096;
/// Items per table (one block each: word 0 is the availability count).
const ITEMS: u64 = 2048;
/// Customer-orders table buckets.
const BUCKETS: u64 = 512;
/// Per-transaction work (itinerary construction).
const WORK: u32 = 600;
/// Initial availability of every item (never exhausted).
const INITIAL_AVAIL: u64 = 1_000_000;
/// Rebalance once per this many transactions (base variant).
const REBALANCE_PERIOD: u64 = 16;

/// Builds the vacation model.
pub fn build(num_cores: usize, seed: u64, optimized: bool, resizable: bool) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let size_addr = alloc.alloc_words(1);
    let flights = alloc.alloc_blocks(ITEMS);
    let rooms = alloc.alloc_blocks(ITEMS);
    let rot0 = alloc.alloc_words(1);
    let rot1 = alloc.alloc_words(1);
    let orders = HashTable::new(
        alloc.alloc_blocks(BUCKETS),
        BUCKETS,
        (optimized && resizable).then_some(size_addr),
        TOTAL_TXS * 2,
    );

    let mut init = Vec::new();
    for table in [flights, rooms] {
        for i in 0..ITEMS {
            init.push((retcon_isa::Addr(table.0 + i * 8), INITIAL_AVAIL));
        }
    }

    let iters = (TOTAL_TXS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x7661_6361); // "vaca"

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        let tape: Vec<u64> = (0..iters).map(|_| core_rng.next_u64() >> 8 | 1).collect();
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let after_order = b.block();
        let after_rebalance = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_key = Reg(10);
        let r_a = Reg(4);
        let r_v = Reg(5);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        b.input(r_key);
        b.tx_begin();

        if optimized {
            b.work(WORK);
        } else {
            // Occasional tree-rebalance early in the transaction: blind
            // writes to hot words near the (modelled) tree root, whose
            // speculative-written bits are then held for the rest of the
            // long transaction — the serialization the paper attributes to
            // red-black rebalancing.
            let rebalance = b.block();
            let after_rb = b.block();
            b.mov(r_a, r_key);
            b.bin(BinOp::Shr, r_a, r_a, Operand::Imm(3));
            b.bin(
                BinOp::And,
                r_a,
                r_a,
                Operand::Imm((REBALANCE_PERIOD - 1) as i64),
            );
            b.branch(CmpOp::Eq, r_a, Operand::Imm(0), rebalance, after_rb);
            b.select(rebalance);
            b.imm(r_a, rot0.0);
            b.store(Operand::Reg(r_key), r_a, 0);
            b.imm(r_a, rot1.0);
            b.store(Operand::Reg(r_key), r_a, 0);
            b.jump(after_rb);
            b.select(after_rb);
            b.work(WORK);
        }

        // Browse: read the availability of a few items across both tables.
        for (t, table) in [flights, rooms, flights].iter().enumerate() {
            b.mov(r_a, r_key);
            b.bin(BinOp::Shr, r_a, r_a, Operand::Imm(4 * t as i64));
            b.bin(BinOp::And, r_a, r_a, Operand::Imm((ITEMS - 1) as i64));
            b.bin(BinOp::Shl, r_a, r_a, Operand::Imm(3));
            b.bin(BinOp::Add, r_a, r_a, Operand::Imm(table.0 as i64));
            b.load(r_v, r_a, 0);
        }
        // Reserve: decrement the availability of the last-browsed item if
        // it is positive (it always is with our inventory).
        let reserve = b.block();
        b.branch(CmpOp::Gt, r_v, Operand::Imm(0), reserve, after_order);
        b.select(reserve);
        b.bin(BinOp::Sub, r_v, r_v, Operand::Imm(1));
        b.store(Operand::Reg(r_v), r_a, 0);
        // Record the order in the customer-orders map.
        orders.emit_insert(&mut b, r_key, [Reg(1), Reg(2), Reg(3)], after_order);

        b.select(after_order);
        b.jump(after_rebalance);
        b.select(after_rebalance);
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("vacation program is well-formed"));
    }

    WorkloadSpec {
        name: match (optimized, resizable) {
            (false, _) => "vacation",
            (true, false) => "vacation_opt",
            (true, true) => "vacation_opt-sz",
        },
        programs,
        tapes,
        init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn all_variants_validate() {
        for (optimized, resizable) in [(false, false), (true, false), (true, true)] {
            let spec = build(4, 6, optimized, resizable);
            for p in &spec.programs {
                assert!(p.validate().is_ok());
            }
        }
    }

    #[test]
    fn reservations_conserve_inventory() {
        // Total decrements across both tables equals total transactions.
        let spec = build(4, 6, true, false);
        let cfg = retcon_sim::SimConfig::with_cores(4);
        let mut machine =
            retcon_sim::Machine::new(cfg, System::Eager.protocol(4), spec.programs.clone());
        for (i, tape) in spec.tapes.iter().enumerate() {
            machine.set_tape(i, tape.clone());
        }
        for &(a, v) in &spec.init {
            machine.init_word(a, v);
        }
        machine.run().expect("runs");
        let mut total = 0u64;
        for &(a, init_v) in &spec.init {
            total += init_v - machine.mem().read_word(a);
        }
        assert_eq!(total, TOTAL_TXS);
    }

    #[test]
    fn opt_beats_base() {
        let base = run_spec(&build(8, 6, false, false), System::Eager, 8).unwrap();
        let opt = run_spec(&build(8, 6, true, false), System::Eager, 8).unwrap();
        assert!(
            opt.cycles < base.cycles,
            "opt {} !< base {}",
            opt.cycles,
            base.cycles
        );
    }

    #[test]
    fn retcon_rescues_sz() {
        let sz_e = run_spec(&build(8, 6, true, true), System::Eager, 8).unwrap();
        let sz_r = run_spec(&build(8, 6, true, true), System::Retcon, 8).unwrap();
        assert!(sz_r.cycles < sz_e.cycles);
    }
}
