//! Figure 3: scalability before and after software restructurings.
//!
//! Paper reference: the `_opt` restructurings rescue intruder (5× → >20×)
//! and vacation (15× → >20×), but leave the `-sz` variants and python
//! abort-bound.

use retcon_bench::{print_header, run_at_scale, seq_cycles};
use retcon_workloads::{System, Workload};

fn main() {
    print_header(
        "Figure 3: baseline (eager) scalability before/after software restructurings",
        "",
    );
    println!("{:<18} {:>9} {:>14}", "workload", "speedup", "abort/commit");
    for w in Workload::fig9() {
        let seq = seq_cycles(w);
        let r = run_at_scale(w, System::Eager);
        println!(
            "{:<18} {:>9.1} {:>14.3}",
            w.label(),
            r.speedup_over(seq),
            r.abort_ratio()
        );
    }
    println!("\nExpected shape: intruder_opt and vacation_opt jump past 20x;");
    println!("the -sz variants and python(-_opt) stay conflict-bound.");
}
