//! Property: the durable store **never serves a record whose content
//! hash doesn't verify**. Arbitrary single-byte flips and truncations of
//! a spilled JSON envelope must produce exactly one of two outcomes at
//! warm start — the original record byte-identical (damage hit
//! redundant whitespace… which the compact envelope has none of, so in
//! practice: never silently altered), or a quarantine observable via
//! [`StoreStats::quarantined`] with the lookup returning nothing.
//!
//! The envelope is `{"key":…,"check":…,"report":…}` where `check` is
//! the content hash of the report's canonical compact JSON bytes, so
//! any surviving parse with altered content re-serializes to different
//! bytes and fails the check.

use proptest::prelude::*;
use retcon_lab::engine::ResultStore;
use retcon_lab::RunKey;
use retcon_sim::SimReport;
use retcon_workloads::{System, Workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One simulated report, shared across all proptest cases (simulation
/// is deterministic and takes long enough that per-case runs would
/// dominate the suite).
fn seeded_run() -> &'static (RunKey, SimReport) {
    static RUN: OnceLock<(RunKey, SimReport)> = OnceLock::new();
    RUN.get_or_init(|| {
        let key = RunKey::new(Workload::Counter, System::Retcon, 2, retcon_lab::SEED);
        let report = retcon_lab::engine::simulate(&key).expect("simulate");
        (key, report)
    })
}

fn case_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "retcon-spill-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spill dir");
    dir
}

/// Writes one verified spill entry and returns `(dir, hash, original
/// bytes, canonical record text)`.
fn spill_one() -> (PathBuf, u128, Vec<u8>, String) {
    let (key, report) = seeded_run();
    let dir = case_dir();
    let store = ResultStore::new(1 << 20).with_spill(dir.clone());
    let hash = key.content_hash();
    store.insert_hash(hash, report, 1);
    let path = dir.join(format!("{hash:032x}.json"));
    let bytes = std::fs::read(&path).expect("spill file written");
    let canonical = report.to_json().to_string();
    (dir, hash, bytes, canonical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single byte of the envelope is either detected
    /// (quarantined, nothing served) or — impossible for a compact
    /// canonical envelope — leaves the served bytes identical.
    #[test]
    fn flipped_byte_never_serves_unverified_record(
        pos_draw in 0u64..1_000_000,
        xor in 1u8..=255,
    ) {
        let (dir, hash, mut bytes, canonical) = spill_one();
        let pos = (pos_draw as usize) % bytes.len();
        bytes[pos] ^= xor;
        let path = dir.join(format!("{hash:032x}.json"));
        std::fs::write(&path, &bytes).expect("write damaged entry");

        let store = ResultStore::new(1 << 20).with_spill(dir.clone());
        let (recovered, quarantined) = store.warm_start();
        prop_assert_eq!(recovered + quarantined, 1, "entry neither recovered nor quarantined");
        match store.lookup_hash(hash) {
            Some(report) => {
                // Served ⇒ verified ⇒ byte-identical to the original.
                prop_assert_eq!(recovered, 1);
                prop_assert_eq!(report.to_json().to_string(), canonical.clone());
            }
            None => {
                prop_assert_eq!(quarantined, 1);
                prop_assert_eq!(store.stats().quarantined, 1);
                // The damaged file left the serving directory.
                prop_assert!(!path.exists(), "quarantined file still in spill dir");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the envelope at any point strictly inside it is always
    /// detected: a prefix either fails to parse or fails the check hash.
    #[test]
    fn truncated_entry_is_always_quarantined(keep_draw in 0u64..1_000_000) {
        let (dir, hash, bytes, _) = spill_one();
        let keep = (keep_draw as usize) % bytes.len(); // strictly shorter
        let path = dir.join(format!("{hash:032x}.json"));
        std::fs::write(&path, &bytes[..keep]).expect("write truncated entry");

        let store = ResultStore::new(1 << 20).with_spill(dir.clone());
        let (recovered, quarantined) = store.warm_start();
        prop_assert_eq!((recovered, quarantined), (0, 1));
        prop_assert!(store.lookup_hash(hash).is_none(), "served a truncated record");
        prop_assert_eq!(store.stats().quarantined, 1);
        prop_assert!(!path.exists(), "quarantined file still in spill dir");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
