//! Figure 10: runtime breakdown normalized to the eager baseline.
//!
//! For each workload and system (including DATM, a ROADMAP addition), bars
//! are scaled so eager's total is 1.0; a RETCON bar shorter than 1.0 means
//! RETCON finished in less total core-time than eager, and its conflict
//! component shows how much conflict time repair eliminated.
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Fig10)
}
