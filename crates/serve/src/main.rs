//! `retcon-serve` — daemon entry point.
//!
//! ```text
//! retcon-serve [--addr HOST:PORT] [--workers N] [--capacity-mb MB]
//!              [--spill DIR] [--max-runs N] [--max-pending N]
//!              [--max-line-bytes N] [--log-level LEVEL]
//! ```
//!
//! Lifecycle lines go through the [`retcon_obs`] leveled stderr logger
//! (timestamped, filtered by `--log-level`; default `info`). When
//! `--spill` names a directory with prior results, the boot warm-start
//! scan is reported (`recovered N, quarantined M` — a warning if
//! anything quarantined) before the listening line. Logs
//! `retcon-serve listening on ADDR` once the socket is bound (port 0
//! resolves to the ephemeral port picked), then serves until a
//! `shutdown` request drains it.

use retcon_obs::{info, warn};
use retcon_serve::{Server, ServerConfig};
use std::process::ExitCode;

fn usage() -> String {
    "usage: retcon-serve [--addr HOST:PORT] [--workers N] [--capacity-mb MB] \
     [--spill DIR] [--max-runs N] [--max-pending N] [--max-line-bytes N] \
     [--log-level error|warn|info|debug]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--capacity-mb" => {
                let mb: u64 = value("--capacity-mb")?
                    .parse()
                    .map_err(|e| format!("--capacity-mb: {e}"))?;
                cfg.capacity_bytes = mb << 20;
            }
            "--spill" => cfg.spill = Some(value("--spill")?.into()),
            "--max-runs" => {
                cfg.max_runs_per_request = value("--max-runs")?
                    .parse()
                    .map_err(|e| format!("--max-runs: {e}"))?;
            }
            "--max-pending" => {
                cfg.max_pending_per_conn = value("--max-pending")?
                    .parse()
                    .map_err(|e| format!("--max-pending: {e}"))?;
            }
            "--max-line-bytes" => {
                cfg.max_line_bytes = value("--max-line-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-line-bytes: {e}"))?;
            }
            "--log-level" => {
                let v = value("--log-level")?;
                let level = retcon_obs::logger::Level::parse(&v)
                    .ok_or_else(|| format!("--log-level: unknown level `{v}`\n{}", usage()))?;
                retcon_obs::logger::set_level(level);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let spilled = cfg.spill.is_some();
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("retcon-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if spilled {
        let stats = server.store_stats();
        // Quarantined entries mean on-disk damage was found (and
        // contained) — worth a warning, not just an info line.
        if stats.quarantined > 0 {
            warn!(
                "retcon-serve warm start: recovered {}, quarantined {}",
                stats.recovered_on_boot, stats.quarantined
            );
        } else {
            info!(
                "retcon-serve warm start: recovered {}, quarantined {}",
                stats.recovered_on_boot, stats.quarantined
            );
        }
    }
    info!("retcon-serve listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("retcon-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
