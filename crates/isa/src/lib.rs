//! Mini RISC-like instruction set for the RETCON transactional-memory simulator.
//!
//! The RETCON paper (Blundell, Raghavan, Martin — ISCA 2010) evaluates a
//! hardware mechanism that tracks, *per dynamic instruction*, how values
//! loaded from memory flow through registers, arithmetic, branches and
//! stores. Reproducing that mechanism therefore requires an instruction-level
//! substrate: workloads must be expressed as programs whose loads, adds,
//! branches and stores the simulated hardware can observe one at a time.
//!
//! This crate defines that substrate: a deliberately small, word-granularity
//! (64-bit) RISC-like IR with
//!
//! * integer registers ([`Reg`]),
//! * basic blocks of instructions ([`Instr`], [`BasicBlock`]) with explicit
//!   control transfers,
//! * transactional region markers (`TxBegin` / `TxCommit`),
//! * a thread-private *input tape* instruction (`Input`) used by workload
//!   generators to feed pre-randomized keys into programs without modelling
//!   an RNG in simulated memory, and
//! * an abstract `Work` instruction that models computation that neither
//!   touches memory nor is trackable symbolically.
//!
//! Addresses are in units of 64-bit *words* (the simulator's coherence
//! substrate groups 8 consecutive words into a 64-byte block, matching the
//! paper's Table 1 configuration).
//!
//! # Example
//!
//! Build a program that atomically increments a shared counter at word
//! address 100 a given number of times:
//!
//! ```
//! use retcon_isa::{ProgramBuilder, Reg, Operand, BinOp, CmpOp};
//!
//! let mut b = ProgramBuilder::new();
//! let body = b.block();
//! let done = b.block();
//!
//! let iters = Reg(0);
//! let addr = Reg(1);
//! let val = Reg(2);
//!
//! b.select(b.entry());
//! b.imm(iters, 10);
//! b.imm(addr, 100);
//! b.jump(body);
//!
//! b.select(body);
//! b.tx_begin();
//! b.load(val, addr, 0);
//! b.bin(BinOp::Add, val, val, Operand::Imm(1));
//! b.store(Operand::Reg(val), addr, 0);
//! b.tx_commit();
//! b.bin(BinOp::Sub, iters, iters, Operand::Imm(1));
//! b.branch(CmpOp::Gt, iters, Operand::Imm(0), body, done);
//!
//! b.select(done);
//! b.halt();
//!
//! let program = b.build()?;
//! assert!(program.validate().is_ok());
//! # Ok::<(), retcon_isa::BuildError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addr;
mod builder;
pub mod coreset;
pub mod fx;
mod instr;
mod program;
mod reg;
pub mod table;

pub use addr::{Addr, BlockAddr, WORDS_PER_BLOCK};
pub use builder::{BuildError, ProgramBuilder};
pub use coreset::CoreSet;
pub use instr::{BinOp, CmpOp, Instr, Operand};
pub use program::{BasicBlock, BlockId, Pc, Program, ValidateError};
pub use reg::{Reg, NUM_REGS};
