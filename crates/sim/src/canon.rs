//! Canonical byte encoding and content hashing of simulation configs.
//!
//! The serving stack (`crates/serve`, via `retcon-lab`'s engine) keys its
//! content-addressed result store by a hash of everything a run's report
//! is a pure function of. That hash must be *stable* — the same logical
//! configuration must hash equal across processes, hosts and PRs — so it
//! cannot lean on `std`'s process-seeded `Hash`, struct layout, or
//! `Debug` formatting. Instead every config writes itself into a
//! [`Canon`] byte stream under explicit rules:
//!
//! * every field is written in declaration order, fixed-width
//!   little-endian for integers;
//! * strings are length-prefixed;
//! * `Option`s write a presence byte, then the value if present;
//! * encodings start with a versioned tag (`simconfig-v1`, …) so an
//!   accidental field addition changes the bytes loudly rather than
//!   silently colliding.
//!
//! The invariant the lab test suite pins: **two configurations with equal
//! canonical bytes produce byte-identical records** (they describe the
//! same pure function), and the content hash is a function of nothing but
//! those bytes.

use crate::config::SimConfig;

/// A canonical byte stream under construction.
///
/// Thin wrapper over `Vec<u8>` whose methods are the *only* sanctioned
/// ways to append, so every encoder follows the same field rules.
#[derive(Debug, Default, Clone)]
pub struct Canon {
    bytes: Vec<u8>,
}

impl Canon {
    /// An empty stream.
    pub fn new() -> Canon {
        Canon::default()
    }

    /// Appends a versioned tag (encoded like a string). Every encoder
    /// starts with one so different shapes can never alias.
    pub fn tag(&mut self, tag: &str) {
        self.str(tag);
    }

    /// Appends a `u64`, fixed-width little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a `u32` widened to `u64` (fixed width keeps the stream
    /// self-describing without per-field headers).
    pub fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.bytes.push(u8::from(v));
    }

    /// Appends an optional `u64`: a presence byte, then the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.bytes.push(1);
                self.u64(v);
            }
            None => self.bytes.push(0),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// The finished byte stream.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// The stream's current content hash (see [`content_hash128`]).
    pub fn content_hash(&self) -> u128 {
        content_hash128(&self.bytes)
    }
}

/// SplitMix64 finalizer: the same mixing function the workload RNG uses,
/// applied once to diffuse a lane's final state.
fn splitmix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One Fx step (rotate, xor, multiply) — the seedless hash the hot-path
/// tables use (`retcon_isa::fx`), here run as a streaming lane.
fn fx_step(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Content hash of a canonical byte stream: two independently-seeded Fx
/// lanes over the 8-byte words, each closed over the total length and
/// finalized with a SplitMix64 mix. 128 bits so the content-addressed
/// store can treat equal hashes as equal configs (a collision would need
/// ~2^64 distinct configs; the proptest suite additionally pins that
/// hash equality coincides with byte equality on generated configs).
pub fn content_hash128(bytes: &[u8]) -> u128 {
    let mut a = splitmix(0x7265_7463_6f6e_0001); // "retcon"-derived lane seeds
    let mut b = splitmix(0x7265_7463_6f6e_0002);
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        let word = u64::from_le_bytes(buf);
        a = fx_step(a, word);
        b = fx_step(b, word ^ 0xA5A5_A5A5_A5A5_A5A5);
    }
    let len = bytes.len() as u64;
    a = splitmix(fx_step(a, len));
    b = splitmix(fx_step(b, len));
    (u128::from(a) << 64) | u128::from(b)
}

impl SimConfig {
    /// Writes the machine configuration into a canonical stream: every
    /// field of the config (core count, cache geometry, latencies, stall
    /// retry, cycle cap, schedule seed), tagged and in declaration order.
    ///
    /// This is the encoding surface the serving stack's run keys build
    /// on; see the module docs for the rules and the invariant.
    pub fn canonical_encode(&self, c: &mut Canon) {
        c.tag("simconfig-v1");
        c.usize(self.num_cores);
        c.usize(self.mem.l1.sets);
        c.usize(self.mem.l1.ways);
        c.usize(self.mem.l2.sets);
        c.usize(self.mem.l2.ways);
        c.u64(self.mem.latency.l1_hit);
        c.u64(self.mem.latency.l2_hit);
        c.u64(self.mem.latency.hop);
        c.u64(self.mem.latency.dram);
        c.u64(self.stall_retry);
        c.u64(self.max_cycles);
        c.opt_u64(self.schedule_seed);
    }

    /// The config's canonical bytes (a fresh stream, encoded).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut c = Canon::new();
        self.canonical_encode(&mut c);
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic_and_field_sensitive() {
        let base = SimConfig::default();
        assert_eq!(
            base.canonical_bytes(),
            SimConfig::default().canonical_bytes()
        );

        let mut cores = base;
        cores.num_cores = 8;
        assert_ne!(base.canonical_bytes(), cores.canonical_bytes());

        let mut sched = base;
        sched.schedule_seed = Some(0);
        assert_ne!(base.canonical_bytes(), sched.canonical_bytes());
    }

    #[test]
    fn option_none_and_zero_do_not_alias() {
        // `schedule_seed: None` vs `Some(0)` must differ — the presence
        // byte guarantees it.
        let none = SimConfig::default();
        let zero = SimConfig {
            schedule_seed: Some(0),
            ..SimConfig::default()
        };
        assert_ne!(none.canonical_bytes(), zero.canonical_bytes());
        assert_ne!(
            content_hash128(&none.canonical_bytes()),
            content_hash128(&zero.canonical_bytes())
        );
    }

    #[test]
    fn hash_depends_on_length_and_content() {
        assert_ne!(content_hash128(b""), content_hash128(b"\0"));
        assert_ne!(content_hash128(b"\0"), content_hash128(b"\0\0"));
        assert_ne!(content_hash128(b"abcdefgh"), content_hash128(b"abcdefgi"));
        assert_eq!(content_hash128(b"abcdefgh"), content_hash128(b"abcdefgh"));
    }

    #[test]
    fn strings_are_length_prefixed() {
        // ("ab","c") and ("a","bc") must not alias.
        let mut x = Canon::new();
        x.str("ab");
        x.str("c");
        let mut y = Canon::new();
        y.str("a");
        y.str("bc");
        assert_ne!(x.finish(), y.finish());
    }
}
