//! The kmeans model: partition-based clustering.
//!
//! Each transaction assigns a point to a cluster and folds the point into
//! the cluster centre's accumulators. The update uses a multiply (a running
//! scaled mean), which RETCON cannot track symbolically — so, as in the
//! paper's Figure 9, kmeans behaves the same under eager, lazy-vb and
//! RETCON: its moderate conflicts are genuine.

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total points across all cores.
const TOTAL_POINTS: u64 = 8192;
/// Number of cluster centres (one block each).
const CLUSTERS: u64 = 256;
/// Distance-computation work per point (outside the transaction).
const WORK: u32 = 400;

/// Builds the kmeans model.
pub fn build(num_cores: usize, seed: u64) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let centers = alloc.alloc_blocks(CLUSTERS);
    let iters = (TOTAL_POINTS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x6b6d_6561); // "kmea"

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        let tape: Vec<u64> = (0..iters).map(|_| core_rng.next_u64() >> 8).collect();
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_pt = Reg(10);
        let r_addr = Reg(4);
        let r_val = Reg(5);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        b.input(r_pt);
        // Distance computation happens outside the critical section in
        // STAMP's kmeans; only the centre update is transactional.
        b.work(WORK);
        b.tx_begin();
        // centre = centers + (point & (CLUSTERS-1)) * 8
        b.mov(r_addr, r_pt);
        b.bin(
            BinOp::And,
            r_addr,
            r_addr,
            Operand::Imm((CLUSTERS - 1) as i64),
        );
        b.bin(BinOp::Shl, r_addr, r_addr, Operand::Imm(3));
        b.bin(BinOp::Add, r_addr, r_addr, Operand::Imm(centers.0 as i64));
        // count += 1 (word 0).
        b.load(r_val, r_addr, 0);
        b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
        b.store(Operand::Reg(r_val), r_addr, 0);
        // Two accumulator words fold the point in with a scaled-mean update
        // (multiply ⇒ untrackable).
        for dim in 1..3 {
            b.load(r_val, r_addr, dim);
            b.bin(BinOp::Mul, r_val, r_val, Operand::Imm(3));
            b.bin(BinOp::Shr, r_val, r_val, Operand::Imm(2));
            b.bin(BinOp::Add, r_val, r_val, Operand::Reg(r_pt));
            b.store(Operand::Reg(r_val), r_addr, dim);
        }
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("kmeans program is well-formed"));
    }

    WorkloadSpec {
        name: "kmeans",
        programs,
        tapes,
        init: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn programs_validate() {
        let spec = build(4, 3);
        for p in &spec.programs {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn counts_are_preserved() {
        // Sum of the per-cluster counts equals the number of points, under
        // eager and RETCON alike.
        for system in [System::Eager, System::Retcon] {
            let spec = build(4, 3);
            let cfg = retcon_sim::SimConfig::with_cores(4);
            let mut machine =
                retcon_sim::Machine::new(cfg, system.protocol(4), spec.programs.clone());
            for (i, tape) in spec.tapes.iter().enumerate() {
                machine.set_tape(i, tape.clone());
            }
            machine.run().expect("runs");
            let total: u64 = (0..CLUSTERS)
                .map(|c| machine.mem().read_word(retcon_isa::Addr(c * 8)))
                .sum();
            assert_eq!(total, TOTAL_POINTS, "{system:?}");
        }
    }

    #[test]
    fn retcon_matches_eager() {
        // The multiply-based update defeats symbolic tracking: RETCON's time
        // is close to eager's (no large win or loss).
        let spec = build(8, 3);
        let eager = run_spec(&spec, System::Eager, 8).unwrap();
        let retcon = run_spec(&spec, System::Retcon, 8).unwrap();
        let ratio = retcon.cycles as f64 / eager.cycles as f64;
        assert!((0.6..1.4).contains(&ratio), "ratio {ratio}");
    }
}
