//! Content-hash properties for the serving stack's run keys, plus a
//! golden hash snapshot.
//!
//! The contract [`RunKey::content_hash`] must uphold for the
//! content-addressed result store to be sound:
//!
//! 1. the hash is a pure function of [`RunKey::canonical_bytes`] —
//!    byte-equal keys hash equal, byte-distinct keys hash distinct (a
//!    collision among the small structured key space would be a bug, not
//!    bad luck);
//! 2. **hash equality implies record byte-equality**: any two keys the
//!    store would alias must produce byte-identical [`RunRecord`]s. The
//!    interesting aliases are intentional — `System::Retcon` with an
//!    explicit-but-default config normalizes onto the plain `Retcon`
//!    key — and the property exercises them alongside arbitrary pairs.
//!
//! The golden snapshot pins the seed-42 hashes as hex constants so the
//! canonical encoding cannot drift silently: a changed constant means
//! every spilled store on disk is invalidated, which must be a reviewed
//! decision, not an accident.

use proptest::prelude::*;

use retcon::RetconConfig;
use retcon_lab::engine::{record_for, simulate};
use retcon_lab::{RunKey, SEED};
use retcon_sim::SimConfig;
use retcon_workloads::{System, Workload};

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Counter),
        Just(Workload::Genome { resizable: false }),
        Just(Workload::Genome { resizable: true }),
        Just(Workload::Kmeans),
        Just(Workload::Ssca2),
    ]
}

fn system_strategy() -> impl Strategy<Value = System> {
    prop_oneof![
        Just(System::Eager),
        Just(System::EagerAbort),
        Just(System::Lazy),
        Just(System::Retcon),
        Just(System::RetconIdeal),
    ]
}

fn cfg_strategy() -> impl Strategy<Value = Option<RetconConfig>> {
    prop_oneof![
        Just(None),
        Just(Some(RetconConfig::default())),
        (1usize..64, 1usize..64, any::<bool>()).prop_map(|(ivb, ssb, unlimited)| {
            Some(RetconConfig {
                ivb_capacity: ivb,
                ssb_capacity: ssb,
                unlimited_state: unlimited,
                ..RetconConfig::default()
            })
        }),
    ]
}

fn key_strategy() -> impl Strategy<Value = RunKey> {
    (
        workload_strategy(),
        system_strategy(),
        cfg_strategy(),
        1usize..8,
        0u64..64,
    )
        .prop_map(|(workload, system, cfg, cores, seed)| RunKey {
            workload,
            system,
            cfg,
            cores,
            seed,
        })
}

/// A pair of keys biased toward the interesting relations: identical,
/// default-config alias, or independent.
fn key_pair_strategy() -> impl Strategy<Value = (RunKey, RunKey)> {
    (key_strategy(), key_strategy(), 0u8..4).prop_map(|(a, b, relation)| match relation {
        // Identical pair.
        0 => (a.clone(), a),
        // The intentional alias: plain Retcon vs explicit default config.
        1 => {
            let plain = RunKey {
                system: System::Retcon,
                cfg: None,
                ..a
            };
            let explicit = RunKey {
                cfg: Some(RetconConfig::default()),
                ..plain.clone()
            };
            (plain, explicit)
        }
        // Single-field perturbation (seed differs).
        2 => {
            let b = RunKey {
                seed: a.seed.wrapping_add(1),
                ..a.clone()
            };
            (a, b)
        }
        // Independent keys.
        _ => (a, b),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hash equality ⇔ canonical-byte equality over the structured key
    /// space. (⇒ would be violated by a collision; ⇐ by a hash reading
    /// state outside the canonical bytes.)
    #[test]
    fn hash_equality_iff_byte_equality((a, b) in key_pair_strategy()) {
        let bytes_equal = a.canonical_bytes() == b.canonical_bytes();
        let hash_equal = a.content_hash() == b.content_hash();
        prop_assert_eq!(
            bytes_equal, hash_equal,
            "bytes_equal={} hash_equal={} for {:?} vs {:?}", bytes_equal, hash_equal, a, b
        );
    }

    /// The hash is stable under re-encoding (no hidden per-call state).
    #[test]
    fn hash_is_deterministic(key in key_strategy()) {
        prop_assert_eq!(key.content_hash(), key.content_hash());
        prop_assert_eq!(key.canonical_bytes(), key.canonical_bytes());
    }
}

proptest! {
    // Simulation-backed property: expensive, so fewer cases over a
    // cheap corner of the space (counter at low core counts).
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hash equality ⇒ record byte-equality: any pair the store would
    /// alias produces byte-identical records. The `relation == 1` arm of
    /// the pair strategy makes genuinely-distinct aliased keys (plain vs
    /// explicit-default config) a common case rather than a fluke.
    #[test]
    fn equal_hashes_mean_byte_equal_records(
        (a, b) in key_pair_strategy(),
        cores in 1usize..3,
        seed in 0u64..4,
    ) {
        // Clamp to a cheap simulation while keeping the pair's relation.
        let a = RunKey { workload: Workload::Counter, cores, seed, ..a };
        let b = RunKey { workload: Workload::Counter, cores, seed, ..b };
        if a.content_hash() == b.content_hash() {
            let ra = record_for(&a, simulate(&a).unwrap());
            let rb = record_for(&b, simulate(&b).unwrap());
            prop_assert_eq!(
                ra.to_json().to_string(),
                rb.to_json().to_string(),
                "aliased keys produced different records: {:?} vs {:?}", a, b
            );
        }
    }
}

/// Golden hash snapshot: the canonical seed-42 keys, pinned as hex.
///
/// If this fails because the canonical encoding *intentionally* changed,
/// bump the version tag in the encoder (`runkey-v1` → `runkey-v2` or
/// `simconfig-v1` → `simconfig-v2`), update these constants from the
/// assertion output, and note in DESIGN.md that spilled stores are
/// invalidated.
#[test]
fn golden_seed42_hashes() {
    let cases: [(&str, RunKey, u128); 4] = [
        (
            "counter/eager/32",
            RunKey::new(Workload::Counter, System::Eager, 32, SEED),
            0xecfccb81aa67eda2a4417ee501367911,
        ),
        (
            "counter/RetCon/32",
            RunKey::new(Workload::Counter, System::Retcon, 32, SEED),
            0x4b2b7a90e962679d7d41e22b012406f7,
        ),
        (
            "counter/RetCon/32 explicit default cfg (aliases plain)",
            RunKey {
                cfg: Some(RetconConfig::default()),
                ..RunKey::new(Workload::Counter, System::Retcon, 32, SEED)
            },
            0x4b2b7a90e962679d7d41e22b012406f7,
        ),
        (
            "genome/lazy/8",
            RunKey::new(Workload::Genome { resizable: false }, System::Lazy, 8, SEED),
            0x501db6fc6aa4bbae1f474d95395857c0,
        ),
    ];
    for (label, key, expected) in cases {
        assert_eq!(
            key.content_hash(),
            expected,
            "golden hash drifted for {label}: got {:#034x}",
            key.content_hash()
        );
    }

    // The machine-config encoding underneath is pinned too.
    let mut c = retcon_sim::Canon::new();
    SimConfig::default().canonical_encode(&mut c);
    assert_eq!(
        c.content_hash(),
        0xe040606398a549cd446f167c99c69179,
        "default SimConfig canonical hash drifted: got {:#034x}",
        {
            let mut c = retcon_sim::Canon::new();
            SimConfig::default().canonical_encode(&mut c);
            c.content_hash()
        }
    );
}
