//! Core-count scaling sweep (supplementary): speedup at 1–32 cores for the
//! workloads whose scaling curves the paper discusses qualitatively
//! (python_opt's "near-linear scaling on 32 cores" being the headline).
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Scaling)
}
