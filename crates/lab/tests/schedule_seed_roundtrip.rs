//! Fuzzed-schedule replayability: a run driven by `--schedule-seed` must
//! stay replayable from *either* serialized format. The seed rides in the
//! `schedule-seed` knob (`retcon-run --json` writes it; explore fuzz
//! violations embed `seed=…` in the record metadata), so both the JSON
//! and the CSV projection must carry knob and metadata through a round
//! trip without loss.

use retcon_lab::csv;
use retcon_lab::record::{ExperimentRecord, RunRecord};
use retcon_sim::json::Json;
use retcon_sim::{CoreReport, SimReport, TimeBreakdown};

fn fuzzed_run(schedule_seed: u64) -> RunRecord {
    RunRecord {
        workload: "counter".to_string(),
        system: "RetCon".to_string(),
        cores: 4,
        seed: 42,
        knobs: vec![("schedule-seed".to_string(), schedule_seed.to_string())],
        seq_cycles: 0,
        report: SimReport {
            protocol_name: "RetCon".to_string(),
            cycles: 1234,
            per_core: vec![CoreReport {
                breakdown: TimeBreakdown::from_array([1000, 200, 30, 4]),
                instructions: 999,
                finished_at: 1234,
            }],
            protocol: Default::default(),
            retcon: None,
        },
    }
}

#[test]
fn schedule_seed_survives_json_round_trip() {
    let run = fuzzed_run(7);
    assert_eq!(run.schedule_seed(), Some(7));
    let text = run.to_json().to_pretty_string();
    let parsed = RunRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(parsed, run);
    assert_eq!(parsed.schedule_seed(), Some(7));
}

/// The exact record shape `retcon-run --json --schedule-seed 7` emits
/// must parse on the lab side — this is the cross-binary contract.
/// The envelope below is assembled with the same `Json::obj` calls
/// `retcon-run` uses (field names, order, and the string-valued
/// `schedule-seed` knob pair).
#[test]
fn retcon_run_knob_shape_parses() {
    let report = fuzzed_run(7).report;
    let emitted = Json::obj(vec![
        ("workload", Json::str("counter")),
        ("system", Json::str("RetCon")),
        ("cores", Json::UInt(4)),
        ("seed", Json::UInt(42)),
        (
            "knobs",
            Json::Arr(vec![Json::Arr(vec![
                Json::str("schedule-seed"),
                Json::str("7"),
            ])]),
        ),
        ("seq_cycles", Json::UInt(100)),
        ("report", report.to_json()),
    ])
    .to_pretty_string();
    let parsed = RunRecord::from_json(&Json::parse(&emitted).unwrap()).unwrap();
    assert_eq!(parsed.schedule_seed(), Some(7));
    assert_eq!(parsed.knob("schedule-seed"), Some("7"));
    assert_eq!(parsed.report, report);
}

#[test]
fn schedule_seed_and_violation_meta_survive_csv_round_trip() {
    let exp = ExperimentRecord {
        name: "explore".to_string(),
        seed: 42,
        // The shape `retcon-lab -- explore` writes for a fuzz violation:
        // the replay seed is embedded in the meta value, so the CSV meta
        // projection (`# meta k=v` lines, value may itself contain `=`)
        // must preserve it byte-for-byte.
        meta: vec![(
            "violation.0".to_string(),
            "x-counter RetCon fuzz seed=7 window=16 jitter=8: lost update".to_string(),
        )],
        runs: vec![fuzzed_run(7)],
    };
    let text = csv::to_csv(&exp).unwrap();
    let parsed = csv::from_csv(&text).unwrap();
    assert_eq!(parsed.meta, exp.meta);
    assert_eq!(parsed.runs[0].schedule_seed(), Some(7));
    assert_eq!(
        parsed.runs[0].knobs,
        vec![("schedule-seed".to_string(), "7".to_string())]
    );
    // emit ∘ parse ∘ emit = emit: the projection is byte-stable.
    assert_eq!(csv::to_csv(&parsed).unwrap(), text);
}

#[test]
fn missing_or_malformed_schedule_seed_is_none() {
    let mut run = fuzzed_run(7);
    run.knobs.clear();
    assert_eq!(run.schedule_seed(), None);
    run.knobs
        .push(("schedule-seed".to_string(), "not-a-number".to_string()));
    assert_eq!(run.schedule_seed(), None);
}
