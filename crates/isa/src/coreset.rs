//! Fixed-width core bitsets, monomorphized per machine size class.
//!
//! Every mask-keyed hot structure in the simulator — directory sharer
//! words, conflict masks, speculative read/write unions, DATM
//! reader/writer masks, stall-storm training masks — historically used a
//! single `u64`, capping the simulated machine at 64 cores. [`CoreSet`]
//! generalizes that word to a fixed `[u64; N]` array chosen per *size
//! class* at compile time:
//!
//! | `N` | cores |
//! |---|---|
//! | 1 | ≤ 64 (the paper matrix — identical codegen to the old `u64`) |
//! | 2 | ≤ 128 |
//! | 4 | ≤ 256 |
//! | 8 | ≤ 512 |
//! | 16 | ≤ 1024 |
//!
//! `N` defaults to 1, so every existing type that embeds a `CoreSet`
//! (`Directory`, `MemorySystem`, `StallStorm`, `Machine`, …) keeps its
//! historical single-word shape — and its byte-identical behavior —
//! unless a caller explicitly asks for a wider machine. All operations
//! are branch-free word loops that the compiler fully unrolls per
//! monomorphization; at `N = 1` they compile to exactly the single-word
//! `|`/`&`/`trailing_zeros` ops they replace.

/// A set of core indices stored as `N` 64-bit words (capacity `64 * N`).
///
/// # Example
///
/// ```
/// use retcon_isa::CoreSet;
///
/// let mut s: CoreSet = CoreSet::EMPTY; // N = 1 by default
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
///
/// let wide: CoreSet<16> = CoreSet::solo(1000); // up to 1024 cores
/// assert_eq!(wide.first(), Some(1000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreSet<const N: usize = 1> {
    words: [u64; N],
}

impl<const N: usize> CoreSet<N> {
    /// The set's capacity: core indices `0..CAPACITY` are representable.
    pub const CAPACITY: usize = 64 * N;

    /// The empty set (usable in `const` contexts, e.g. sentinel storms).
    pub const EMPTY: CoreSet<N> = CoreSet { words: [0; N] };

    /// The set containing exactly `core`.
    #[inline]
    #[must_use]
    pub const fn solo(core: usize) -> Self {
        let mut words = [0u64; N];
        words[core >> 6] = 1u64 << (core & 63);
        CoreSet { words }
    }

    /// `true` if no core is in the set.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let mut or = 0;
        for w in self.words {
            or |= w;
        }
        or == 0
    }

    /// Number of cores in the set.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u32 {
        let mut n = 0;
        for w in self.words {
            n += w.count_ones();
        }
        n
    }

    /// `true` if `core` is in the set.
    #[inline]
    #[must_use]
    pub fn contains(&self, core: usize) -> bool {
        self.words[core >> 6] & (1u64 << (core & 63)) != 0
    }

    /// Adds `core`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, core: usize) -> bool {
        let w = &mut self.words[core >> 6];
        let bit = 1u64 << (core & 63);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes `core`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, core: usize) -> bool {
        let w = &mut self.words[core >> 6];
        let bit = 1u64 << (core & 63);
        let had = *w & bit != 0;
        *w &= !bit;
        had
    }

    /// Removes every core, leaving the set empty.
    #[inline]
    pub fn clear(&mut self) {
        self.words = [0; N];
    }

    /// This set with `core` removed (the `mask & !(1 << core)` idiom).
    #[inline]
    #[must_use]
    pub fn without(mut self, core: usize) -> Self {
        self.words[core >> 6] &= !(1u64 << (core & 63));
        self
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(mut self, other: Self) -> Self {
        let mut i = 0;
        while i < N {
            self.words[i] |= other.words[i];
            i += 1;
        }
        self
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(mut self, other: Self) -> Self {
        let mut i = 0;
        while i < N {
            self.words[i] &= other.words[i];
            i += 1;
        }
        self
    }

    /// Set difference: the cores in `self` but not in `other`.
    #[inline]
    #[must_use]
    pub fn and_not(mut self, other: Self) -> Self {
        let mut i = 0;
        while i < N {
            self.words[i] &= !other.words[i];
            i += 1;
        }
        self
    }

    /// `true` if the sets share at least one core.
    #[inline]
    #[must_use]
    pub fn intersects(&self, other: Self) -> bool {
        let mut or = 0;
        let mut i = 0;
        while i < N {
            or |= self.words[i] & other.words[i];
            i += 1;
        }
        or != 0
    }

    /// The smallest core in the set, if any.
    #[inline]
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        let mut i = 0;
        while i < N {
            let w = self.words[i];
            if w != 0 {
                return Some((i << 6) | w.trailing_zeros() as usize);
            }
            i += 1;
        }
        None
    }

    /// Iterates the set's cores in ascending order. This is the sparse
    /// replacement for `(0..MAX_CORES)` linear scans: cost is one
    /// `trailing_zeros` per *member*, not per possible core.
    #[inline]
    pub fn iter(&self) -> Iter<N> {
        Iter {
            words: self.words,
            idx: 0,
        }
    }
}

impl<const N: usize> std::ops::BitOrAssign for CoreSet<N> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        *self = self.union(rhs);
    }
}

impl<const N: usize> Default for CoreSet<N> {
    #[inline]
    fn default() -> Self {
        Self::EMPTY
    }
}

impl<const N: usize> std::fmt::Debug for CoreSet<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<const N: usize> IntoIterator for CoreSet<N> {
    type Item = usize;
    type IntoIter = Iter<N>;
    #[inline]
    fn into_iter(self) -> Iter<N> {
        Iter {
            words: self.words,
            idx: 0,
        }
    }
}

/// Ascending-order iterator over a [`CoreSet`]'s members.
#[derive(Debug, Clone)]
pub struct Iter<const N: usize> {
    words: [u64; N],
    idx: usize,
}

impl<const N: usize> Iterator for Iter<N> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.idx < N {
            let w = self.words[self.idx];
            if w != 0 {
                self.words[self.idx] = w & (w - 1);
                return Some((self.idx << 6) | w.trailing_zeros() as usize);
            }
            self.idx += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let s: CoreSet = CoreSet::EMPTY;
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().next(), None);
        assert_eq!(s, CoreSet::default());
    }

    #[test]
    fn insert_remove_contains() {
        let mut s: CoreSet<2> = CoreSet::EMPTY;
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(127));
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert_eq!(s.count(), 4);
        assert!(s.contains(64) && !s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64), "double remove reports absent");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 127]);
    }

    #[test]
    fn iteration_crosses_word_boundaries_ascending() {
        let mut s: CoreSet<4> = CoreSet::EMPTY;
        for c in [200, 3, 64, 190, 128, 65] {
            s.insert(c);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 128, 190, 200]);
        assert_eq!(s.first(), Some(3));
    }

    #[test]
    fn set_algebra() {
        let mut a: CoreSet<2> = CoreSet::solo(5);
        a.insert(100);
        let b: CoreSet<2> = CoreSet::solo(100);
        assert_eq!(a.union(b), a);
        assert_eq!(a.intersect(b), b);
        assert_eq!(a.and_not(b), CoreSet::solo(5));
        assert_eq!(a.without(100), CoreSet::solo(5));
        assert!(a.intersects(b));
        assert!(!CoreSet::<2>::solo(5).intersects(b));
        let mut c = b;
        c |= CoreSet::solo(5);
        assert_eq!(c, a);
    }

    #[test]
    fn solo_is_const_and_wide() {
        const S: CoreSet<16> = CoreSet::solo(1023);
        assert!(S.contains(1023));
        assert_eq!(S.count(), 1);
        assert_eq!(S.first(), Some(1023));
    }

    #[test]
    fn clear_empties() {
        let mut s: CoreSet<8> = CoreSet::solo(400);
        s.insert(7);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn debug_lists_members() {
        let mut s: CoreSet<2> = CoreSet::EMPTY;
        s.insert(1);
        s.insert(66);
        assert_eq!(format!("{s:?}"), "{1, 66}");
    }
}
