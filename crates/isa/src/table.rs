//! Dense-first keyed tables for the simulator hot paths.
//!
//! Every per-block or per-word structure on the access hot path (directory
//! entries, conflict masks, speculative-permission unions, undo-log
//! membership, tracking predictors, transaction footprints) used to be an
//! `FxHashMap` — one hash per consultation, several consultations per
//! simulated memory access. Workloads allocate addresses densely from zero
//! (`retcon_workloads::Alloc`), so block and word numbers are small: a
//! direct-indexed `Vec` answers the common case with a bounds check and an
//! array load, and only adversarial/sparse keys (large literals in tests)
//! fall back to a hash map.
//!
//! Two shapes cover the consumers:
//!
//! * [`BlockTable`] — a persistent table where `T::default()` means
//!   "absent" (a cleared entry and a missing entry are indistinguishable,
//!   which matches how every consumer already treated its map);
//! * [`EpochSet`] / [`EpochMap`] — *per-transaction* membership with O(1)
//!   bulk clear: entries are stamped with the current epoch and `clear`
//!   just increments it, so the per-transaction footprint structures never
//!   pay a drain loop or a rehash.

use crate::fx::{FxHashMap, FxHashSet};

/// Keys below this use the direct-indexed dense storage (matches the dense
/// page window of the simulated memory: 16 MiB = 2^18 64-byte blocks or
/// 2^21 words — block-keyed tables stay well under the word bound). The
/// dense vector grows on demand up to the highest key actually touched, so
/// small workloads stay small.
const DENSE_KEYS: u64 = 1 << 21;

/// A block-keyed table: dense direct-indexed storage for low keys, sparse
/// hash fallback above, `T::default()` meaning "absent".
#[derive(Debug, Clone, Default)]
pub struct BlockTable<T> {
    dense: Vec<T>,
    sparse: FxHashMap<u64, T>,
}

impl<T: Copy + Default + PartialEq> BlockTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        BlockTable {
            dense: Vec::new(),
            sparse: FxHashMap::default(),
        }
    }

    /// The entry for `key`, by value (`T::default()` if absent).
    #[inline]
    pub fn get(&self, key: u64) -> T {
        if key < DENSE_KEYS {
            self.dense.get(key as usize).copied().unwrap_or_default()
        } else {
            self.sparse.get(&key).copied().unwrap_or_default()
        }
    }

    /// A mutable reference to the entry for `key`, created as
    /// `T::default()` if absent.
    #[inline]
    pub fn entry(&mut self, key: u64) -> &mut T {
        if key < DENSE_KEYS {
            let i = key as usize;
            if self.dense.len() <= i {
                self.dense.resize(i + 1, T::default());
            }
            &mut self.dense[i]
        } else {
            self.sparse.entry(key).or_default()
        }
    }

    /// Resets the entry for `key` to `T::default()`, returning the previous
    /// value.
    #[inline]
    pub fn clear_entry(&mut self, key: u64) -> T {
        if key < DENSE_KEYS {
            match self.dense.get_mut(key as usize) {
                Some(slot) => std::mem::take(slot),
                None => T::default(),
            }
        } else {
            self.sparse.remove(&key).unwrap_or_default()
        }
    }

    /// Number of non-default entries (diagnostics; scans the table).
    pub fn occupied(&self) -> usize {
        let d = T::default();
        self.dense.iter().filter(|&&v| v != d).count()
            + self.sparse.values().filter(|&&v| v != d).count()
    }
}

/// A set of keys with O(1) bulk [`clear`](EpochSet::clear): dense slots are
/// stamped with the epoch they were inserted in, so clearing is one
/// increment (plus draining the rare sparse spill). The transaction
/// footprint sets (undo membership, plainly-accessed blocks, DATM
/// read/write sets) clear once per transaction — this removes both their
/// per-access hashing and their per-transaction drain.
#[derive(Debug, Clone)]
pub struct EpochSet {
    stamps: Vec<u32>,
    epoch: u32,
    sparse: FxHashSet<u64>,
}

impl Default for EpochSet {
    fn default() -> Self {
        EpochSet::new()
    }
}

impl EpochSet {
    /// An empty set.
    pub fn new() -> Self {
        EpochSet {
            stamps: Vec::new(),
            // Epoch 0 is reserved as "never stamped".
            epoch: 1,
            sparse: FxHashSet::default(),
        }
    }

    /// Inserts `key`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        if key < DENSE_KEYS {
            let i = key as usize;
            if self.stamps.len() <= i {
                self.stamps.resize(i + 1, 0);
            }
            let slot = &mut self.stamps[i];
            let fresh = *slot != self.epoch;
            *slot = self.epoch;
            fresh
        } else {
            self.sparse.insert(key)
        }
    }

    /// `true` if `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        if key < DENSE_KEYS {
            self.stamps.get(key as usize) == Some(&self.epoch)
        } else {
            self.sparse.contains(&key)
        }
    }

    /// Removes `key`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> bool {
        if key < DENSE_KEYS {
            match self.stamps.get_mut(key as usize) {
                Some(slot) if *slot == self.epoch => {
                    *slot = 0;
                    true
                }
                _ => false,
            }
        } else {
            self.sparse.remove(&key)
        }
    }

    /// Empties the set in O(1) (amortized: the stamp array is zeroed only
    /// when the 32-bit epoch wraps).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
        if !self.sparse.is_empty() {
            self.sparse.clear();
        }
    }
}

/// An [`EpochSet`] carrying a value per present key.
#[derive(Debug, Clone)]
pub struct EpochMap<V> {
    stamps: Vec<u32>,
    values: Vec<V>,
    epoch: u32,
    sparse: FxHashMap<u64, V>,
}

impl<V: Copy + Default> Default for EpochMap<V> {
    fn default() -> Self {
        EpochMap::new()
    }
}

impl<V: Copy + Default> EpochMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        EpochMap {
            stamps: Vec::new(),
            values: Vec::new(),
            epoch: 1,
            sparse: FxHashMap::default(),
        }
    }

    /// Inserts `value` for `key` only if absent; returns `true` if newly
    /// inserted (the first-write-wins shape the undo log and value logs
    /// need).
    #[inline]
    pub fn insert_if_absent(&mut self, key: u64, value: V) -> bool {
        if key < DENSE_KEYS {
            let i = key as usize;
            if self.stamps.len() <= i {
                self.stamps.resize(i + 1, 0);
                self.values.resize(i + 1, V::default());
            }
            if self.stamps[i] == self.epoch {
                return false;
            }
            self.stamps[i] = self.epoch;
            self.values[i] = value;
            true
        } else if let std::collections::hash_map::Entry::Vacant(e) = self.sparse.entry(key) {
            e.insert(value);
            true
        } else {
            false
        }
    }

    /// Inserts (or overwrites) `value` for `key`; returns `true` if the key
    /// was newly inserted (the last-write-wins shape the write buffer
    /// needs).
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> bool {
        if key < DENSE_KEYS {
            let i = key as usize;
            if self.stamps.len() <= i {
                self.stamps.resize(i + 1, 0);
                self.values.resize(i + 1, V::default());
            }
            let fresh = self.stamps[i] != self.epoch;
            self.stamps[i] = self.epoch;
            self.values[i] = value;
            fresh
        } else {
            self.sparse.insert(key, value).is_none()
        }
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        if key < DENSE_KEYS {
            let i = key as usize;
            if self.stamps.get(i) == Some(&self.epoch) {
                Some(self.values[i])
            } else {
                None
            }
        } else {
            self.sparse.get(&key).copied()
        }
    }

    /// Empties the map in O(1) (amortized; see [`EpochSet::clear`]).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
        if !self.sparse.is_empty() {
            self.sparse.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_table_dense_and_sparse_round_trip() {
        let mut t: BlockTable<u64> = BlockTable::new();
        assert_eq!(t.get(3), 0);
        *t.entry(3) = 7;
        let far = DENSE_KEYS + 123;
        *t.entry(far) = 9;
        assert_eq!(t.get(3), 7);
        assert_eq!(t.get(far), 9);
        assert_eq!(t.occupied(), 2);
        assert_eq!(t.clear_entry(3), 7);
        assert_eq!(t.clear_entry(far), 9);
        assert_eq!(t.get(3), 0);
        assert_eq!(t.get(far), 0);
        assert_eq!(t.occupied(), 0);
        // Clearing an untouched key is a no-op.
        assert_eq!(t.clear_entry(DENSE_KEYS * 2), 0);
    }

    #[test]
    fn block_table_default_entries_do_not_count_as_occupied() {
        let mut t: BlockTable<u64> = BlockTable::new();
        *t.entry(100) = 0; // grows the dense vec but stays default
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn epoch_set_insert_contains_remove_clear() {
        let far = DENSE_KEYS + 5;
        let mut s = EpochSet::new();
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert!(s.insert(far));
        assert!(s.contains(4) && s.contains(far));
        assert!(!s.contains(5));
        assert!(s.remove(4));
        assert!(!s.remove(4));
        assert!(!s.contains(4));
        s.clear();
        assert!(!s.contains(far));
        // Post-clear the same keys insert as fresh.
        assert!(s.insert(4));
        assert!(s.insert(far));
    }

    #[test]
    fn epoch_set_survives_many_clears() {
        let mut s = EpochSet::new();
        for round in 0..100u64 {
            assert!(s.insert(round % 7));
            assert!(!s.insert(round % 7));
            s.clear();
        }
    }

    #[test]
    fn epoch_map_first_write_wins() {
        let far = DENSE_KEYS + 9;
        let mut m: EpochMap<u64> = EpochMap::new();
        assert!(m.insert_if_absent(3, 10));
        assert!(!m.insert_if_absent(3, 20));
        assert_eq!(m.get(3), Some(10));
        assert!(m.insert_if_absent(far, 30));
        assert!(!m.insert_if_absent(far, 40));
        assert_eq!(m.get(far), Some(30));
        assert_eq!(m.get(4), None);
        m.clear();
        assert_eq!(m.get(3), None);
        assert_eq!(m.get(far), None);
        assert!(m.insert_if_absent(3, 50));
        assert_eq!(m.get(3), Some(50));
    }
}
