//! The concurrency-control protocol interface driven by the simulator.

use retcon::RetconStats;
use retcon_isa::{Addr, BinOp, CmpOp, Reg};
use retcon_mem::{CoreId, MemorySystem};

use crate::result::{CommitResult, MemResult, ProtocolStats};
use crate::storm::{StallAction, StallStorm};

/// A hardware concurrency-control protocol.
///
/// The simulator routes every memory access, transaction boundary and —
/// because RETCON shadows the register file symbolically — every
/// register-writing instruction of every core through this trait. Protocols
/// that do not track registers use the default no-op hooks, which simply
/// compute the concrete result.
///
/// # Abort handshake
///
/// A protocol may abort a *remote* core's transaction while servicing a
/// request (contention management) or a commit. The simulator polls
/// [`take_aborted`](Protocol::take_aborted) before each instruction; a core
/// whose flag is set rolls its control flow back to the transaction begin.
/// Memory and speculative state have already been restored by the protocol
/// at abort time (zero-cycle rollback, per the paper's baseline).
pub trait Protocol<const N: usize = 1> {
    /// Short name for reports (e.g. `"eager"`, `"lazy-vb"`, `"RetCon"`).
    fn name(&self) -> &'static str;

    /// Begins (or re-begins after an abort) a transaction on `core` at cycle
    /// `now`.
    fn tx_begin(&mut self, core: CoreId, now: u64);

    /// `true` while `core` has an active transaction.
    fn tx_active(&self, core: CoreId) -> bool;

    /// Performs a load of `addr` into `dst`. `addr_reg` names the register
    /// the address was computed from (for RETCON's address-use equality
    /// pins).
    fn read(
        &mut self,
        core: CoreId,
        dst: Reg,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        now: u64,
    ) -> MemResult;

    /// Performs a store of `value` to `addr`. `src` names the source
    /// register (`None` for an immediate operand).
    #[allow(clippy::too_many_arguments)]
    fn write(
        &mut self,
        core: CoreId,
        src: Option<Reg>,
        value: u64,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        now: u64,
    ) -> MemResult;

    /// Attempts to commit `core`'s transaction at cycle `now`.
    fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, now: u64) -> CommitResult;

    /// Returns and clears the "aborted by another core" flag.
    fn take_aborted(&mut self, core: CoreId) -> bool;

    /// Non-clearing preview of [`take_aborted`](Protocol::take_aborted):
    /// `true` while `core` has a pending remote abort the simulator has
    /// not yet delivered. Exploration pruning consults this so a core
    /// about to restart is treated as performing its transaction begin,
    /// not the (stale) instruction under its program counter. The default
    /// (external protocols without introspection) reports no pending
    /// aborts — correct for any protocol that never aborts remotely.
    fn abort_pending(&self, _core: CoreId) -> bool {
        false
    }

    /// Hook: `dst` was overwritten with an immediate.
    fn on_imm(&mut self, _core: CoreId, _dst: Reg) {}

    /// Hook: register move `dst <- src`.
    fn on_mov(&mut self, _core: CoreId, _dst: Reg, _src: Reg) {}

    /// Hook: ALU operation; returns the concrete result. RETCON overrides
    /// this to propagate symbolic tags.
    #[allow(clippy::too_many_arguments)]
    fn on_alu(
        &mut self,
        _core: CoreId,
        op: BinOp,
        _dst: Reg,
        _lhs: Reg,
        _rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> u64 {
        op.apply(lhs_val, rhs_val)
    }

    /// Hook: branch; returns the concrete outcome. RETCON overrides this to
    /// record control-flow constraints.
    fn on_branch(
        &mut self,
        _core: CoreId,
        cmp: CmpOp,
        _lhs: Reg,
        _rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> bool {
        cmp.apply(lhs_val, rhs_val)
    }

    /// This core's protocol statistics.
    fn stats(&self, core: CoreId) -> &ProtocolStats;

    /// Aggregate RETCON structure statistics (Table 3), if this protocol
    /// collects them.
    fn retcon_stats(&self) -> Option<RetconStats> {
        None
    }

    /// Read-only dry run for the simulator's stall fast-forward: if the
    /// stalled `action` were retried by `core` right now, would it stall
    /// again with exactly the per-retry side effects described by the
    /// returned [`StallStorm`]? Must return `Some` only when a retry is a
    /// provable fixed point — it mutates nothing beyond the storm's
    /// declared side effects and its outcome cannot change until another
    /// core runs (e.g. RETCON returns `None` while a steal is possible,
    /// because a steal mutates coherence state). The default (protocols
    /// that never stall, and external protocols without introspection)
    /// declines, which simply disables fast-forwarding.
    fn stall_storm(
        &self,
        _core: CoreId,
        _action: StallAction,
        _mem: &MemorySystem<N>,
    ) -> Option<StallStorm<N>> {
        None
    }

    /// Applies the side effects of `n` retries of the storm previously
    /// validated by [`stall_storm`](Protocol::stall_storm) — exactly
    /// equivalent to executing the stalled instruction `n` more times. The
    /// default is a no-op, matching the default `stall_storm` that never
    /// admits a storm. `mem` receives the per-retry memory-statistics
    /// replay for commit storms ([`StallStorm::prefix_hits`]).
    fn apply_stall_retries(
        &mut self,
        _core: CoreId,
        _storm: &StallStorm<N>,
        _n: u64,
        _mem: &mut MemorySystem<N>,
    ) {
    }

    /// Checks protocol-internal invariants at a *quiescent* point — no
    /// core has an active transaction (e.g. after a completed run). All
    /// speculative state must have been retired: undo logs and write
    /// buffers empty, no pending abort flags, no dependence edges, and
    /// RETCON's symbolic repair chain fully collapsed (IVB/SSB empty, no
    /// register still carrying a symbolic tag). The exploration subsystem
    /// calls this after every explored schedule, turning internal
    /// bookkeeping leaks into reported violations instead of silent state
    /// corruption carried into the next run.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant. The default implementation
    /// (external protocols without introspection) checks nothing.
    fn check_quiescent(&self) -> Result<(), String> {
        Ok(())
    }
}
