//! Process-global phase accumulators: where does lab wall-clock go —
//! simulating, serializing records, or spill I/O?
//!
//! Callers time a span themselves (`std::time::Instant`) and charge the
//! elapsed microseconds to a [`Phase`] with [`add`]; [`snapshot`] reads
//! the totals. Accumulation is two relaxed atomic adds, cheap enough to
//! run unconditionally — *surfacing* the numbers (record meta, bench
//! entries) is what stays opt-in, because timings are nondeterministic
//! and the repo's record bytes are not allowed to be.

use std::sync::atomic::{AtomicU64, Ordering};

/// A profiled span category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Running simulations.
    Simulate = 0,
    /// Serializing records to JSON/CSV.
    Serialize = 1,
    /// Reading spill files back from disk.
    SpillRead = 2,
    /// Writing spill files to disk.
    SpillWrite = 3,
}

impl Phase {
    /// Every phase, in index order.
    pub const ALL: [Phase; 4] = [
        Phase::Simulate,
        Phase::Serialize,
        Phase::SpillRead,
        Phase::SpillWrite,
    ];

    /// Stable display name (used as the record-meta key suffix).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Simulate => "simulate",
            Phase::Serialize => "serialize",
            Phase::SpillRead => "spill_read",
            Phase::SpillWrite => "spill_write",
        }
    }
}

const N: usize = 4;
static MICROS: [AtomicU64; N] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static SPANS: [AtomicU64; N] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Charges one `micros`-long span to `phase`.
pub fn add(phase: Phase, micros: u64) {
    MICROS[phase as usize].fetch_add(micros, Ordering::Relaxed);
    SPANS[phase as usize].fetch_add(1, Ordering::Relaxed);
}

/// One phase's accumulated totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Which phase.
    pub phase: Phase,
    /// Total microseconds charged since process start (or the snapshot
    /// this is diffed against).
    pub micros: u64,
    /// Number of spans charged.
    pub spans: u64,
}

/// Current totals for every phase, in [`Phase::ALL`] order.
pub fn snapshot() -> [PhaseTotal; 4] {
    std::array::from_fn(|i| PhaseTotal {
        phase: Phase::ALL[i],
        micros: MICROS[i].load(Ordering::Relaxed),
        spans: SPANS[i].load(Ordering::Relaxed),
    })
}

/// `now - then`, per phase — the per-dataset delta the lab's `--profile`
/// meta reports. Saturating, so a racing reset cannot underflow.
pub fn delta(then: &[PhaseTotal; 4], now: &[PhaseTotal; 4]) -> [PhaseTotal; 4] {
    std::array::from_fn(|i| PhaseTotal {
        phase: now[i].phase,
        micros: now[i].micros.saturating_sub(then[i].micros),
        spans: now[i].spans.saturating_sub(then[i].spans),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_and_diff() {
        let before = snapshot();
        add(Phase::Simulate, 100);
        add(Phase::Simulate, 50);
        add(Phase::SpillWrite, 7);
        let after = snapshot();
        let d = delta(&before, &after);
        assert_eq!(d[Phase::Simulate as usize].micros, 150);
        assert_eq!(d[Phase::Simulate as usize].spans, 2);
        assert_eq!(d[Phase::SpillWrite as usize].micros, 7);
        assert_eq!(d[Phase::Serialize as usize].micros, 0);
    }
}
