//! Figure 9: scalability over sequential execution — eager vs lazy-vb vs
//! RETCON.
//!
//! The paper's headline numbers: RETCON turns python_opt from no scaling
//! into ~30×; genome-sz 14× → 24×; intruder_opt-sz 6× → 21×;
//! vacation_opt-sz 19× → 24×; yada/intruder/python unaffected.

use retcon_bench::{fmt_speedup, print_header, run_at_scale, seq_cycles};
use retcon_workloads::{System, Workload};

fn main() {
    print_header(
        "Figure 9: speedup over sequential — eager vs lazy-vb vs RetCon (32 cores)",
        "",
    );
    println!(
        "{:<18} {:>8} {:>8} {:>8}   shape check",
        "workload", "eager", "lazy-vb", "RetCon"
    );
    for w in Workload::fig9() {
        let seq = seq_cycles(w);
        let mut speedups = Vec::new();
        for s in System::FIG9 {
            let r = run_at_scale(w, s);
            speedups.push(r.speedup_over(seq));
        }
        let (eager, lazy_vb, retcon) = (speedups[0], speedups[1], speedups[2]);
        let verdict = shape_verdict(w, eager, lazy_vb, retcon);
        println!(
            "{:<18}{}{}{}   {}",
            w.label(),
            fmt_speedup(eager),
            fmt_speedup(lazy_vb),
            fmt_speedup(retcon),
            verdict
        );
    }
}

/// Checks each row against the paper's qualitative claim.
fn shape_verdict(w: Workload, eager: f64, lazy_vb: f64, retcon: f64) -> &'static str {
    let rescued = retcon > 2.0 * lazy_vb.max(eager);
    match w.label() {
        // Auxiliary-data workloads: RETCON must be the clear winner.
        "genome-sz" | "intruder_opt-sz" | "vacation_opt-sz" | "python_opt" => {
            if rescued {
                "OK: RetCon rescues (paper: same)"
            } else {
                "MISMATCH: expected RetCon >> others"
            }
        }
        // Vacation base: lazy-vb (and RETCON) beat eager.
        "vacation" => {
            if lazy_vb > 1.5 * eager && retcon > 1.5 * eager {
                "OK: value-based detection helps (paper: same)"
            } else {
                "MISMATCH: expected lazy-vb/RetCon > eager"
            }
        }
        // Unrepairable workloads: all three within a small factor.
        "intruder" | "yada" | "python" => {
            if retcon < 2.0 * eager.max(1.0) {
                "OK: repair cannot help (paper: same)"
            } else {
                "MISMATCH: unexpected RetCon win"
            }
        }
        _ => {
            if (retcon / eager).abs() < 2.0 {
                "OK: insensitive (paper: same)"
            } else {
                "MISMATCH"
            }
        }
    }
}
