//! Protocol result types and statistics.

use retcon_isa::{Reg, NUM_REGS};

/// Commit-time register repairs, stored inline.
///
/// A commit repairs at most one value per architectural register, so the
/// updates fit in a fixed `NUM_REGS`-slot array — committing never touches
/// the heap (the steady-state zero-allocation guarantee covers whole
/// `Machine::run` loops, RETCON repairs included).
#[derive(Clone, Copy)]
pub struct RegUpdates {
    len: u8,
    items: [(Reg, u64); NUM_REGS],
}

impl RegUpdates {
    /// No updates (every protocol except RETCON).
    pub const EMPTY: RegUpdates = RegUpdates {
        len: 0,
        items: [(Reg(0), 0); NUM_REGS],
    };

    /// Appends an update.
    ///
    /// # Panics
    ///
    /// Panics if more than `NUM_REGS` updates are pushed (impossible for a
    /// well-formed repair: one update per register).
    pub fn push(&mut self, reg: Reg, value: u64) {
        self.items[self.len as usize] = (reg, value);
        self.len += 1;
    }

    /// The updates, in repair order.
    pub fn as_slice(&self) -> &[(Reg, u64)] {
        &self.items[..self.len as usize]
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if there are no updates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for RegUpdates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for RegUpdates {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for RegUpdates {}

impl<'a> IntoIterator for &'a RegUpdates {
    type Item = &'a (Reg, u64);
    type IntoIter = std::slice::Iter<'a, (Reg, u64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<(Reg, u64)> for RegUpdates {
    fn from_iter<T: IntoIterator<Item = (Reg, u64)>>(iter: T) -> Self {
        let mut out = RegUpdates::EMPTY;
        for (r, v) in iter {
            out.push(r, v);
        }
        out
    }
}

/// Outcome of a transactional (or plain) memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemResult {
    /// The access completed.
    Value {
        /// The loaded value (stores echo the stored value).
        value: u64,
        /// Cycles the access took.
        latency: u64,
    },
    /// The requester must stall; the simulator retries the same instruction
    /// after a backoff.
    Stall,
    /// The local transaction aborted (the protocol has already rolled back
    /// memory and speculative state); the simulator restarts the core at its
    /// transaction begin.
    Abort,
}

/// Outcome of a commit attempt.
// The Committed variant carries the inline `RegUpdates` array by design:
// boxing it would put an allocation back on every commit, which the
// steady-state zero-allocation guarantee (tests/no_alloc_machine.rs)
// exists to prevent. Commit results are constructed once per transaction
// and consumed immediately; the transient stack size is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitResult {
    /// The transaction committed.
    Committed {
        /// Cycles spent in the commit (including any pre-commit repair).
        latency: u64,
        /// Register repairs to apply to the concrete register file
        /// (RETCON's symbolic registers; empty for other protocols).
        reg_updates: RegUpdates,
    },
    /// The commit must wait (e.g. a RETCON pre-commit reacquire lost a
    /// conflict to an older transaction, or a DATM predecessor has not
    /// committed); the simulator retries.
    Stall,
    /// The transaction aborted at commit (value validation or constraint
    /// violation failed); the simulator restarts the core.
    Abort,
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// A conflicting access by another core (or the contention manager chose
    /// this transaction as the victim).
    Conflict,
    /// Commit-time validation failed (lazy-vb value mismatch or RETCON
    /// constraint violation).
    Validation,
    /// A RETCON structure overflowed (symbolic store buffer full).
    Overflow,
    /// A dependence cycle (DATM).
    Cycle,
}

/// Per-core protocol statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborts by cause: conflicts.
    pub aborts_conflict: u64,
    /// Aborts by cause: failed commit-time validation.
    pub aborts_validation: u64,
    /// Aborts by cause: structure overflow.
    pub aborts_overflow: u64,
    /// Aborts by cause: dependence cycle.
    pub aborts_cycle: u64,
    /// Accesses that returned [`MemResult::Stall`].
    pub stalls: u64,
}

impl ProtocolStats {
    /// Stable field names, in the order [`ProtocolStats::as_array`] uses.
    /// This is the schema contract for machine-readable records
    /// (`retcon-lab`); extend it only by appending.
    pub const FIELDS: [&'static str; 6] = [
        "commits",
        "aborts_conflict",
        "aborts_validation",
        "aborts_overflow",
        "aborts_cycle",
        "stalls",
    ];

    /// The counters in [`ProtocolStats::FIELDS`] order.
    pub fn as_array(&self) -> [u64; 6] {
        [
            self.commits,
            self.aborts_conflict,
            self.aborts_validation,
            self.aborts_overflow,
            self.aborts_cycle,
            self.stalls,
        ]
    }

    /// Rebuilds statistics from [`ProtocolStats::FIELDS`]-ordered counters.
    pub fn from_array(values: [u64; 6]) -> Self {
        ProtocolStats {
            commits: values[0],
            aborts_conflict: values[1],
            aborts_validation: values[2],
            aborts_overflow: values[3],
            aborts_cycle: values[4],
            stalls: values[5],
        }
    }

    /// Total aborts across all causes.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_validation + self.aborts_overflow + self.aborts_cycle
    }

    /// Records an abort with its cause.
    pub fn record_abort(&mut self, cause: AbortCause) {
        match cause {
            AbortCause::Conflict => self.aborts_conflict += 1,
            AbortCause::Validation => self.aborts_validation += 1,
            AbortCause::Overflow => self.aborts_overflow += 1,
            AbortCause::Cycle => self.aborts_cycle += 1,
        }
    }

    /// Merges another core's counters into this one.
    pub fn merge(&mut self, other: &ProtocolStats) {
        self.commits += other.commits;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_validation += other.aborts_validation;
        self.aborts_overflow += other.aborts_overflow;
        self.aborts_cycle += other.aborts_cycle;
        self.stalls += other.stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_causes_bucketed() {
        let mut s = ProtocolStats::default();
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Validation);
        s.record_abort(AbortCause::Overflow);
        s.record_abort(AbortCause::Cycle);
        assert_eq!(s.aborts(), 5);
        assert_eq!(s.aborts_conflict, 2);
        assert_eq!(s.aborts_validation, 1);
    }

    #[test]
    fn merge_sums() {
        let mut a = ProtocolStats {
            commits: 1,
            stalls: 2,
            ..Default::default()
        };
        let b = ProtocolStats {
            commits: 3,
            aborts_conflict: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 4);
        assert_eq!(a.stalls, 2);
        assert_eq!(a.aborts(), 4);
    }
}
