//! RETCON hardware configuration.

/// Sizing and timing parameters of the RETCON structures.
///
/// Defaults reproduce Table 1 of the paper: a 16-entry initial value buffer
/// (16 blocks tracked symbolically), constraints maintained for 16 word
/// addresses, and a 32-entry symbolic store buffer. The three `idealized_*`
/// flags reproduce the §5.3 "comparison to idealized system" configuration
/// (unlimited state, parallel block reacquisition, free commit-time stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetconConfig {
    /// Maximum number of blocks the initial value buffer tracks
    /// ("16-entry original value buffer").
    pub ivb_capacity: usize,
    /// Maximum number of word addresses with interval constraints
    /// ("16-entry constraint buffer"). Equality constraints are represented
    /// as per-word bits in the IVB (§4.4) and do not consume entries.
    pub constraint_capacity: usize,
    /// Maximum number of symbolic store buffer entries ("32-entry symbolic
    /// store buffer").
    pub ssb_capacity: usize,
    /// §5.3 idealized variant: no capacity limits.
    pub unlimited_state: bool,
    /// §5.3 idealized variant: reacquire lost blocks in parallel at commit
    /// (the default conservatively reacquires serially).
    pub parallel_reacquire: bool,
    /// §5.3 idealized variant: commit-time stores are free (the default
    /// conservatively reperforms them serially after all reacquires).
    pub free_commit_stores: bool,
    /// Number of conflicts the predictor must observe on a block before
    /// (re)enabling symbolic tracking after a constraint violation
    /// ("requiring the observation of 100 conflicts on that block before
    /// attempting symbolic tracking on that block again").
    pub violation_backoff: u32,
    /// Number of conflicts the predictor must observe on a block before
    /// first enabling symbolic tracking.
    pub initial_threshold: u32,
}

impl Default for RetconConfig {
    fn default() -> Self {
        RetconConfig {
            ivb_capacity: 16,
            constraint_capacity: 16,
            ssb_capacity: 32,
            unlimited_state: false,
            parallel_reacquire: false,
            free_commit_stores: false,
            violation_backoff: 100,
            initial_threshold: 1,
        }
    }
}

impl RetconConfig {
    /// The §5.3 idealized configuration: unlimited state, parallel
    /// reacquisition, free commit-time stores.
    pub fn idealized() -> Self {
        RetconConfig {
            unlimited_state: true,
            parallel_reacquire: true,
            free_commit_stores: true,
            ..Self::default()
        }
    }

    /// Effective IVB capacity (`usize::MAX` when idealized).
    pub fn effective_ivb_capacity(&self) -> usize {
        if self.unlimited_state {
            usize::MAX
        } else {
            self.ivb_capacity
        }
    }

    /// Effective constraint-buffer capacity.
    pub fn effective_constraint_capacity(&self) -> usize {
        if self.unlimited_state {
            usize::MAX
        } else {
            self.constraint_capacity
        }
    }

    /// Effective SSB capacity.
    pub fn effective_ssb_capacity(&self) -> usize {
        if self.unlimited_state {
            usize::MAX
        } else {
            self.ssb_capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = RetconConfig::default();
        assert_eq!(c.ivb_capacity, 16);
        assert_eq!(c.constraint_capacity, 16);
        assert_eq!(c.ssb_capacity, 32);
        assert!(!c.unlimited_state);
        assert_eq!(c.violation_backoff, 100);
    }

    #[test]
    fn idealized_lifts_limits() {
        let c = RetconConfig::idealized();
        assert_eq!(c.effective_ivb_capacity(), usize::MAX);
        assert_eq!(c.effective_constraint_capacity(), usize::MAX);
        assert_eq!(c.effective_ssb_capacity(), usize::MAX);
        assert!(c.parallel_reacquire);
        assert!(c.free_commit_stores);
    }

    #[test]
    fn bounded_capacities_pass_through() {
        let c = RetconConfig::default();
        assert_eq!(c.effective_ivb_capacity(), 16);
        assert_eq!(c.effective_constraint_capacity(), 16);
        assert_eq!(c.effective_ssb_capacity(), 32);
    }
}
