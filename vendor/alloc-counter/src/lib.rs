//! A counting global allocator for "this path must not allocate" tests.
//!
//! Register [`CountingAllocator`] as the test binary's `#[global_allocator]`
//! and bracket the code under test with [`allocations`] snapshots:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//!
//! let before = alloc_counter::allocations();
//! hot_path();
//! assert_eq!(alloc_counter::allocations(), before);
//! ```
//!
//! This crate is vendored (the build container has no registry access) and
//! is the one place in the workspace allowed to use `unsafe`: a
//! `GlobalAlloc` impl cannot be written without it. It only delegates to
//! [`std::alloc::System`] and bumps atomic counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of `alloc`/`alloc_zeroed` calls since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Number of `dealloc` calls since process start.
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Number of `realloc` calls since process start.
pub fn reallocations() -> u64 {
    REALLOCATIONS.load(Ordering::Relaxed)
}

/// Sum of all heap-churn events (alloc + realloc + dealloc): the number a
/// zero-allocation steady-state loop must leave unchanged.
pub fn heap_events() -> u64 {
    allocations() + reallocations() + deallocations()
}

/// The counting allocator; delegates every operation to the system
/// allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}
