//! The daemon: connection handling, single-flight dedup, the worker
//! pool, and service lifecycle.
//!
//! ## Dedup pipeline
//!
//! Every sweep is exploded into per-run [`RunKey`]s and each key takes
//! exactly one of three paths, decided atomically against the in-flight
//! table:
//!
//! 1. **hit** — the content-addressed [`ResultStore`] already holds the
//!    report (memory or spill): the record line is sent immediately;
//! 2. **join** — another request is already executing the key: this
//!    requester is appended to the key's waiter list and the simulation
//!    runs **once** (single-flight);
//! 3. **miss** — the key is enqueued; a pool worker executes it, stores
//!    the report, and streams the record to every waiter.
//!
//! Workers serialize each finished report once and splice the payload
//! into every waiter's envelope, so fan-out cost is O(waiters), not
//! O(waiters × serialization).
//!
//! ## Determinism
//!
//! Nothing on the serving path can change simulation output: executions
//! call the same pure [`engine::simulate`] the offline runner calls, the
//! store returns exactly what a fresh run would (deterministic sims),
//! and record payloads are [`engine::record_for`] output. Arrival order
//! of record lines is scheduling-dependent; the canonical `index`
//! restores offline byte-identity (pinned by `tests/serve.rs`).
//!
//! ## Lifecycle
//!
//! `shutdown` flips the draining flag: new sweeps are rejected, workers
//! finish the queue (every accepted run still streams to its waiters),
//! the accept loop stops, and [`Server::run`] returns.

use crate::proto::{self, Request, SweepRequest};
use retcon_lab::engine::{self, lock_recover, FaultPlan, LineFault, ResultStore, RunKey};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing cache misses.
    pub workers: usize,
    /// Result-store capacity in estimated resident bytes.
    pub capacity_bytes: u64,
    /// Durable spill directory: results are written through on insert,
    /// verified on read, and recovered by a warm-start scan at bind
    /// (optional).
    pub spill: Option<PathBuf>,
    /// Maximum runs one sweep may explode into.
    pub max_runs_per_request: usize,
    /// Maximum sweeps one connection may have outstanding (backpressure:
    /// further sweeps are rejected until earlier ones complete).
    pub max_pending_per_conn: usize,
    /// Maximum request-line length in bytes: longer lines are discarded
    /// with a structured error, and the connection stays alive.
    pub max_line_bytes: usize,
    /// Bounded retries after a worker panic before the key is
    /// quarantined.
    pub panic_retries: u32,
    /// Deterministic fault injector (test-only; see [`FaultPlan`]).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            capacity_bytes: 64 << 20,
            spill: None,
            max_runs_per_request: 4096,
            max_pending_per_conn: 8,
            max_line_bytes: 1 << 20,
            panic_retries: 2,
            faults: None,
        }
    }
}

/// One queued cache miss.
struct WorkItem {
    hash: u128,
    key: RunKey,
}

/// A requester waiting on an in-flight key.
struct Waiter {
    out: Sender<String>,
    id: u64,
    index: u64,
    pending: Arc<Pending>,
}

/// Per-sweep completion state: counts fixed at classification time plus
/// the remaining-record countdown that triggers the `done` line.
struct Pending {
    out: Sender<String>,
    id: u64,
    runs: u64,
    hits: AtomicU64,
    joined: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    /// Records not yet delivered, plus one classification guard so the
    /// `done` line cannot fire while the reader is still classifying.
    remaining: AtomicU64,
    /// The owning connection's outstanding-sweep count (backpressure).
    outstanding: Arc<AtomicUsize>,
}

impl Pending {
    /// Marks one unit delivered (a record, an error, or the
    /// classification guard) and emits `done` on the last one.
    fn deliver_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let summary = proto::DoneSummary {
                id: self.id,
                runs: self.runs,
                hits: self.hits.load(Ordering::Relaxed),
                joined: self.joined.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                errors: self.errors.load(Ordering::Relaxed),
            };
            let _ = self.out.send(proto::done_line(&summary));
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Shared daemon state.
struct Core {
    cfg: ServerConfig,
    store: ResultStore,
    /// Single-flight table: content hash → waiters for the one execution.
    inflight: Mutex<HashMap<u128, Vec<Waiter>>>,
    queue: Mutex<VecDeque<WorkItem>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    executed: AtomicU64,
    joined_total: AtomicU64,
    sweeps: AtomicU64,
    connections: AtomicU64,
    /// Worker panics observed (every attempt counts, retries included).
    worker_panics: AtomicU64,
    /// Keys quarantined after exhausting panic retries: answered with a
    /// structured error immediately, never re-executed.
    key_quarantine: Mutex<HashSet<u128>>,
    /// Metrics registry served by the `metrics` verb. Histograms record
    /// live (request latency here, spill-write latency inside the
    /// store); scalar counters/gauges mirror [`Core::stats_fields`] at
    /// scrape time, so the two views can never disagree.
    metrics: retcon_obs::Registry,
    /// Per-executed-run simulation latency, micros.
    request_latency: Arc<retcon_obs::Log2Hist>,
}

impl Core {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Classifies and dispatches one sweep. Returns immediately; records
    /// stream from the store (hits) or the worker pool (joins/misses).
    fn submit_sweep(
        &self,
        req: &SweepRequest,
        keys: Vec<RunKey>,
        out: &Sender<String>,
        outstanding: &Arc<AtomicUsize>,
    ) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        let pending = Arc::new(Pending {
            out: out.clone(),
            id: req.id,
            runs: keys.len() as u64,
            hits: AtomicU64::new(0),
            joined: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            // +1: the classification guard released below.
            remaining: AtomicU64::new(keys.len() as u64 + 1),
            outstanding: Arc::clone(outstanding),
        });
        for (index, key) in keys.into_iter().enumerate() {
            let index = index as u64;
            let hash = key.content_hash();
            // Fast path outside the in-flight lock: most warm-sweep keys
            // resolve here.
            if let Some(report) = self.store.lookup_hash(hash) {
                pending.hits.fetch_add(1, Ordering::Relaxed);
                let run_json = engine::record_for(&key, report).to_json().to_string();
                let _ = out.send(proto::record_line(req.id, index, true, &run_json));
                pending.deliver_one();
                continue;
            }
            // Quarantined keys (repeated worker panics) answer with a
            // structured error instead of wedging another worker.
            if lock_recover(&self.key_quarantine).contains(&hash) {
                pending.errors.fetch_add(1, Ordering::Relaxed);
                let _ = out.send(proto::error_line(
                    Some(req.id),
                    Some(index),
                    "key quarantined after repeated worker panics",
                ));
                pending.deliver_one();
                continue;
            }
            let waiter = Waiter {
                out: out.clone(),
                id: req.id,
                index,
                pending: Arc::clone(&pending),
            };
            let mut inflight = lock_recover(&self.inflight);
            if let Some(waiters) = inflight.get_mut(&hash) {
                // Single-flight join: the execution already under way
                // will stream to this waiter too.
                waiters.push(waiter);
                pending.joined.fetch_add(1, Ordering::Relaxed);
                self.joined_total.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Re-check the store under the in-flight lock: a worker
            // completes by inserting into the store *before* removing the
            // in-flight entry (both ordered by this lock), so a key
            // missing from both really is idle.
            if let Some(report) = self.store.lookup_hash(hash) {
                drop(inflight);
                pending.hits.fetch_add(1, Ordering::Relaxed);
                let run_json = engine::record_for(&key, report).to_json().to_string();
                let _ = out.send(proto::record_line(req.id, index, true, &run_json));
                pending.deliver_one();
                continue;
            }
            inflight.insert(hash, vec![waiter]);
            drop(inflight);
            pending.misses.fetch_add(1, Ordering::Relaxed);
            lock_recover(&self.queue).push_back(WorkItem { hash, key });
            self.queue_cv.notify_one();
        }
        // Release the classification guard: if every key was a hit, this
        // is what emits `done`.
        pending.deliver_one();
    }

    /// Executes queued work until the queue is empty *and* the daemon is
    /// draining.
    ///
    /// Fault isolation: `simulate` runs under [`catch_unwind`], so a
    /// panicking workload cannot kill the worker thread. A panicked key
    /// is retried with linear backoff up to `panic_retries` times (a
    /// transient fault clears; an injected one-shot panic succeeds on
    /// retry), then quarantined: its waiters are woken with a structured
    /// error — never left hanging — and later requests for the key are
    /// refused at classification time.
    fn worker_loop(&self) {
        loop {
            let item = {
                let mut queue = lock_recover(&self.queue);
                loop {
                    if let Some(item) = queue.pop_front() {
                        break Some(item);
                    }
                    if self.draining() {
                        break None;
                    }
                    queue = self
                        .queue_cv
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(WorkItem { hash, key }) = item else {
                return;
            };
            let t = Instant::now();
            let mut outcome = None;
            for attempt in 0..=self.cfg.panic_retries {
                let unwound = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = &self.cfg.faults {
                        if plan.on_execution(hash) {
                            panic!("injected fault: worker panic");
                        }
                    }
                    engine::simulate(&key)
                }));
                match unwound {
                    Ok(result) => {
                        outcome = Some(result);
                        break;
                    }
                    Err(_) => {
                        self.worker_panics.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(5 * u64::from(attempt) + 5));
                    }
                }
            }
            self.executed.fetch_add(1, Ordering::Relaxed);
            self.request_latency.observe(t.elapsed().as_micros() as u64);
            match outcome {
                Some(Ok(report)) => {
                    // Store BEFORE removing the in-flight entry — the
                    // submit path relies on this order (see submit_sweep).
                    self.store
                        .insert_hash(hash, &report, t.elapsed().as_micros() as u64);
                    let run_json = engine::record_for(&key, report).to_json().to_string();
                    let waiters = lock_recover(&self.inflight)
                        .remove(&hash)
                        .unwrap_or_default();
                    for w in waiters {
                        let _ = w
                            .out
                            .send(proto::record_line(w.id, w.index, false, &run_json));
                        w.pending.deliver_one();
                    }
                }
                Some(Err(e)) => {
                    self.fail_key(hash, &format!("simulation failed: {e}"));
                }
                None => {
                    // Retries exhausted: quarantine so the key can never
                    // wedge another worker, and wake every waiter.
                    lock_recover(&self.key_quarantine).insert(hash);
                    self.fail_key(
                        hash,
                        &format!(
                            "worker panicked {} times; key quarantined",
                            self.cfg.panic_retries + 1
                        ),
                    );
                }
            }
        }
    }

    /// Wakes every waiter of a failed key with a structured error record.
    fn fail_key(&self, hash: u128, message: &str) {
        let waiters = lock_recover(&self.inflight)
            .remove(&hash)
            .unwrap_or_default();
        for w in waiters {
            let _ = w
                .out
                .send(proto::error_line(Some(w.id), Some(w.index), message));
            w.pending.errors.fetch_add(1, Ordering::Relaxed);
            w.pending.deliver_one();
        }
    }

    /// Service counters, in emission order.
    fn stats_fields(&self) -> Vec<(String, u64)> {
        let store = self.store.stats();
        let inflight = lock_recover(&self.inflight).len() as u64;
        let queue_depth = lock_recover(&self.queue).len() as u64;
        let key_quarantined = lock_recover(&self.key_quarantine).len() as u64;
        [
            ("executed", self.executed.load(Ordering::Relaxed)),
            ("store_hits", store.hits),
            ("spill_hits", store.spill_hits),
            ("store_misses", store.misses),
            ("insertions", store.insertions),
            ("evictions", store.evictions),
            ("resident", store.resident),
            ("resident_bytes", store.resident_cost),
            // Quarantines of both kinds: spill files that failed
            // verification plus keys retired after repeated panics.
            ("quarantined", store.quarantined + key_quarantined),
            ("recovered_on_boot", store.recovered_on_boot),
            ("worker_panics", self.worker_panics.load(Ordering::Relaxed)),
            ("spill_write_failures", store.spill_write_failures),
            ("joined", self.joined_total.load(Ordering::Relaxed)),
            ("inflight", inflight),
            ("queue_depth", queue_depth),
            ("sweeps", self.sweeps.load(Ordering::Relaxed)),
            ("connections", self.connections.load(Ordering::Relaxed)),
            ("workers", self.cfg.workers as u64),
            ("draining", u64::from(self.draining())),
            // Spill-directory occupancy (quarantine sidecar included) —
            // what the disk actually holds, as opposed to the resident_*
            // memory view above.
            ("spill_files", store.spill_files),
            ("spill_bytes", store.spill_bytes),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }

    /// The metrics registry as Prometheus text exposition. Scalar fields
    /// mirror [`Core::stats_fields`] into the registry at scrape time
    /// (point-in-time values as gauges, monotone tallies as counters);
    /// the latency histograms were recorded live.
    fn metrics_text(&self) -> String {
        const GAUGES: [&str; 9] = [
            "resident",
            "resident_bytes",
            "inflight",
            "queue_depth",
            "connections",
            "workers",
            "draining",
            "spill_files",
            "spill_bytes",
        ];
        for (name, value) in self.stats_fields() {
            if GAUGES.contains(&name.as_str()) {
                self.metrics.gauge(&name).set(value);
            } else {
                self.metrics.counter(&name).store(value);
            }
        }
        self.metrics.render()
    }
}

/// Outcome of one capped line read.
enum LineRead {
    /// The peer closed the connection cleanly.
    Eof,
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the cap; its bytes were discarded up to (and
    /// including) the newline, and the connection is still usable.
    TooLong,
}

/// Reads one `\n`-terminated line into `buf`, refusing to buffer more
/// than `cap` bytes: an oversized line is *consumed and discarded* to
/// the next newline instead of growing the buffer without bound — a
/// hostile client cannot balloon daemon memory, and the connection
/// survives to carry the structured error reply.
fn read_line_capped(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut overflow = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(if overflow {
                LineRead::TooLong
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line // final line without a trailing newline
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && buf.len() + pos <= cap {
                    buf.extend_from_slice(&available[..pos]);
                } else {
                    overflow = true;
                }
                reader.consume(pos + 1);
                return Ok(if overflow {
                    LineRead::TooLong
                } else {
                    LineRead::Line
                });
            }
            None => {
                let n = available.len();
                if !overflow && buf.len() + n <= cap {
                    buf.extend_from_slice(available);
                } else {
                    overflow = true;
                }
                reader.consume(n);
            }
        }
    }
}

/// One connection's reader loop: parse request lines, dispatch, enforce
/// per-connection limits.
///
/// `write_half` is the socket's write side, shared with the writer
/// thread behind a line-granularity mutex; the shutdown ack is written
/// through it *synchronously* so the acknowledgement reaches the kernel
/// send buffer before the drain begins — otherwise the process could
/// exit (killing the detached writer thread) with the ack still queued.
fn connection_loop(
    core: &Arc<Core>,
    stream: TcpStream,
    out: Sender<String>,
    write_half: Arc<Mutex<TcpStream>>,
    addr: SocketAddr,
) {
    core.connections.fetch_add(1, Ordering::Relaxed);
    let outstanding = Arc::new(AtomicUsize::new(0));
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        match read_line_capped(&mut reader, &mut buf, core.cfg.max_line_bytes) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                // Hostile input answers with a structured error; the
                // connection stays alive for well-formed requests.
                let _ = out.send(proto::error_line(
                    None,
                    None,
                    &format!(
                        "request line exceeds {} bytes and was discarded",
                        core.cfg.max_line_bytes
                    ),
                ));
                continue;
            }
            Ok(LineRead::Line) => {}
        }
        // Invalid UTF-8 survives lossy conversion and fails JSON parsing
        // below — an error reply, not a dropped connection.
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Request::parse_line(line) {
            Ok(Request::Sweep(req)) => {
                if core.draining() {
                    let _ = out.send(proto::error_line(
                        Some(req.id),
                        None,
                        "daemon is draining; sweep rejected",
                    ));
                    continue;
                }
                let keys = req.explode();
                if keys.len() > core.cfg.max_runs_per_request {
                    let _ = out.send(proto::error_line(
                        Some(req.id),
                        None,
                        &format!(
                            "sweep explodes to {} runs (limit {})",
                            keys.len(),
                            core.cfg.max_runs_per_request
                        ),
                    ));
                    continue;
                }
                // Backpressure: reject rather than queue unboundedly for
                // one connection.
                let was = outstanding.fetch_add(1, Ordering::AcqRel);
                if was >= core.cfg.max_pending_per_conn {
                    outstanding.fetch_sub(1, Ordering::AcqRel);
                    let _ = out.send(proto::error_line(
                        Some(req.id),
                        None,
                        &format!(
                            "connection has {was} sweeps outstanding (limit {})",
                            core.cfg.max_pending_per_conn
                        ),
                    ));
                    continue;
                }
                core.submit_sweep(&req, keys, &out, &outstanding);
            }
            Ok(Request::Stats) => {
                let _ = out.send(proto::stats_line(&core.stats_fields()));
            }
            Ok(Request::Metrics) => {
                let _ = out.send(proto::metrics_line(&core.metrics_text()));
            }
            Ok(Request::Shutdown) => {
                {
                    let mut w = lock_recover(&write_half);
                    let _ = w
                        .write_all(proto::ok_line("draining").as_bytes())
                        .and_then(|()| w.write_all(b"\n"))
                        .and_then(|()| w.flush());
                }
                core.draining.store(true, Ordering::Release);
                core.queue_cv.notify_all();
                // Unblock the accept loop so Server::run can join the
                // workers and return.
                let _ = TcpStream::connect(addr);
            }
            Err(e) => {
                let _ = out.send(proto::error_line(None, None, &e));
            }
        }
    }
    core.connections.fetch_sub(1, Ordering::Relaxed);
}

/// A bound daemon, ready to run.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    core: Arc<Core>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listen socket. The daemon does not serve until
    /// [`Server::run`].
    ///
    /// # Errors
    ///
    /// I/O errors binding the address, or creating the spill directory.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        if let Some(dir) = &cfg.spill {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = retcon_obs::Registry::new("retcon_serve");
        let request_latency = metrics.histogram("request_latency_micros");
        let mut store = ResultStore::new(cfg.capacity_bytes)
            .with_spill_write_hist(metrics.histogram("spill_write_latency_micros"));
        if let Some(dir) = &cfg.spill {
            store = store.with_spill(dir.clone());
        }
        if let Some(plan) = &cfg.faults {
            store = store.with_faults(Arc::clone(plan));
        }
        // Warm start: verify and index every result a previous daemon
        // spilled here, so a restart serves prior work as hits. Corrupt
        // entries quarantine now, before the first request.
        if cfg.spill.is_some() {
            store.warm_start();
        }
        let workers = cfg.workers.max(1);
        let core = Arc::new(Core {
            cfg: ServerConfig { workers, ..cfg },
            store,
            inflight: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            joined_total: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            key_quarantine: Mutex::new(HashSet::new()),
            metrics,
            request_latency,
        });
        Ok(Server {
            listener,
            local_addr,
            core,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port picked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the result store's counters (`recovered_on_boot` and
    /// `quarantined` reflect the warm-start scan done by [`Server::bind`]).
    pub fn store_stats(&self) -> retcon_lab::engine::StoreStats {
        self.core.store.stats()
    }

    /// Serves until a `shutdown` request drains the daemon: accepts
    /// connections, spawns per-connection reader/writer threads, runs
    /// the worker pool, and on drain joins the workers (completing every
    /// accepted run) before returning.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection I/O errors close that
    /// connection.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        for _ in 0..self.core.cfg.workers {
            let core = Arc::clone(&self.core);
            workers.push(std::thread::spawn(move || core.worker_loop()));
        }
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(_) => continue,
            };
            if self.core.draining() {
                break;
            }
            let write_half = match stream.try_clone() {
                Ok(s) => Arc::new(Mutex::new(s)),
                Err(_) => continue,
            };
            let (tx, rx) = std::sync::mpsc::channel::<String>();
            // Writer: drains the channel onto the write half (one lock
            // per line, shared with the synchronous shutdown-ack path);
            // exits when every sender is dropped (reader done, no
            // pending sweeps). A write failure only kills this
            // connection's writer — record sends to it become no-ops and
            // sweep accounting still completes.
            let writer_half = Arc::clone(&write_half);
            let faults = self.core.cfg.faults.clone();
            std::thread::spawn(move || {
                while let Ok(line) = rx.recv() {
                    if let Some(plan) = &faults {
                        match plan.on_line() {
                            LineFault::Drop => {
                                // Injected mid-stream disconnect.
                                let w = lock_recover(&writer_half);
                                let _ = w.shutdown(std::net::Shutdown::Both);
                                break;
                            }
                            LineFault::Stall(millis) => {
                                // Injected slow client: stall this
                                // connection only.
                                std::thread::sleep(Duration::from_millis(millis));
                            }
                            LineFault::None => {}
                        }
                    }
                    let mut w = lock_recover(&writer_half);
                    if w.write_all(line.as_bytes())
                        .and_then(|()| w.write_all(b"\n"))
                        .is_err()
                    {
                        break;
                    }
                }
                let mut w = lock_recover(&writer_half);
                let _ = w.flush();
            });
            let core = Arc::clone(&self.core);
            let addr = self.local_addr;
            std::thread::spawn(move || connection_loop(&core, stream, tx, write_half, addr));
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use retcon_workloads::{System, Workload};

    fn sweep(id: u64, systems: Vec<System>, cores: Vec<usize>) -> SweepRequest {
        SweepRequest {
            id,
            workloads: vec![Workload::Counter],
            systems,
            cores,
            seeds: vec![42],
        }
    }

    fn spawn_server(
        cfg: ServerConfig,
    ) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    }

    #[test]
    fn serves_dedups_and_drains() {
        let (addr, handle) = spawn_server(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(&addr.to_string()).expect("connect");

        // Cold sweep: everything misses.
        let cold = client
            .sweep(&sweep(1, vec![System::Eager, System::Retcon], vec![1, 2]))
            .expect("cold sweep");
        assert_eq!(cold.records.len(), 4);
        assert_eq!((cold.hits, cold.misses), (0, 4));

        // Identical sweep: everything hits, records byte-identical.
        let warm = client
            .sweep(&sweep(2, vec![System::Eager, System::Retcon], vec![1, 2]))
            .expect("warm sweep");
        assert_eq!((warm.hits, warm.misses, warm.joined), (4, 0, 0));
        assert_eq!(cold.records, warm.records);
        assert!(warm.cached.iter().all(|&c| c));

        // Stats reflect the accounting.
        let stats = client.stats().expect("stats");
        let get = |k: &str| {
            stats
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing stat {k}"))
        };
        assert_eq!(get("executed"), 4);
        assert_eq!(get("store_hits"), 4);
        assert_eq!(get("sweeps"), 2);

        // The metrics exposition is well-formed and its counters agree
        // with the sweep accounting above: 4 executions (each with a
        // latency observation) and 4 warm-sweep store hits.
        let text = client.metrics().expect("metrics");
        retcon_obs::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("retcon_serve_executed 4\n"), "{text}");
        assert!(text.contains("retcon_serve_store_hits 4\n"), "{text}");
        assert!(
            text.contains("retcon_serve_request_latency_micros_count 4\n"),
            "{text}"
        );

        client.shutdown().expect("shutdown");
        handle.join().expect("server thread").expect("server run");

        // Post-drain sweeps are refused (connection or request level).
        let refused = Client::connect(&addr.to_string())
            .map_err(|_| ())
            .and_then(|mut c| {
                c.sweep(&sweep(3, vec![System::Eager], vec![1]))
                    .map_err(|_| ())
            });
        assert!(refused.is_err());
    }

    #[test]
    fn oversized_and_excess_sweeps_are_rejected() {
        let (addr, handle) = spawn_server(ServerConfig {
            workers: 1,
            max_runs_per_request: 2,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let err = client
            .sweep(&sweep(1, vec![System::Eager], vec![1, 2, 4]))
            .expect_err("3 runs over a 2-run limit");
        assert!(err.contains("limit 2"), "{err}");
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread").expect("server run");
    }
}
