//! Kill-and-restart: SIGKILL the real `retcon-serve` binary mid-sweep,
//! restart it on the same spill directory, and verify the acceptance
//! contract — a repeated sweep returns records byte-identical to the
//! offline runner, previously-completed keys count as store hits, and
//! `executed` counts only keys never finished before the crash.
//!
//! This drives the released binary through its stderr log contract (the
//! warm-start summary then the listening line, both through the leveled
//! logger), not an in-process [`Server`], so the crash is a real process
//! death: no destructors, no flushes, no drain.

use retcon_lab::engine::{self, RunKey};
use retcon_serve::{Client, SweepRequest};
use retcon_workloads::{System, Workload};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const SEED: u64 = retcon_lab::SEED;

/// The fast matrix that completes before the kill.
fn completed_sweep(id: u64) -> SweepRequest {
    SweepRequest {
        id,
        workloads: vec![Workload::Counter],
        systems: vec![System::Eager, System::Retcon],
        cores: vec![1, 2],
        seeds: vec![SEED],
    }
}

/// The slow key the daemon dies holding: the transactionalized-CPython
/// model at a high core count runs long enough that a kill ~150 ms in
/// lands mid-execution.
fn inflight_sweep(id: u64) -> SweepRequest {
    SweepRequest {
        id,
        workloads: vec![Workload::Python { optimized: false }],
        systems: vec![System::Retcon],
        cores: vec![32],
        seeds: vec![SEED],
    }
}

fn offline(req: &SweepRequest) -> Vec<String> {
    req.explode()
        .iter()
        .map(|key| {
            let report = engine::simulate(key).expect("offline simulate");
            engine::record_for(key, report).to_json().to_string()
        })
        .collect()
}

struct Daemon {
    child: Child,
    addr: String,
    recovered: u64,
    quarantined: u64,
}

/// Launches the real binary and parses its boot lines.
fn launch(spill: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_retcon-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--spill",
            spill.to_str().expect("utf-8 spill path"),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn retcon-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let warm = lines
        .next()
        .expect("warm-start line")
        .expect("read warm-start line");
    let (recovered, quarantined) = parse_warm_start(&warm);
    let listen = lines
        .next()
        .expect("listening line")
        .expect("read listening line");
    // Logger lines carry a `<timestamp> <LEVEL> ` prefix; split on the
    // stable marker instead of stripping it.
    let addr = listen
        .split_once("retcon-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected boot line: {listen}"))
        .1
        .to_string();
    Daemon {
        child,
        addr,
        recovered,
        quarantined,
    }
}

/// Parses `retcon-serve warm start: recovered N, quarantined M` (after
/// the logger's timestamp/level prefix).
fn parse_warm_start(line: &str) -> (u64, u64) {
    let rest = line
        .split_once("retcon-serve warm start: recovered ")
        .unwrap_or_else(|| panic!("unexpected boot line: {line}"))
        .1;
    let (recovered, rest) = rest.split_once(", quarantined ").expect("warm-start shape");
    (
        recovered.parse().expect("recovered count"),
        rest.trim().parse().expect("quarantined count"),
    )
}

#[test]
fn sigkill_mid_sweep_then_restart_serves_completed_keys_as_hits() {
    let spill = std::env::temp_dir().join(format!("retcon-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);

    // Boot 1: cold dir.
    let mut daemon = launch(&spill);
    assert_eq!((daemon.recovered, daemon.quarantined), (0, 0));

    // Sweep A completes: its 4 records are on disk by the `done` line
    // (spill is write-through, inside the worker, before waiters wake).
    let done = completed_sweep(1);
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let cold = client.sweep(&done).expect("sweep before crash");
    assert_eq!(cold.misses, 4);

    // Sweep B goes out raw — we never read the reply — and ~150 ms later
    // the daemon dies mid-execution of its slow key.
    let mut raw = TcpStream::connect(&daemon.addr).expect("raw connect");
    let line = retcon_serve::Request::Sweep(inflight_sweep(2)).to_line();
    raw.write_all(line.as_bytes()).expect("send sweep B");
    raw.write_all(b"\n").expect("send newline");
    raw.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(150));
    daemon.child.kill().expect("SIGKILL daemon");
    let _ = daemon.child.wait();

    // Boot 2 on the same dir: every key that *finished* before the kill
    // is recovered (sweep A's 4 for sure; B's only if it won the race),
    // and nothing the crash tore survives verification unnoticed.
    let mut daemon = launch(&spill);
    let recovered = daemon.recovered;
    assert!(
        (4..=5).contains(&recovered),
        "expected the 4 completed keys (plus at most the in-flight one), got {recovered}"
    );
    assert_eq!(
        daemon.quarantined, 0,
        "a torn entry escaped the tmp+rename protocol"
    );

    // The repeated sweeps are byte-identical to offline, completed keys
    // are hits, and only never-finished keys execute.
    let mut client = Client::connect(&daemon.addr).expect("reconnect");
    let replay = client.sweep(&completed_sweep(3)).expect("replay sweep A");
    assert_eq!(
        replay
            .records
            .iter()
            .map(|r| r.to_json().to_string())
            .collect::<Vec<_>>(),
        offline(&completed_sweep(3))
    );
    assert_eq!(
        (replay.hits, replay.misses),
        (4, 0),
        "completed keys must come back as store hits"
    );

    let finish = client.sweep(&inflight_sweep(4)).expect("finish sweep B");
    assert_eq!(
        finish
            .records
            .iter()
            .map(|r| r.to_json().to_string())
            .collect::<Vec<_>>(),
        offline(&inflight_sweep(4))
    );
    assert_eq!(finish.hits, recovered - 4);
    assert_eq!(finish.misses, 5 - recovered);

    // `executed` counts only the keys that never finished pre-crash.
    let stats = client.stats().expect("stats");
    let get = |k: &str| {
        stats
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing stat {k}"))
    };
    assert_eq!(get("executed"), 5 - recovered);
    assert_eq!(get("recovered_on_boot"), recovered);
    assert_eq!(get("quarantined"), 0);

    client.shutdown().expect("shutdown");
    let status = daemon.child.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited with {status}");
    let _ = std::fs::remove_dir_all(&spill);

    // The distinct-key math above: 4 fast keys + 1 slow key.
    let distinct: std::collections::HashSet<u128> = completed_sweep(0)
        .explode()
        .iter()
        .chain(inflight_sweep(0).explode().iter())
        .map(RunKey::content_hash)
        .collect();
    assert_eq!(distinct.len(), 5);
}
