//! Workload models for the RETCON evaluation (Table 2 of the paper).
//!
//! The paper evaluates on the STAMP suite plus a transactionalized CPython.
//! We cannot run the original C programs on our IR, so each benchmark is
//! re-implemented as a *transaction-level kernel* that reproduces the
//! sharing structure the paper documents — because that structure, not the
//! instruction mix, is what drives every result:
//!
//! | workload | documented conflict source reproduced here |
//! |---|---|
//! | `counter` | the Figure 2 micro-schedule: two increments per transaction on one shared counter |
//! | `genome`(-sz) | hashtable inserts; `-sz` adds the shared **size-field increment** on every insert |
//! | `intruder` | two hot shared queues whose head/tail **feed addresses**, plus tree-rebalance conflicts |
//! | `intruder_opt`(-sz) | thread-private queues + hashtable map; `-sz` re-adds the size field |
//! | `kmeans` | cluster-centre updates using untrackable (multiply) computation |
//! | `labyrinth` | long transactions with variable path length → load imbalance (barrier time) |
//! | `ssca2` | tiny transactions with scattered writes → coherence-miss bound |
//! | `vacation`(_opt, -sz) | read-mostly reservations; base adds rebalance conflicts; `-sz` the size field |
//! | `yada` | pointer-chasing cavities whose **loaded values feed addresses** — unrepairable |
//! | `python`(_opt) | **reference-count** updates on hot shared objects; base adds an address-feeding shared free-list pointer |
//!
//! Each builder returns a [`WorkloadSpec`]: one program per core, per-core
//! input tapes (pre-randomized keys — deterministic under any
//! interleaving), and initial memory contents. [`run`] executes a spec
//! under any [`System`] and returns the simulator's report;
//! [`sequential_baseline`] runs the whole workload on one core for the
//! speedup denominators of Figures 1, 3 and 9.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
pub mod explore;
mod genome;
pub mod hashtable;
mod intruder;
mod kmeans;
mod labyrinth;
mod python;
mod rng;
mod scaling_xl;
mod spec;
mod ssca2;
mod vacation;
mod yada;

pub use counter::total_transactions as counter_total_transactions;
pub use hashtable::HashTable;
pub use rng::SplitMix64;
pub use scaling_xl::{
    expected_group_total as scaling_xl_group_total, GROUP_CORES as SCALING_XL_GROUP_CORES,
};
pub use spec::{Alloc, WorkloadSpec};

use retcon::RetconConfig;
use retcon_isa::Instr;
use retcon_obs::RingTracer;
use retcon_sim::{
    run_sharded, run_sharded_traced, AnyProtocol, ConflictPolicy, DatmLite, EagerTm, LazyTm,
    LazyVbTm, Machine, RetconTm, ShardedOutcome, SimConfig, SimError, SimReport,
    TracedShardedOutcome,
};

/// The widest supported machine: 16 `CoreSet` words of 64 cores each.
pub const MAX_SIM_CORES: usize = 1024;

/// The hardware configurations compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// The §2 baseline: eager HTM, timestamp contention management.
    Eager,
    /// Figure 2(c): eager HTM that aborts the requester on conflict.
    EagerAbort,
    /// Figure 2(e): lazy conflict detection, committer wins.
    Lazy,
    /// §5.1 `lazy-vb`: value-based commit validation, no repair.
    LazyVb,
    /// Full RETCON with the Table 1 structure sizes.
    Retcon,
    /// §5.3 idealized RETCON: unlimited state, parallel reacquire, free
    /// commit stores.
    RetconIdeal,
    /// Figure 2(b): dependence-aware TM (forwarding + cycle aborts).
    Datm,
}

impl System {
    /// All systems of the Figure 9 / Figure 10 comparison: the paper's
    /// three (eager, lazy-vb, RETCON) plus DATM, which the ROADMAP adds to
    /// the scalability/breakdown comparisons.
    pub const FIG9: [System; 4] = [System::Eager, System::LazyVb, System::Retcon, System::Datm];

    /// Every hardware configuration, in a stable display order.
    pub const ALL: [System; 7] = [
        System::Eager,
        System::EagerAbort,
        System::Lazy,
        System::LazyVb,
        System::Retcon,
        System::RetconIdeal,
        System::Datm,
    ];

    /// Looks a system up by its [`System::label`], case-insensitively.
    pub fn parse(name: &str) -> Option<System> {
        System::ALL
            .into_iter()
            .find(|s| s.label().eq_ignore_ascii_case(name))
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            System::Eager => "eager",
            System::EagerAbort => "eager-abort",
            System::Lazy => "lazy",
            System::LazyVb => "lazy-vb",
            System::Retcon => "RetCon",
            System::RetconIdeal => "RetCon-ideal",
            System::Datm => "datm",
        }
    }

    /// Instantiates the protocol for `num_cores` cores.
    ///
    /// Returns the monomorphized [`AnyProtocol`] — the simulator dispatches
    /// it by `match`, with no boxing or virtual calls on the hot path.
    pub fn protocol(self, num_cores: usize) -> AnyProtocol {
        self.protocol_sized::<1>(num_cores)
    }

    /// [`System::protocol`] at an explicit `CoreSet` size class: `N` words
    /// of 64 cores each. `N = 1` is the paper machine and the default
    /// everywhere; wider classes carry the >64-core scaling runs.
    pub fn protocol_sized<const N: usize>(self, num_cores: usize) -> AnyProtocol<N> {
        match self {
            System::Eager => EagerTm::new(num_cores, ConflictPolicy::OldestWins).into(),
            System::EagerAbort => EagerTm::new(num_cores, ConflictPolicy::RequesterLoses).into(),
            System::Lazy => LazyTm::new(num_cores).into(),
            System::LazyVb => LazyVbTm::new(num_cores).into(),
            System::Retcon => RetconTm::new(num_cores, RetconConfig::default()).into(),
            System::RetconIdeal => RetconTm::new(num_cores, RetconConfig::idealized()).into(),
            System::Datm => DatmLite::new(num_cores).into(),
        }
    }
}

/// The workloads of Table 2 (and their software-restructured variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Figure 2 micro-benchmark: two increments of one shared counter per
    /// transaction.
    Counter,
    /// STAMP genome model: segment inserts into a shared hashtable.
    /// `resizable` adds the size-field increment of the `-sz` variants.
    Genome {
        /// Track the table's size field (the `-sz` variant)?
        resizable: bool,
    },
    /// STAMP intruder model (shared queues + map + rebalances).
    Intruder {
        /// Apply the thread-private-queue/hashtable restructuring (`_opt`)?
        optimized: bool,
        /// Track the map's size field (`-sz`)?
        resizable: bool,
    },
    /// STAMP kmeans model (cluster-centre accumulation).
    Kmeans,
    /// STAMP labyrinth model (long, imbalanced path-routing transactions).
    Labyrinth,
    /// STAMP ssca2 model (tiny transactions, scattered graph updates).
    Ssca2,
    /// STAMP vacation model (read-mostly reservations).
    Vacation {
        /// Replace the rebalancing tree with a hashtable (`_opt`)?
        optimized: bool,
        /// Track the table's size field (`-sz`)?
        resizable: bool,
    },
    /// STAMP yada model (pointer-chasing cavity refinement).
    Yada,
    /// Transactionalized CPython model (refcounts on hot shared objects).
    Python {
        /// Make the interpreter globals thread-private (`_opt`)?
        optimized: bool,
    },
    /// Past-the-paper scaling stressor: groups of contiguous cores, each
    /// hammering a group-private counter block (barrier-free, so eligible
    /// for sharded execution). Deliberately *not* part of
    /// [`Workload::all`]: the paper-matrix record sets are pinned
    /// byte-for-byte and must not grow a fifteenth workload.
    ScalingXl,
}

impl Workload {
    /// Display name matching Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Counter => "counter",
            Workload::Genome { resizable: false } => "genome",
            Workload::Genome { resizable: true } => "genome-sz",
            Workload::Intruder {
                optimized: false, ..
            } => "intruder",
            Workload::Intruder {
                optimized: true,
                resizable: false,
            } => "intruder_opt",
            Workload::Intruder {
                optimized: true,
                resizable: true,
            } => "intruder_opt-sz",
            Workload::Kmeans => "kmeans",
            Workload::Labyrinth => "labyrinth",
            Workload::Ssca2 => "ssca2",
            Workload::Vacation {
                optimized: false, ..
            } => "vacation",
            Workload::Vacation {
                optimized: true,
                resizable: false,
            } => "vacation_opt",
            Workload::Vacation {
                optimized: true,
                resizable: true,
            } => "vacation_opt-sz",
            Workload::Yada => "yada",
            Workload::Python { optimized: false } => "python",
            Workload::Python { optimized: true } => "python_opt",
            Workload::ScalingXl => "scaling_xl",
        }
    }

    /// The eight pre-restructuring workloads of Figure 1.
    pub fn fig1() -> Vec<Workload> {
        vec![
            Workload::Genome { resizable: false },
            Workload::Intruder {
                optimized: false,
                resizable: false,
            },
            Workload::Kmeans,
            Workload::Labyrinth,
            Workload::Ssca2,
            Workload::Vacation {
                optimized: false,
                resizable: false,
            },
            Workload::Yada,
            Workload::Python { optimized: false },
        ]
    }

    /// The fourteen workload variants of Figures 3, 4, 9 and 10.
    pub fn fig9() -> Vec<Workload> {
        vec![
            Workload::Genome { resizable: false },
            Workload::Genome { resizable: true },
            Workload::Intruder {
                optimized: false,
                resizable: false,
            },
            Workload::Intruder {
                optimized: true,
                resizable: false,
            },
            Workload::Intruder {
                optimized: true,
                resizable: true,
            },
            Workload::Kmeans,
            Workload::Labyrinth,
            Workload::Ssca2,
            Workload::Vacation {
                optimized: false,
                resizable: false,
            },
            Workload::Vacation {
                optimized: true,
                resizable: false,
            },
            Workload::Vacation {
                optimized: true,
                resizable: true,
            },
            Workload::Yada,
            Workload::Python { optimized: false },
            Workload::Python { optimized: true },
        ]
    }

    /// Every workload variant: `counter` plus the fourteen of
    /// [`Workload::fig9`].
    pub fn all() -> Vec<Workload> {
        let mut all = vec![Workload::Counter];
        all.extend(Workload::fig9());
        all
    }

    /// Looks a workload up by its [`Workload::label`]. Parses everything
    /// in [`Workload::all`] plus the out-of-matrix [`Workload::ScalingXl`].
    pub fn parse(name: &str) -> Option<Workload> {
        Workload::all()
            .into_iter()
            .chain([Workload::ScalingXl])
            .find(|w| w.label() == name)
    }

    /// Builds the workload for `num_cores` cores, dividing the (fixed)
    /// total work among them. The same `seed` yields the same inputs at any
    /// core count, so speedups compare identical work.
    pub fn build(self, num_cores: usize, seed: u64) -> WorkloadSpec {
        match self {
            Workload::Counter => counter::build(num_cores, seed),
            Workload::Genome { resizable } => genome::build(num_cores, seed, resizable),
            Workload::Intruder {
                optimized,
                resizable,
            } => intruder::build(num_cores, seed, optimized, resizable),
            Workload::Kmeans => kmeans::build(num_cores, seed),
            Workload::Labyrinth => labyrinth::build(num_cores, seed),
            Workload::Ssca2 => ssca2::build(num_cores, seed),
            Workload::Vacation {
                optimized,
                resizable,
            } => vacation::build(num_cores, seed, optimized, resizable),
            Workload::Yada => yada::build(num_cores, seed),
            Workload::Python { optimized } => python::build(num_cores, seed, optimized),
            Workload::ScalingXl => scaling_xl::build(num_cores, seed),
        }
    }
}

/// Runs `workload` on `num_cores` cores under `system`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator (cycle-limit or program
/// validation failures — both indicate workload bugs).
pub fn run(
    workload: Workload,
    system: System,
    num_cores: usize,
    seed: u64,
) -> Result<SimReport, SimError> {
    let spec = workload.build(num_cores, seed);
    run_spec(&spec, system, num_cores)
}

/// Runs an already-built [`WorkloadSpec`] under `system`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_spec(
    spec: &WorkloadSpec,
    system: System,
    num_cores: usize,
) -> Result<SimReport, SimError> {
    run_spec_with(spec, system.protocol(num_cores), num_cores)
}

/// Runs an already-built [`WorkloadSpec`] under `system` at whatever
/// `CoreSet` size class `num_cores` needs, optionally sharded.
///
/// * `num_cores <= 64` uses the single-word paper machine — the exact
///   code path (and bytes) of [`run_spec`].
/// * Wider counts dispatch to the 2/4/8/16-word size classes, up to
///   [`MAX_SIM_CORES`].
/// * `shards > 1` requests sharded execution: contiguous core ranges run
///   on host threads and merge iff their block footprints prove disjoint
///   (see [`retcon_sim::shard`]). A workload that is ineligible (has a
///   barrier, more shards than cores) or whose shards overlap falls back
///   to the serial run — the returned report is byte-identical either
///   way.
///
/// # Errors
///
/// [`SimError::UnsupportedCores`] past [`MAX_SIM_CORES`]; otherwise
/// propagates [`SimError`] from the simulator.
pub fn run_spec_sized(
    spec: &WorkloadSpec,
    system: System,
    num_cores: usize,
    shards: usize,
) -> Result<SimReport, SimError> {
    match size_class(num_cores)? {
        1 => run_class::<1>(spec, system, num_cores, shards),
        2 => run_class::<2>(spec, system, num_cores, shards),
        4 => run_class::<4>(spec, system, num_cores, shards),
        8 => run_class::<8>(spec, system, num_cores, shards),
        _ => run_class::<16>(spec, system, num_cores, shards),
    }
}

/// [`run_spec_sized`] with transaction event tracing attached: returns
/// the report — byte-identical to the untraced run, pinned by the
/// trace-determinism suite — plus the recorded event stream.
///
/// `capacity` bounds the event ring (see
/// [`retcon_obs::ring::DEFAULT_CAPACITY`]); a sharded run splits it
/// across shards and merges the streams back to global core numbering,
/// appending one `ShardMerge` event per shard. A workload that is
/// ineligible for sharding, or whose shards overlap, runs serially
/// traced — exactly mirroring [`run_spec_sized`]'s fallback (an overlap
/// fallback is recorded as a `ShardMerge` event with `arg` = 1 at the
/// head of the stream).
///
/// # Errors
///
/// [`SimError::UnsupportedCores`] past [`MAX_SIM_CORES`]; otherwise
/// propagates [`SimError`] from the simulator.
pub fn run_spec_traced_sized(
    spec: &WorkloadSpec,
    system: System,
    num_cores: usize,
    shards: usize,
    capacity: usize,
) -> Result<(SimReport, RingTracer), SimError> {
    match size_class(num_cores)? {
        1 => run_class_traced::<1>(spec, system, num_cores, shards, capacity),
        2 => run_class_traced::<2>(spec, system, num_cores, shards, capacity),
        4 => run_class_traced::<4>(spec, system, num_cores, shards, capacity),
        8 => run_class_traced::<8>(spec, system, num_cores, shards, capacity),
        _ => run_class_traced::<16>(spec, system, num_cores, shards, capacity),
    }
}

fn run_class_traced<const N: usize>(
    spec: &WorkloadSpec,
    system: System,
    num_cores: usize,
    shards: usize,
    capacity: usize,
) -> Result<(SimReport, RingTracer), SimError> {
    let serial = |spec: &WorkloadSpec, tracer: RingTracer| {
        let mut machine = machine_for_sized::<N>(
            spec,
            system.protocol_sized::<N>(num_cores),
            SimConfig::with_cores(num_cores),
        );
        machine.set_tracer(tracer);
        let report = machine.run()?;
        let tracer = machine.take_tracer().expect("tracer attached above");
        Ok((report, tracer))
    };
    if shards <= 1 || shards > num_cores || spec_has_barrier(spec) {
        return serial(spec, RingTracer::with_capacity(capacity));
    }
    let outcome = run_sharded_traced::<N, _>(num_cores, shards, capacity, |range| {
        let cores = range.len();
        let mut machine: Machine<N> = Machine::new(
            SimConfig::with_cores(cores),
            system.protocol_sized::<N>(cores),
            spec.programs[range.clone()].to_vec(),
        );
        for (i, tape) in spec.tapes[range].iter().enumerate() {
            machine.set_tape(i, tape.clone());
        }
        for &(addr, value) in &spec.init {
            machine.init_word(addr, value);
        }
        machine
    })?;
    match outcome {
        TracedShardedOutcome::Merged(report, tracer) => Ok((report, tracer)),
        // Overlapping footprints: rerun serially traced, recording the
        // merge decision (overlap → fallback) at the head of the stream.
        TracedShardedOutcome::Overlap { .. } => {
            use retcon_obs::Tracer as _;
            let mut tracer = RingTracer::with_capacity(capacity);
            tracer.record(0, retcon_obs::EventKind::ShardMerge, 0, 1);
            serial(spec, tracer)
        }
    }
}

/// [`run_spec_sized`] with an explicit [`SimConfig`] (fuzzed schedules,
/// custom cycle caps), always serial: a fuzzed schedule draws from one
/// global sequence whose consumption order spans all cores, which
/// sharding cannot reproduce.
///
/// # Errors
///
/// [`SimError::UnsupportedCores`] past [`MAX_SIM_CORES`]; otherwise
/// propagates [`SimError`] from the simulator.
pub fn run_spec_configured_sized(
    spec: &WorkloadSpec,
    system: System,
    cfg: SimConfig,
) -> Result<SimReport, SimError> {
    let n = cfg.num_cores;
    match size_class(n)? {
        1 => machine_for_sized::<1>(spec, system.protocol_sized::<1>(n), cfg).run(),
        2 => machine_for_sized::<2>(spec, system.protocol_sized::<2>(n), cfg).run(),
        4 => machine_for_sized::<4>(spec, system.protocol_sized::<4>(n), cfg).run(),
        8 => machine_for_sized::<8>(spec, system.protocol_sized::<8>(n), cfg).run(),
        _ => machine_for_sized::<16>(spec, system.protocol_sized::<16>(n), cfg).run(),
    }
}

/// The smallest `CoreSet` word count covering `num_cores`.
///
/// # Errors
///
/// [`SimError::UnsupportedCores`] past [`MAX_SIM_CORES`].
fn size_class(num_cores: usize) -> Result<usize, SimError> {
    match num_cores {
        0..=64 => Ok(1),
        65..=128 => Ok(2),
        129..=256 => Ok(4),
        257..=512 => Ok(8),
        513..=1024 => Ok(16),
        _ => Err(SimError::UnsupportedCores {
            requested: num_cores,
            max: MAX_SIM_CORES,
        }),
    }
}

/// `true` if any program contains a `Barrier` — barrier release is a
/// global synchronization across all cores, which sharded execution
/// cannot reproduce.
fn spec_has_barrier(spec: &WorkloadSpec) -> bool {
    spec.programs.iter().any(|p| {
        p.blocks
            .iter()
            .any(|b| b.instrs.iter().any(|i| matches!(i, Instr::Barrier)))
    })
}

fn run_class<const N: usize>(
    spec: &WorkloadSpec,
    system: System,
    num_cores: usize,
    shards: usize,
) -> Result<SimReport, SimError> {
    let serial = |spec: &WorkloadSpec| {
        machine_for_sized::<N>(
            spec,
            system.protocol_sized::<N>(num_cores),
            SimConfig::with_cores(num_cores),
        )
        .run()
    };
    if shards <= 1 || shards > num_cores || spec_has_barrier(spec) {
        return serial(spec);
    }
    let outcome = run_sharded::<N, _>(num_cores, shards, |range| {
        let cores = range.len();
        let mut machine: Machine<N> = Machine::new(
            SimConfig::with_cores(cores),
            system.protocol_sized::<N>(cores),
            spec.programs[range.clone()].to_vec(),
        );
        for (i, tape) in spec.tapes[range].iter().enumerate() {
            machine.set_tape(i, tape.clone());
        }
        for &(addr, value) in &spec.init {
            machine.init_word(addr, value);
        }
        machine
    })?;
    match outcome {
        ShardedOutcome::Merged(report) => Ok(report),
        // Overlapping footprints: the independence premise failed, so the
        // shard results are unusable. Rerun serially; the answer is still
        // exact, only the parallelism is lost.
        ShardedOutcome::Overlap { .. } => serial(spec),
    }
}

/// Runs an already-built [`WorkloadSpec`] under an explicit protocol
/// instance — the hook sweep harnesses use to vary [`RetconConfig`] knobs
/// beyond the named [`System`] configurations. Accepts any built-in
/// protocol by value, an [`AnyProtocol`], or a boxed custom
/// [`Protocol`](retcon_sim::Protocol).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_spec_with(
    spec: &WorkloadSpec,
    protocol: impl Into<AnyProtocol>,
    num_cores: usize,
) -> Result<SimReport, SimError> {
    run_spec_configured(spec, protocol, SimConfig::with_cores(num_cores))
}

/// Runs an already-built [`WorkloadSpec`] under an explicit protocol *and*
/// an explicit [`SimConfig`] — the entry point for non-default machine
/// configurations such as a fuzzed schedule
/// ([`SimConfig::schedule_seed`]).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_spec_configured(
    spec: &WorkloadSpec,
    protocol: impl Into<AnyProtocol>,
    cfg: SimConfig,
) -> Result<SimReport, SimError> {
    let mut machine = machine_for(spec, protocol, cfg);
    machine.run()
}

/// Builds the machine a spec runs on (programs, tapes, initial memory)
/// without running it — exploration drives the returned machine through
/// [`Machine::run_with`] with its own schedules.
pub fn machine_for(
    spec: &WorkloadSpec,
    protocol: impl Into<AnyProtocol>,
    cfg: SimConfig,
) -> Machine {
    machine_for_sized::<1>(spec, protocol, cfg)
}

/// [`machine_for`] at an explicit `CoreSet` size class.
pub fn machine_for_sized<const N: usize>(
    spec: &WorkloadSpec,
    protocol: impl Into<AnyProtocol<N>>,
    cfg: SimConfig,
) -> Machine<N> {
    let mut machine = Machine::new(cfg, protocol, spec.programs.clone());
    for (i, tape) in spec.tapes.iter().enumerate() {
        machine.set_tape(i, tape.clone());
    }
    for &(addr, value) in &spec.init {
        machine.init_word(addr, value);
    }
    machine
}

/// Sequential-baseline cycle count: the whole workload on one core (the
/// denominator of every "speedup over seq" figure).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn sequential_baseline(workload: Workload, seed: u64) -> Result<u64, SimError> {
    Ok(run(workload, System::Eager, 1, seed)?.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Workload::fig9().iter().map(|w| w.label()).collect();
        labels.push(Workload::Counter.label());
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn fig1_is_subset_of_table2() {
        assert_eq!(Workload::fig1().len(), 8);
        assert_eq!(Workload::fig9().len(), 14);
    }

    #[test]
    fn system_protocols_instantiate() {
        for s in [
            System::Eager,
            System::EagerAbort,
            System::Lazy,
            System::LazyVb,
            System::Retcon,
            System::RetconIdeal,
            System::Datm,
        ] {
            let p = s.protocol(2);
            assert!(!p.name().is_empty());
            assert!(!s.label().is_empty());
        }
    }
}
