//! Structure-size and predictor-threshold sweeps.
//!
//! DESIGN.md calls out three sizing decisions taken from Table 1: the
//! 16-entry initial value buffer, the 16-entry constraint buffer and the
//! 32-entry symbolic store buffer, plus the predictor's train-down backoff.
//! This harness sweeps each and reports speedups on the auxiliary-data
//! workloads, showing where capacity starts to matter.

use retcon::RetconConfig;
use retcon_bench::{print_header, seq_cycles, CORES, SEED};
use retcon_htm::RetconTm;
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::Workload;

fn run_with(cfg: RetconConfig, w: Workload) -> f64 {
    let spec = w.build(CORES, SEED);
    let sim = SimConfig::with_cores(CORES);
    let mut machine = Machine::new(
        sim,
        Box::new(RetconTm::new(CORES, cfg)),
        spec.programs.clone(),
    );
    for (i, tape) in spec.tapes.iter().enumerate() {
        machine.set_tape(i, tape.clone());
    }
    for &(a, v) in &spec.init {
        machine.init_word(a, v);
    }
    let report = machine.run().expect("workload runs");
    seq_cycles(w) as f64 / report.cycles as f64
}

fn main() {
    let workloads = [
        Workload::Genome { resizable: true },
        Workload::Python { optimized: true },
        Workload::Vacation {
            optimized: true,
            resizable: true,
        },
    ];

    print_header("Ablation: initial-value-buffer capacity sweep", "");
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "workload", "ivb=1", "2", "4", "16", "64"
    );
    for w in workloads {
        let mut row = format!("{:<18}", w.label());
        for cap in [1usize, 2, 4, 16, 64] {
            let cfg = RetconConfig {
                ivb_capacity: cap,
                ..RetconConfig::default()
            };
            row += &format!(" {:>6.1}", run_with(cfg, w));
        }
        println!("{row}");
    }

    print_header("Ablation: symbolic-store-buffer capacity sweep", "");
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>6}",
        "workload", "ssb=2", "8", "32", "128"
    );
    for w in workloads {
        let mut row = format!("{:<18}", w.label());
        for cap in [2usize, 8, 32, 128] {
            let cfg = RetconConfig {
                ssb_capacity: cap,
                ..RetconConfig::default()
            };
            row += &format!(" {:>6.1}", run_with(cfg, w));
        }
        println!("{row}");
    }

    print_header("Ablation: constraint-buffer capacity sweep", "");
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>6}",
        "workload", "cb=1", "4", "16", "64"
    );
    for w in workloads {
        let mut row = format!("{:<18}", w.label());
        for cap in [1usize, 4, 16, 64] {
            let cfg = RetconConfig {
                constraint_capacity: cap,
                ..RetconConfig::default()
            };
            row += &format!(" {:>6.1}", run_with(cfg, w));
        }
        println!("{row}");
    }

    print_header("Ablation: predictor violation-backoff sweep (yada)", "");
    println!("{:>12} {:>9}", "backoff", "speedup");
    for backoff in [0u32, 10, 100, 1000] {
        let cfg = RetconConfig {
            violation_backoff: backoff,
            ..RetconConfig::default()
        };
        println!("{:>12} {:>9.1}", backoff, run_with(cfg, Workload::Yada));
    }
    println!("\n(paper setting: 16/16/32 entries, backoff 100)");
}
