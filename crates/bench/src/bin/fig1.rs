//! Figure 1: scalability of the aggressive eager HTM on 32 processors.
//!
//! Paper reference (approximate bar heights read from the figure): genome
//! ~24×, intruder ~5×, kmeans ~13×, labyrinth ~7×, ssca2 ~10×, vacation
//! ~15×, yada ~3×, python ~1×. Our shape target: a bimodal pattern — some
//! workloads near-linear, at least half below 10×, python/intruder/yada at
//! the bottom.

use retcon_bench::{print_header, run_at_scale, seq_cycles, CORES};
use retcon_workloads::{System, Workload};

fn main() {
    print_header(
        "Figure 1: speedup over sequential, eager HTM baseline, 32 cores",
        "(zero-cycle rollback, oldest-wins contention management)",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>9}",
        "workload", "seq cyc", "par cyc", "speedup", "aborts/commit"
    );
    for w in Workload::fig1() {
        let seq = seq_cycles(w);
        let r = run_at_scale(w, System::Eager);
        println!(
            "{:<14} {:>10} {:>10} {:>9.1} {:>9.3}",
            w.label(),
            seq,
            r.cycles,
            r.speedup_over(seq),
            r.abort_ratio(),
        );
    }
    println!("\n({CORES} cores; deterministic seed; see EXPERIMENTS.md for paper-vs-measured)");
}
