//! Property tests: [`CoreSet`] behaves exactly like a naive `HashSet`
//! model under every operation, across all five size classes.

use std::collections::HashSet;

use proptest::prelude::*;
use retcon_isa::CoreSet;

/// One randomly generated set operation over cores `0..capacity`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(usize),
    Remove(usize),
    Contains(usize),
    Clear,
}

fn op_strategy(capacity: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..capacity).prop_map(Op::Insert),
        (0..capacity).prop_map(Op::Remove),
        (0..capacity).prop_map(Op::Contains),
        Just(Op::Clear),
    ]
}

/// Drives the same op sequence through a `CoreSet<N>` and a `HashSet`,
/// checking every per-op return value and the full observable state
/// (membership, count, emptiness, minimum, ascending iteration) after
/// each step.
fn check_model<const N: usize>(ops: &[Op]) {
    let mut set: CoreSet<N> = CoreSet::EMPTY;
    let mut model: HashSet<usize> = HashSet::new();
    for &op in ops {
        match op {
            Op::Insert(c) => assert_eq!(set.insert(c), model.insert(c)),
            Op::Remove(c) => assert_eq!(set.remove(c), model.remove(&c)),
            Op::Contains(c) => assert_eq!(set.contains(c), model.contains(&c)),
            Op::Clear => {
                set.clear();
                model.clear();
            }
        }
        assert_eq!(set.count() as usize, model.len());
        assert_eq!(set.is_empty(), model.is_empty());
        assert_eq!(set.first(), model.iter().min().copied());
        let mut sorted: Vec<usize> = model.iter().copied().collect();
        sorted.sort_unstable();
        assert_eq!(set.iter().collect::<Vec<_>>(), sorted);
    }
}

/// Union / intersection / difference agree with the model's set algebra.
fn check_algebra<const N: usize>(a: &[usize], b: &[usize]) {
    let mut sa: CoreSet<N> = CoreSet::EMPTY;
    let mut sb: CoreSet<N> = CoreSet::EMPTY;
    let ma: HashSet<usize> = a.iter().copied().collect();
    let mb: HashSet<usize> = b.iter().copied().collect();
    for &c in a {
        sa.insert(c);
    }
    for &c in b {
        sb.insert(c);
    }
    let sorted = |m: &HashSet<usize>| {
        let mut v: Vec<usize> = m.iter().copied().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        sa.union(sb).iter().collect::<Vec<_>>(),
        sorted(&ma.union(&mb).copied().collect())
    );
    assert_eq!(
        sa.intersect(sb).iter().collect::<Vec<_>>(),
        sorted(&ma.intersection(&mb).copied().collect())
    );
    assert_eq!(
        sa.and_not(sb).iter().collect::<Vec<_>>(),
        sorted(&ma.difference(&mb).copied().collect())
    );
    assert_eq!(sa.intersects(sb), !ma.is_disjoint(&mb));
}

macro_rules! size_class_props {
    ($mod_name:ident, $n:literal) => {
        mod $mod_name {
            use super::*;

            proptest! {
                #[test]
                fn matches_hashset_model(
                    ops in proptest::collection::vec(op_strategy(64 * $n), 1..200),
                ) {
                    check_model::<$n>(&ops);
                }

                #[test]
                fn algebra_matches_hashset_model(
                    a in proptest::collection::vec(0..64usize * $n, 0..40),
                    b in proptest::collection::vec(0..64usize * $n, 0..40),
                ) {
                    check_algebra::<$n>(&a, &b);
                }
            }
        }
    };
}

size_class_props!(n1_64_cores, 1);
size_class_props!(n2_128_cores, 2);
size_class_props!(n4_256_cores, 4);
size_class_props!(n8_512_cores, 8);
size_class_props!(n16_1024_cores, 16);
