//! The zero-allocation guarantee, extended from the memory-system access
//! loop (`crates/mem/tests/no_alloc.rs`) to whole `Machine::run`
//! executions: once every structure has reached its steady-state capacity,
//! running *more transactions* through the full simulator — interpreter,
//! protocol, engine, coherence, scheduler — allocates nothing extra.
//!
//! Methodology: direct window measurement cannot work here (`Machine::new`
//! and the final report legitimately allocate), so the test compares the
//! total heap events of an N-iteration run against a 2N-iteration run of
//! the *same* workload shape. Construction, warm-up growth and reporting
//! are identical on both sides (same addresses, same structure
//! capacities), so any difference is steady-state allocation — and the
//! assertion is that there is none.
//!
//! Coverage: every protocol on a conflict-free per-core counter, and the
//! contended shared counter for *every* protocol — eager (scratch victim
//! buffer), lazy (committer-wins mask walk), lazy-vb (epoch-stamped value
//! log), both RETCON configurations (scratch repair buffers, inline
//! register updates, epoch-stamped footprints), and DATM (reusable
//! cascading-abort worklists + bitmask visited set, the last conflict path
//! that used to allocate).

use retcon_isa::{Addr, BinOp, CmpOp, Operand, Program, ProgramBuilder, Reg, WORDS_PER_BLOCK};
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::System;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// `iters` transactional double-increments of the counter at `addr`.
fn counter_program(addr: u64, iters: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let body = b.block();
    let done = b.block();
    b.imm(Reg(0), iters);
    b.imm(Reg(1), addr);
    b.jump(body);
    b.select(body);
    b.tx_begin();
    b.load(Reg(2), Reg(1), 0);
    b.add_imm(Reg(2), 1);
    b.store(Operand::Reg(Reg(2)), Reg(1), 0);
    b.load(Reg(2), Reg(1), 0);
    b.add_imm(Reg(2), 1);
    b.store(Operand::Reg(Reg(2)), Reg(1), 0);
    b.tx_commit();
    b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
    b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
    b.select(done);
    b.halt();
    b.build().unwrap()
}

/// Heap events of one complete build-and-run: `shared` puts every core on
/// one counter (maximum contention), otherwise each core increments its
/// own block-private counter.
fn heap_events_of_run(system: System, cores: usize, iters: u64, shared: bool) -> u64 {
    let before = alloc_counter::heap_events();
    let programs = (0..cores)
        .map(|c| {
            let addr = if shared {
                0
            } else {
                c as u64 * WORDS_PER_BLOCK
            };
            counter_program(addr, iters)
        })
        .collect();
    let mut m = Machine::new(
        SimConfig::with_cores(cores),
        system.protocol(cores),
        programs,
    );
    let report = m.run().expect("run completes");
    let expected = if shared {
        2 * iters * cores as u64
    } else {
        2 * iters
    };
    assert_eq!(report.protocol.commits, iters * cores as u64);
    if shared {
        assert_eq!(m.mem().read_word(Addr(0)), expected);
    } else {
        for c in 0..cores {
            assert_eq!(
                m.mem().read_word(Addr(c as u64 * WORDS_PER_BLOCK)),
                expected
            );
        }
    }
    alloc_counter::heap_events() - before
}

/// Asserts that doubling the transaction count adds zero heap events, i.e.
/// the steady state allocates nothing. The counters are process-global, so
/// harness noise can land inside a window; like the mem-level test, one
/// clean pair out of a few attempts keeps the guarantee sharp.
fn assert_steady_state_allocation_free(system: System, cores: usize, shared: bool, what: &str) {
    const ATTEMPTS: usize = 5;
    let mut observed = Vec::new();
    for _ in 0..ATTEMPTS {
        let short = heap_events_of_run(system, cores, 100, shared);
        let long = heap_events_of_run(system, cores, 200, shared);
        if long == short {
            return;
        }
        observed.push(long as i64 - short as i64);
    }
    panic!(
        "{what} under {}: doubling iterations changed heap events in every \
         one of {ATTEMPTS} attempts: {observed:?}",
        system.label()
    );
}

/// One test function (not several): with process-global counters, a second
/// `#[test]` on a parallel harness thread would land its allocations
/// inside this one's measurement windows.
#[test]
fn machine_run_steady_state_does_not_allocate() {
    // Conflict-free per-core counters: every protocol must be
    // allocation-free once warm.
    for system in System::ALL {
        assert_steady_state_allocation_free(system, 4, false, "private counter");
    }
    // The contended shared counter: conflict resolution, stall storms,
    // aborts, cascades, steals and symbolic repair are all
    // allocation-free once warm — DATM included, whose cascading aborts
    // fire constantly at max contention.
    for system in [
        System::Eager,
        System::Lazy,
        System::LazyVb,
        System::Retcon,
        System::RetconIdeal,
        System::Datm,
    ] {
        assert_steady_state_allocation_free(system, 4, true, "shared counter");
    }
}
