//! `serve_client` — drive a running `retcon-serve` daemon (or replay the
//! same sweep offline) and print the record set.
//!
//! ```text
//! cargo run --release --example serve_client -- \
//!     --addr 127.0.0.1:7463 --workloads counter,genome \
//!     --systems eager,RetCon --cores 1,2,4 --seeds 42
//! ```
//!
//! Record lines print to stdout as compact JSON in **canonical sweep
//! order** (workload-major, then system, then cores, then seed); the
//! dedup summary goes to stderr. With `--offline` the same matrix runs
//! locally through the lab engine instead — stdout is byte-identical to
//! the served output, which is how the CI smoke job cmp-verifies the
//! daemon. `--require-hit-rate F` exits non-zero if fewer than `F` of
//! the runs were served without a new execution (store hits plus
//! single-flight joins). `--stats` / `--metrics` / `--shutdown` follow
//! the sweep (or run alone with `--no-sweep`); `--metrics` prints the
//! daemon's Prometheus text exposition to stdout. `--retries N` turns on transport-level
//! retry (reconnect + reissue with backoff — safe because run keys are
//! idempotency keys); `--connect-timeout-ms` / `--read-timeout-ms`
//! bound the socket.

use retcon_lab::engine::{self, RunKey};
use retcon_serve::{Client, ClientConfig, SweepRequest};
use retcon_workloads::{System, Workload};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    cfg: ClientConfig,
    sweep: SweepRequest,
    no_sweep: bool,
    offline: bool,
    require_hit_rate: Option<f64>,
    stats: bool,
    metrics: bool,
    shutdown: bool,
}

fn usage() -> String {
    "usage: serve_client [--addr HOST:PORT] [--workloads A,B] [--systems A,B] \
     [--cores 1,2] [--seeds 42] [--id N] [--offline] [--require-hit-rate F] \
     [--retries N] [--connect-timeout-ms MS] [--read-timeout-ms MS] \
     [--stats] [--metrics] [--shutdown] [--no-sweep]"
        .to_string()
}

fn split_list(raw: &str) -> impl Iterator<Item = &str> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7463".to_string(),
        cfg: ClientConfig::default(),
        sweep: SweepRequest {
            id: 1,
            workloads: vec![Workload::Counter],
            systems: vec![System::Eager, System::Retcon],
            cores: vec![1, 2, 4],
            seeds: vec![retcon_lab::SEED],
        },
        no_sweep: false,
        offline: false,
        require_hit_rate: None,
        stats: false,
        metrics: false,
        shutdown: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--id" => {
                args.sweep.id = value("--id")?.parse().map_err(|e| format!("--id: {e}"))?;
            }
            "--workloads" => {
                args.sweep.workloads = split_list(&value("--workloads")?)
                    .map(|label| {
                        Workload::parse(label).ok_or_else(|| format!("unknown workload `{label}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--systems" => {
                args.sweep.systems = split_list(&value("--systems")?)
                    .map(|label| {
                        System::parse(label).ok_or_else(|| format!("unknown system `{label}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--cores" => {
                args.sweep.cores = split_list(&value("--cores")?)
                    .map(|n| n.parse().map_err(|e| format!("--cores: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => {
                args.sweep.seeds = split_list(&value("--seeds")?)
                    .map(|n| n.parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--offline" => args.offline = true,
            "--require-hit-rate" => {
                args.require_hit_rate = Some(
                    value("--require-hit-rate")?
                        .parse()
                        .map_err(|e| format!("--require-hit-rate: {e}"))?,
                );
            }
            "--retries" => {
                args.cfg.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--connect-timeout-ms" => {
                let ms: u64 = value("--connect-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--connect-timeout-ms: {e}"))?;
                args.cfg.connect_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                args.cfg.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--stats" => args.stats = true,
            "--metrics" => args.metrics = true,
            "--shutdown" => args.shutdown = true,
            "--no-sweep" => args.no_sweep = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Runs the sweep matrix locally through the lab engine, printing the
/// same canonical-order record lines the daemon serves.
fn run_offline(keys: &[RunKey]) -> Result<(), String> {
    for key in keys {
        let report = engine::simulate(key).map_err(|e| format!("simulation failed: {e}"))?;
        println!("{}", engine::record_for(key, report).to_json());
    }
    eprintln!("offline: {} runs", keys.len());
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.offline {
        return run_offline(&args.sweep.explode());
    }
    let mut client = Client::connect_with(&args.addr, args.cfg.clone())
        .map_err(|e| format!("connect {}: {e}", args.addr))?;
    if !args.no_sweep {
        let result = client.sweep(&args.sweep)?;
        for record in &result.records {
            println!("{}", record.to_json());
        }
        eprintln!(
            "sweep {}: {} runs, {} hits, {} joined, {} misses (hit rate {:.3})",
            args.sweep.id,
            result.records.len(),
            result.hits,
            result.joined,
            result.misses,
            result.hit_rate()
        );
        if let Some(min) = args.require_hit_rate {
            if result.hit_rate() < min {
                return Err(format!(
                    "hit rate {:.3} below required {min:.3}",
                    result.hit_rate()
                ));
            }
        }
    }
    if args.stats {
        for (name, value) in client.stats()? {
            eprintln!("stat {name}={value}");
        }
    }
    if args.metrics {
        // The exposition document goes to stdout so it can be piped
        // straight into a scraper or the validator.
        print!("{}", client.metrics()?);
    }
    if args.shutdown {
        eprintln!("shutdown: {}", client.shutdown()?);
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
