//! Wall-clock benchmarking of the dataset matrix: the machine-readable
//! perf trajectory (`BENCH_hotpath.json`).
//!
//! `retcon-lab -- bench` times the same shared-cache regeneration flow as
//! `retcon-lab -- all` (dataset by dataset, records discarded) and
//! *appends* the result to a trajectory file, so successive PRs leave a
//! diffable perf history instead of overwriting each other. Cycle *counts*
//! are pinned byte-identical by the golden snapshot and
//! `tests/determinism.rs`; this file tracks the only thing allowed to
//! change: how fast the simulator produces them.
//!
//! The file schema is `bench_hotpath_v2`: `{"schema": ..., "entries":
//! [...]}` where each entry is one benchmark run. A legacy
//! `bench_hotpath_v1` file (a single run object, as PR 3 wrote) is read as
//! a one-entry trajectory, so the first append preserves the PR 3 point.

use crate::datasets::Dataset;
use crate::runner::ReportCache;
use retcon_sim::json::Json;
use retcon_sim::SimError;
use retcon_workloads::{System, Workload};
use std::time::Instant;

/// Wall-clock timing of one dataset's regeneration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetBench {
    /// Dataset name (`fig9`, `scaling`, ...).
    pub name: String,
    /// Number of simulation runs the dataset's record holds.
    pub runs: u64,
    /// Wall-clock microseconds to regenerate the dataset (shared cache, so
    /// datasets that reuse earlier simulations are cheap — same as `all`).
    pub micros: u64,
}

/// One benchmark run: the full dataset matrix, timed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Worker threads used (`--jobs`).
    pub jobs: u64,
    /// Seconds since the Unix epoch when the benchmark ran.
    pub unix_time: u64,
    /// Per-dataset timings, in regeneration order.
    pub datasets: Vec<DatasetBench>,
}

impl BenchReport {
    /// Total wall-clock microseconds across all datasets.
    pub fn total_micros(&self) -> u64 {
        self.datasets.iter().map(|d| d.micros).sum()
    }

    /// Total simulation runs across all datasets.
    pub fn total_runs(&self) -> u64 {
        self.datasets.iter().map(|d| d.runs).sum()
    }

    /// Mean microseconds per simulation run, rounded down.
    pub fn mean_micros_per_run(&self) -> u64 {
        self.total_micros()
            .checked_div(self.total_runs())
            .unwrap_or(0)
    }

    /// The entry as JSON lines at `indent` spaces (hand-rolled and
    /// integer-only, like every other record emitter in this crate).
    fn push_json(&self, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        out.push_str(&format!("{pad}{{\n"));
        out.push_str(&format!("{pad}  \"unix_time\": {},\n", self.unix_time));
        out.push_str(&format!("{pad}  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("{pad}  \"total_runs\": {},\n", self.total_runs()));
        out.push_str(&format!(
            "{pad}  \"total_micros\": {},\n",
            self.total_micros()
        ));
        out.push_str(&format!(
            "{pad}  \"mean_micros_per_run\": {},\n",
            self.mean_micros_per_run()
        ));
        out.push_str(&format!("{pad}  \"datasets\": [\n"));
        for (i, d) in self.datasets.iter().enumerate() {
            let mean = d.micros.checked_div(d.runs).unwrap_or(0);
            out.push_str(&format!(
                "{pad}    {{\"name\": \"{}\", \"runs\": {}, \"micros\": {}, \"mean_micros_per_run\": {}}}{}\n",
                d.name,
                d.runs,
                d.micros,
                mean,
                if i + 1 < self.datasets.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!("{pad}  ]\n"));
        out.push_str(&format!("{pad}}}"));
    }

    /// Rebuilds one entry from its parsed JSON object.
    fn from_json(v: &Json) -> Result<BenchReport, String> {
        let datasets = v
            .req_arr("datasets")?
            .iter()
            .map(|d| {
                Ok(DatasetBench {
                    name: d.req_str("name")?.to_string(),
                    runs: d.req_u64("runs")?,
                    micros: d.req_u64("micros")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            jobs: v.req_u64("jobs")?,
            unix_time: v.req_u64("unix_time")?,
            datasets,
        })
    }
}

/// The perf-history file: every benchmark run ever appended, oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BenchTrajectory {
    /// Benchmark runs, in append order.
    pub entries: Vec<BenchReport>,
}

impl BenchTrajectory {
    /// The trajectory as pretty-printed JSON (`bench_hotpath_v2`).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"bench_hotpath_v2\",\n");
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            e.push_json(&mut out, 4);
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Parses a trajectory file: `bench_hotpath_v2`, or a legacy
    /// `bench_hotpath_v1` single-run file (read as one entry).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json_str(text: &str) -> Result<BenchTrajectory, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        match v.req_str("schema")? {
            "bench_hotpath_v2" => Ok(BenchTrajectory {
                entries: v
                    .req_arr("entries")?
                    .iter()
                    .map(BenchReport::from_json)
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            "bench_hotpath_v1" => Ok(BenchTrajectory {
                entries: vec![BenchReport::from_json(&v)?],
            }),
            other => Err(format!("unknown bench schema `{other}`")),
        }
    }

    /// The last two entries, newest last, if the trajectory has at least
    /// two points to compare.
    pub fn last_two(&self) -> Option<(&BenchReport, &BenchReport)> {
        match self.entries.as_slice() {
            [.., prev, last] => Some((prev, last)),
            _ => None,
        }
    }
}

/// Regenerates every dataset once (shared report cache, records discarded)
/// and returns the wall-clock trajectory entry.
///
/// # Errors
///
/// Propagates the first [`SimError`] (fatal — indicates a workload bug).
pub fn run_bench(jobs: usize) -> Result<BenchReport, SimError> {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cache = ReportCache::new();
    let mut datasets = Vec::new();
    for dataset in Dataset::ALL {
        let t = Instant::now();
        let record = dataset.collect_cached(jobs, &cache)?;
        datasets.push(DatasetBench {
            name: dataset.name().to_string(),
            runs: record.runs.len() as u64,
            micros: t.elapsed().as_micros() as u64,
        });
    }
    // Contended-matrix entry, bench-only (not a `Dataset`, so record sets
    // stay byte-identical): the heaviest stall-storm shape in the suite —
    // 32-core unoptimized `python` under RetCon, where retries outnumber
    // retired instructions ~2.6:1. This is the shape stall-storm
    // fast-forwarding targets, so the trajectory (and the non-gating
    // `perfdiff` that reads it) tracks contended-path speed, not just the
    // figure matrix.
    let t = Instant::now();
    retcon_workloads::run(Workload::Python { optimized: false }, System::Retcon, 32, 1)?;
    datasets.push(DatasetBench {
        name: "contended32".to_string(),
        runs: 1,
        micros: t.elapsed().as_micros() as u64,
    });
    // The same contended shape with event tracing ON: `trace_overhead`
    // vs `contended32` is the observability cost the never-perturbs
    // contract promises is small, and `perfdiff` watches it like any
    // other entry.
    let spec = Workload::Python { optimized: false }.build(32, 1);
    let t = Instant::now();
    retcon_workloads::run_spec_traced_sized(
        &spec,
        System::Retcon,
        32,
        1,
        retcon_obs::ring::DEFAULT_CAPACITY,
    )?;
    datasets.push(DatasetBench {
        name: "trace_overhead".to_string(),
        runs: 1,
        micros: t.elapsed().as_micros() as u64,
    });
    // Past-the-paper scale entries, bench-only like `contended32`: the
    // group-local `scaling_xl` stressor at the 4-word (256-core) and
    // 16-word (1024-core) CoreSet size classes, executed sharded. These
    // track what the wide size classes and the sharded merge cost in
    // wall-clock terms; cycle counts are pinned separately by the
    // sharded-vs-serial byte-identity tests.
    for (name, cores, shards) in [("scale256", 256usize, 2usize), ("scale1024", 1024, 4)] {
        let spec = Workload::ScalingXl.build(cores, 42);
        let t = Instant::now();
        retcon_workloads::run_spec_sized(&spec, System::Retcon, cores, shards)?;
        datasets.push(DatasetBench {
            name: name.to_string(),
            runs: 1,
            micros: t.elapsed().as_micros() as u64,
        });
    }
    // Serve-path entries: the same sweep pushed through the daemon's
    // content-addressed ResultStore (no sockets — the store is the serving
    // hot path; the wire layer is microseconds of formatting on top). Cold
    // = every key misses and executes; warm = the identical sweep replayed
    // against the now-populated store. The gap is what `retcon-serve`
    // saves a fleet running overlapping matrices.
    let serve_jobs: Vec<crate::runner::Job> = [System::Eager, System::Retcon]
        .iter()
        .flat_map(|&system| {
            [1usize, 2, 4, 8]
                .iter()
                .map(move |&cores| crate::runner::Job::new(Workload::Counter, system, cores, 42))
        })
        .collect();
    let store = crate::engine::ResultStore::new(64 << 20);
    let t = Instant::now();
    crate::runner::run_jobs_cached(&serve_jobs, jobs, &store)?;
    datasets.push(DatasetBench {
        name: "serve_cold".to_string(),
        runs: serve_jobs.len() as u64,
        micros: t.elapsed().as_micros() as u64,
    });
    let t = Instant::now();
    crate::runner::run_jobs_cached(&serve_jobs, jobs, &store)?;
    datasets.push(DatasetBench {
        name: "serve_warm".to_string(),
        runs: serve_jobs.len() as u64,
        micros: t.elapsed().as_micros() as u64,
    });
    Ok(BenchReport {
        jobs: jobs as u64,
        unix_time,
        datasets,
    })
}

/// Renders the perfdiff comparison of a trajectory's last two entries:
/// the report lines, plus whether any regression warning fired.
///
/// Pure so the edge cases stay unit-testable: a trajectory with fewer
/// than two entries reports "nothing to diff" instead of panicking, and
/// zero-micros entries (empty dataset lists, or timers too coarse to
/// register) compare as unchanged instead of dividing by zero.
pub fn perfdiff_lines(trajectory: &BenchTrajectory) -> (Vec<String>, bool) {
    let Some((prev, last)) = trajectory.last_two() else {
        let n = trajectory.entries.len();
        let noun = if n == 1 { "entry" } else { "entries" };
        return (vec![format!("{n} {noun}, nothing to diff")], false);
    };
    // A zero-micros baseline has no meaningful ratio; treat it as
    // unchanged rather than dividing by zero (or reporting +inf%).
    let ratio = |old: u64, new: u64| -> f64 {
        if old == 0 {
            1.0
        } else {
            new as f64 / old as f64
        }
    };
    let mut lines = Vec::new();
    let mut warned = false;
    let total = ratio(prev.total_micros(), last.total_micros());
    lines.push(format!(
        "total: {:.3}s -> {:.3}s ({:+.1}%)",
        prev.total_micros() as f64 / 1e6,
        last.total_micros() as f64 / 1e6,
        (total - 1.0) * 100.0
    ));
    if total > 1.10 {
        lines.push("WARNING: total wall-clock regressed by more than 10%".to_string());
        warned = true;
    }
    for d in &last.datasets {
        if let Some(p) = prev.datasets.iter().find(|p| p.name == d.name) {
            let r = ratio(p.micros, d.micros);
            // Millisecond-scale datasets are timer noise, not signal.
            if r > 1.10 && d.micros > 5000 {
                lines.push(format!(
                    "WARNING: {} regressed {:+.1}% ({} us -> {} us)",
                    d.name,
                    (r - 1.0) * 100.0,
                    p.micros,
                    d.micros
                ));
                warned = true;
            }
        }
    }
    if !warned {
        lines.push("no dataset regressed by more than 10%".to_string());
    }
    (lines, warned)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(unix_time: u64, micros: u64) -> BenchReport {
        BenchReport {
            jobs: 1,
            unix_time,
            datasets: vec![
                DatasetBench {
                    name: "fig2".to_string(),
                    runs: 5,
                    micros,
                },
                DatasetBench {
                    name: "table1".to_string(),
                    runs: 0,
                    micros: 2,
                },
            ],
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let trajectory = BenchTrajectory {
            entries: vec![report(1000, 1500)],
        };
        let json = trajectory.to_json_string();
        assert!(json.contains("\"schema\": \"bench_hotpath_v2\""));
        assert!(json.contains("\"total_runs\": 5"));
        assert!(json.contains("\"total_micros\": 1502"));
        assert!(json.contains("\"mean_micros_per_run\": 300,"));
        assert!(json.contains(
            "{\"name\": \"fig2\", \"runs\": 5, \"micros\": 1500, \"mean_micros_per_run\": 300},"
        ));
        // Zero-run datasets do not divide by zero.
        assert!(json.contains(
            "{\"name\": \"table1\", \"runs\": 0, \"micros\": 2, \"mean_micros_per_run\": 0}"
        ));
    }

    #[test]
    fn trajectory_round_trips_and_appends() {
        let mut t = BenchTrajectory {
            entries: vec![report(1000, 1500)],
        };
        let parsed = BenchTrajectory::from_json_str(&t.to_json_string()).unwrap();
        assert_eq!(parsed, t);
        t.entries.push(report(2000, 1200));
        let parsed = BenchTrajectory::from_json_str(&t.to_json_string()).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        let (prev, last) = parsed.last_two().unwrap();
        assert_eq!(prev.unix_time, 1000);
        assert_eq!(last.unix_time, 2000);
    }

    #[test]
    fn legacy_v1_file_reads_as_one_entry() {
        // The exact shape PR 3's emitter wrote.
        let v1 = r#"{
  "schema": "bench_hotpath_v1",
  "unix_time": 1785276923,
  "jobs": 1,
  "total_runs": 329,
  "total_micros": 7346546,
  "mean_micros_per_run": 22329,
  "datasets": [
    {"name": "table1", "runs": 0, "micros": 11, "mean_micros_per_run": 0},
    {"name": "fig9", "runs": 70, "micros": 2800833, "mean_micros_per_run": 40011}
  ]
}"#;
        let t = BenchTrajectory::from_json_str(v1).unwrap();
        assert_eq!(t.entries.len(), 1);
        assert_eq!(t.entries[0].unix_time, 1785276923);
        assert_eq!(t.entries[0].total_runs(), 70);
        assert_eq!(t.entries[0].datasets[1].name, "fig9");
        assert!(t.last_two().is_none(), "one entry has nothing to diff");
    }

    #[test]
    fn unknown_schema_rejected() {
        assert!(BenchTrajectory::from_json_str(r#"{"schema": "nope", "entries": []}"#).is_err());
    }

    #[test]
    fn perfdiff_short_trajectories_do_not_panic() {
        let empty = BenchTrajectory::default();
        let (lines, warned) = perfdiff_lines(&empty);
        assert_eq!(lines, vec!["0 entries, nothing to diff".to_string()]);
        assert!(!warned);
        let one = BenchTrajectory {
            entries: vec![report(1000, 1500)],
        };
        let (lines, warned) = perfdiff_lines(&one);
        assert_eq!(lines, vec!["1 entry, nothing to diff".to_string()]);
        assert!(!warned);
    }

    #[test]
    fn perfdiff_zero_micros_baseline_is_not_a_regression() {
        // A baseline entry whose timings are all zero (coarse timer, or an
        // empty dataset list) must not divide by zero or warn: there is no
        // meaningful ratio to regress against.
        let zero = BenchReport {
            jobs: 1,
            unix_time: 1000,
            datasets: vec![DatasetBench {
                name: "fig2".to_string(),
                runs: 5,
                micros: 0,
            }],
        };
        assert_eq!(zero.mean_micros_per_run(), 0, "total 0us stays finite");
        let t = BenchTrajectory {
            entries: vec![zero, report(2000, 1_000_000)],
        };
        let (lines, warned) = perfdiff_lines(&t);
        assert!(!warned, "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("+0.0%")), "{lines:?}");
        // Both entries zero: still finite, still quiet.
        let both = BenchTrajectory {
            entries: vec![
                BenchReport {
                    jobs: 1,
                    unix_time: 1,
                    datasets: Vec::new(),
                },
                BenchReport {
                    jobs: 1,
                    unix_time: 2,
                    datasets: Vec::new(),
                },
            ],
        };
        let (lines, warned) = perfdiff_lines(&both);
        assert!(!warned, "{lines:?}");
    }

    #[test]
    fn perfdiff_flags_a_real_regression() {
        let t = BenchTrajectory {
            entries: vec![report(1000, 100_000), report(2000, 200_000)],
        };
        let (lines, warned) = perfdiff_lines(&t);
        assert!(warned);
        assert!(
            lines
                .iter()
                .any(|l| l.contains("WARNING: total wall-clock")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("WARNING: fig2 regressed")),
            "{lines:?}"
        );
    }
}
