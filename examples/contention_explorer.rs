//! Where does symbolic repair stop helping? A contention sweep.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example contention_explorer
//! ```
//!
//! Transactions update one counter chosen from a pool; shrinking the pool
//! raises contention. Every update is an increment (repairable), so RETCON
//! should hold its speedup all the way to a single white-hot counter, while
//! the eager baseline decays. The sweep also flips the update to a multiply
//! (untrackable) to show the repair advantage disappearing — §5.4's "a
//! repair-based approach is not always the right one" in miniature.

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::{SplitMix64, System};

const CORES: usize = 16;
const TXS_PER_CORE: u64 = 128;

fn build_program(pool: u64, trackable: bool) -> retcon_isa::Program {
    let mut b = ProgramBuilder::new();
    let body = b.block();
    let done = b.block();
    b.imm(Reg(0), TXS_PER_CORE);
    b.jump(body);
    b.select(body);
    b.input(Reg(10));
    b.tx_begin();
    b.work(300);
    // address = (key % pool) * 8
    b.bin(BinOp::Mod, Reg(10), Reg(10), Operand::Imm(pool as i64));
    b.bin(BinOp::Shl, Reg(10), Reg(10), Operand::Imm(3));
    b.load(Reg(2), Reg(10), 0);
    if trackable {
        b.bin(BinOp::Add, Reg(2), Reg(2), Operand::Imm(1));
    } else {
        b.bin(BinOp::Mul, Reg(2), Reg(2), Operand::Imm(3));
        b.bin(BinOp::Add, Reg(2), Reg(2), Operand::Imm(1));
    }
    b.store(Operand::Reg(Reg(2)), Reg(10), 0);
    b.tx_commit();
    b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
    b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
    b.select(done);
    b.halt();
    b.build().expect("program is well-formed")
}

fn run(system: System, pool: u64, trackable: bool) -> u64 {
    let mut machine = Machine::new(
        SimConfig::with_cores(CORES),
        system.protocol(CORES),
        (0..CORES).map(|_| build_program(pool, trackable)).collect(),
    );
    let mut rng = SplitMix64::new(3);
    for core in 0..CORES {
        machine.set_tape(
            core,
            (0..TXS_PER_CORE).map(|_| rng.next_u64() >> 8).collect(),
        );
    }
    machine.run().expect("run completes").cycles
}

fn main() {
    println!("contention sweep, {CORES} cores, one counter update per transaction\n");
    println!("-- repairable updates (increment) --");
    println!(
        "{:>12} {:>12} {:>12} {:>9}",
        "pool size", "eager cyc", "RetCon cyc", "RetCon+"
    );
    for pool in [1024u64, 64, 8, 1] {
        let eager = run(System::Eager, pool, true);
        let retcon = run(System::Retcon, pool, true);
        println!(
            "{:>12} {:>12} {:>12} {:>8.1}x",
            pool,
            eager,
            retcon,
            eager as f64 / retcon as f64
        );
    }
    println!("\n-- untrackable updates (multiply) --");
    println!(
        "{:>12} {:>12} {:>12} {:>9}",
        "pool size", "eager cyc", "RetCon cyc", "RetCon+"
    );
    for pool in [1024u64, 64, 8, 1] {
        let eager = run(System::Eager, pool, false);
        let retcon = run(System::Retcon, pool, false);
        println!(
            "{:>12} {:>12} {:>12} {:>8.1}x",
            pool,
            eager,
            retcon,
            eager as f64 / retcon as f64
        );
    }
    println!("\nIncrements stay repairable at any contention; multiplies force");
    println!("equality constraints, so RETCON degrades to the eager baseline.");
}
