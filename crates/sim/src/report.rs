//! Simulation reports: the measurement side of Figures 1, 3, 4, 9, 10 and
//! Table 3.
//!
//! Besides the in-memory accounting types, this module owns the report's
//! *stable serialization surface*: field-name constants
//! ([`TimeBreakdown::FIELDS`]) and the [`SimReport::to_json`] /
//! [`SimReport::from_json`] pair that the experiment-record layer
//! (`retcon-lab`) and `retcon-run --json` both build on, so there is one
//! schema definition for every machine-readable emitter.

use crate::json::Json;
use retcon::{RetconStats, TxSnapshot};
use retcon_htm::ProtocolStats;

/// Cycle breakdown of one core's execution, matching the categories of
/// Figure 4: *"busy represents all time spent not stalled on
/// synchronization. barrier represents time stalled at a barrier, an
/// indicator of load imbalance. conflict represents time spent either
/// stalled by another processor or doing work in a transaction that is
/// ultimately aborted. other represents all other sources of
/// synchronization-related stalls"* (here: commit processing, including
/// RETCON's pre-commit repair).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Useful work: committed transactional work plus non-transactional
    /// execution.
    pub busy: u64,
    /// Stall cycles plus work in ultimately-aborted transaction attempts.
    pub conflict: u64,
    /// Cycles parked at barriers (load imbalance).
    pub barrier: u64,
    /// Commit processing (validation, draining, pre-commit repair).
    pub other: u64,
}

impl TimeBreakdown {
    /// Stable bucket names, in the order [`TimeBreakdown::as_array`] uses —
    /// the schema contract for machine-readable records.
    pub const FIELDS: [&'static str; 4] = ["busy", "conflict", "barrier", "other"];

    /// The buckets in [`TimeBreakdown::FIELDS`] order.
    pub fn as_array(&self) -> [u64; 4] {
        [self.busy, self.conflict, self.barrier, self.other]
    }

    /// Rebuilds a breakdown from [`TimeBreakdown::FIELDS`]-ordered buckets.
    pub fn from_array(values: [u64; 4]) -> Self {
        TimeBreakdown {
            busy: values[0],
            conflict: values[1],
            barrier: values[2],
            other: values[3],
        }
    }

    /// Sum of all buckets.
    pub fn total(&self) -> u64 {
        self.busy + self.conflict + self.barrier + self.other
    }

    /// Adds another breakdown's buckets into this one.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        self.busy += other.busy;
        self.conflict += other.conflict;
        self.barrier += other.barrier;
        self.other += other.other;
    }

    /// The fraction of total time in each bucket, as
    /// `(busy, conflict, barrier, other)`; all zeros for an empty
    /// breakdown.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.busy as f64 / t,
            self.conflict as f64 / t,
            self.barrier as f64 / t,
            self.other as f64 / t,
        )
    }
}

/// One core's contribution to the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreReport {
    /// Cycle breakdown.
    pub breakdown: TimeBreakdown,
    /// Dynamic instructions executed (committed and aborted work).
    pub instructions: u64,
    /// The core's finishing time.
    pub finished_at: u64,
}

/// The complete result of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Protocol name (e.g. `"eager"`, `"lazy-vb"`, `"RetCon"`).
    pub protocol_name: String,
    /// Total execution time: the cycle at which the last core halted.
    pub cycles: u64,
    /// Per-core details.
    pub per_core: Vec<CoreReport>,
    /// Aggregate protocol statistics (commits, aborts by cause, stalls).
    pub protocol: ProtocolStats,
    /// Aggregate RETCON structure statistics (Table 3), when the protocol
    /// collects them.
    pub retcon: Option<RetconStats>,
}

impl SimReport {
    /// Aggregate cycle breakdown across cores.
    pub fn breakdown(&self) -> TimeBreakdown {
        let mut total = TimeBreakdown::default();
        for c in &self.per_core {
            total.merge(&c.breakdown);
        }
        total
    }

    /// Speedup of this run over a sequential baseline taking `seq_cycles`.
    pub fn speedup_over(&self, seq_cycles: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        seq_cycles as f64 / self.cycles as f64
    }

    /// Abort-to-commit ratio, a quick conflict-pressure indicator.
    pub fn abort_ratio(&self) -> f64 {
        if self.protocol.commits == 0 {
            return 0.0;
        }
        self.protocol.aborts() as f64 / self.protocol.commits as f64
    }

    /// Dynamic instructions executed across all cores (committed and
    /// aborted work).
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// Serializes the full report (per-core detail included) as JSON.
    ///
    /// The shape is stable and lossless — [`SimReport::from_json`]
    /// reconstructs an identical report:
    ///
    /// ```text
    /// { "protocol": "...", "cycles": N,
    ///   "per_core": [{"busy":..,"conflict":..,"barrier":..,"other":..,
    ///                 "instructions":..,"finished_at":..}, ...],
    ///   "stats": { ProtocolStats::FIELDS... },
    ///   "retcon": null | {"transactions":..,"tx_cycles":..,"violations":..,
    ///                     "sum":{TxSnapshot::FIELDS...},
    ///                     "max":{TxSnapshot::FIELDS...}} }
    /// ```
    pub fn to_json(&self) -> Json {
        let per_core = self
            .per_core
            .iter()
            .map(|c| {
                let mut fields: Vec<(String, Json)> = TimeBreakdown::FIELDS
                    .iter()
                    .zip(c.breakdown.as_array())
                    .map(|(name, v)| (name.to_string(), Json::UInt(v)))
                    .collect();
                fields.push(("instructions".to_string(), Json::UInt(c.instructions)));
                fields.push(("finished_at".to_string(), Json::UInt(c.finished_at)));
                Json::Obj(fields)
            })
            .collect();
        let stats = Json::Obj(
            ProtocolStats::FIELDS
                .iter()
                .zip(self.protocol.as_array())
                .map(|(name, v)| (name.to_string(), Json::UInt(v)))
                .collect(),
        );
        let retcon = match &self.retcon {
            None => Json::Null,
            Some(rs) => Json::obj(vec![
                ("transactions", Json::UInt(rs.transactions)),
                ("tx_cycles", Json::UInt(rs.tx_cycles)),
                ("violations", Json::UInt(rs.violations)),
                ("sum", snapshot_json(&rs.sum)),
                ("max", snapshot_json(&rs.max)),
            ]),
        };
        Json::obj(vec![
            ("protocol", Json::str(&self.protocol_name)),
            ("cycles", Json::UInt(self.cycles)),
            ("per_core", Json::Arr(per_core)),
            ("stats", stats),
            ("retcon", retcon),
        ])
    }

    /// Reconstructs a report from the [`SimReport::to_json`] shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<SimReport, String> {
        let mut per_core = Vec::new();
        for (i, core) in json.req_arr("per_core")?.iter().enumerate() {
            let mut buckets = [0u64; 4];
            for (slot, name) in buckets.iter_mut().zip(TimeBreakdown::FIELDS) {
                *slot = core
                    .req_u64(name)
                    .map_err(|e| format!("per_core[{i}]: {e}"))?;
            }
            per_core.push(CoreReport {
                breakdown: TimeBreakdown::from_array(buckets),
                instructions: core
                    .req_u64("instructions")
                    .map_err(|e| format!("per_core[{i}]: {e}"))?,
                finished_at: core
                    .req_u64("finished_at")
                    .map_err(|e| format!("per_core[{i}]: {e}"))?,
            });
        }
        let stats_json = json
            .get("stats")
            .ok_or_else(|| "missing field `stats`".to_string())?;
        let mut stats = [0u64; 6];
        for (slot, name) in stats.iter_mut().zip(ProtocolStats::FIELDS) {
            *slot = stats_json
                .req_u64(name)
                .map_err(|e| format!("stats: {e}"))?;
        }
        let retcon = match json.get("retcon") {
            None | Some(Json::Null) => None,
            Some(rs) => Some(RetconStats {
                transactions: rs
                    .req_u64("transactions")
                    .map_err(|e| format!("retcon: {e}"))?,
                tx_cycles: rs
                    .req_u64("tx_cycles")
                    .map_err(|e| format!("retcon: {e}"))?,
                violations: rs
                    .req_u64("violations")
                    .map_err(|e| format!("retcon: {e}"))?,
                sum: snapshot_from_json(
                    rs.get("sum")
                        .ok_or_else(|| "missing field `retcon.sum`".to_string())?,
                )?,
                max: snapshot_from_json(
                    rs.get("max")
                        .ok_or_else(|| "missing field `retcon.max`".to_string())?,
                )?,
            }),
        };
        Ok(SimReport {
            protocol_name: json.req_str("protocol")?.to_string(),
            cycles: json.req_u64("cycles")?,
            per_core,
            protocol: ProtocolStats::from_array(stats),
            retcon,
        })
    }
}

fn snapshot_json(snap: &TxSnapshot) -> Json {
    Json::Obj(
        TxSnapshot::FIELDS
            .iter()
            .zip(snap.as_array())
            .map(|(name, v)| (name.to_string(), Json::UInt(v)))
            .collect(),
    )
}

fn snapshot_from_json(json: &Json) -> Result<TxSnapshot, String> {
    let mut values = [0u64; 6];
    for (slot, name) in values.iter_mut().zip(TxSnapshot::FIELDS) {
        *slot = json.req_u64(name).map_err(|e| format!("snapshot: {e}"))?;
    }
    Ok(TxSnapshot::from_array(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = TimeBreakdown {
            busy: 60,
            conflict: 20,
            barrier: 15,
            other: 5,
        };
        assert_eq!(b.total(), 100);
        let (busy, conflict, barrier, other) = b.fractions();
        assert!((busy - 0.60).abs() < 1e-12);
        assert!((conflict - 0.20).abs() < 1e-12);
        assert!((barrier - 0.15).abs() < 1e-12);
        assert!((other - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_zero() {
        assert_eq!(TimeBreakdown::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_adds() {
        let mut a = TimeBreakdown {
            busy: 1,
            conflict: 2,
            barrier: 3,
            other: 4,
        };
        a.merge(&TimeBreakdown {
            busy: 10,
            conflict: 20,
            barrier: 30,
            other: 40,
        });
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn report_json_roundtrip_is_lossless() {
        let mut r = SimReport {
            protocol_name: "RetCon".to_string(),
            cycles: 98765,
            ..Default::default()
        };
        r.per_core.push(CoreReport {
            breakdown: TimeBreakdown {
                busy: 1,
                conflict: 2,
                barrier: 3,
                other: 4,
            },
            instructions: 500,
            finished_at: 98765,
        });
        r.per_core.push(CoreReport::default());
        r.protocol = ProtocolStats::from_array([10, 1, 2, 3, 4, 5]);
        let mut rs = RetconStats::new();
        rs.record_commit(TxSnapshot::from_array([1, 2, 3, 4, 5, 6]), 100);
        rs.record_violation();
        r.retcon = Some(rs);

        let json = r.to_json();
        assert_eq!(SimReport::from_json(&json).unwrap(), r);
        // And through text.
        let reparsed = crate::json::Json::parse(&json.to_pretty_string()).unwrap();
        assert_eq!(SimReport::from_json(&reparsed).unwrap(), r);

        // A report without RETCON stats round-trips too.
        r.retcon = None;
        assert_eq!(SimReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn report_json_rejects_missing_fields() {
        let r = SimReport::default();
        let Json::Obj(mut fields) = r.to_json() else {
            panic!("report JSON is an object");
        };
        fields.retain(|(k, _)| k != "cycles");
        assert!(SimReport::from_json(&Json::Obj(fields)).is_err());
    }

    #[test]
    fn report_helpers() {
        let mut r = SimReport {
            cycles: 50,
            ..Default::default()
        };
        assert_eq!(r.speedup_over(100), 2.0);
        r.protocol.commits = 10;
        r.protocol.aborts_conflict = 5;
        assert_eq!(r.abort_ratio(), 0.5);
        r.per_core.push(CoreReport {
            breakdown: TimeBreakdown {
                busy: 7,
                ..Default::default()
            },
            ..Default::default()
        });
        assert_eq!(r.breakdown().busy, 7);
    }
}
