//! Stall-storm fast-forward equivalence: analytically skipping certified
//! retry storms must be *invisible* in the report — every cycle count,
//! breakdown bucket, protocol counter, and RETCON structure statistic
//! identical to executing each retry step by step.
//!
//! The property is exercised over random small contended configurations
//! (the shapes that actually form storms) under all seven systems, on the
//! default deterministic schedule where the closed form is active.

use proptest::prelude::*;
use retcon_sim::SimConfig;
use retcon_workloads::{machine_for, System, Workload};

const SYSTEMS: [System; 7] = [
    System::Eager,
    System::EagerAbort,
    System::Lazy,
    System::LazyVb,
    System::Retcon,
    System::RetconIdeal,
    System::Datm,
];

/// Contended shapes kept small enough for step-by-step re-execution in a
/// debug-build property test.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Counter),
        Just(Workload::Python { optimized: false }),
        Just(Workload::Genome { resizable: true }),
    ]
}

fn assert_ff_equivalent(workload: Workload, cores: usize, seed: u64) {
    let spec = workload.build(cores, seed);
    for system in SYSTEMS {
        let mut reports = Vec::new();
        for ff in [true, false] {
            let mut machine =
                machine_for(&spec, system.protocol(cores), SimConfig::with_cores(cores));
            machine.set_fast_forward(ff);
            reports.push(machine.run().expect("run completes"));
        }
        assert_eq!(
            reports[0],
            reports[1],
            "{} on {} cores (seed {}) under {}: fast-forwarded and \
             step-by-step reports differ",
            workload.label(),
            cores,
            seed,
            system.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fast_forward_is_invisible_in_reports(
        workload in workload_strategy(),
        cores in 2usize..=4,
        seed in 0u64..1000,
    ) {
        assert_ff_equivalent(workload, cores, seed);
    }
}

/// The paper-shape corner: the heaviest contended configuration the bench
/// tracks, pinned deterministically on top of the random sweep (ignored by
/// default: ~a minute of step-by-step re-execution in debug builds).
#[test]
#[ignore]
fn fast_forward_is_invisible_on_the_bench_shape() {
    assert_ff_equivalent(Workload::Python { optimized: false }, 32, 1);
}
