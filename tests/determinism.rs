//! Determinism: identical seeds must produce bit-identical simulations —
//! the property that makes every figure in EXPERIMENTS.md reproducible.

use retcon_workloads::{run, System, Workload};

fn assert_identical(w: Workload, s: System) {
    let a = run(w, s, 4, 99).expect("first run");
    let b = run(w, s, 4, 99).expect("second run");
    assert_eq!(a.cycles, b.cycles, "{} under {}", w.label(), s.label());
    assert_eq!(a.protocol, b.protocol);
    for (x, y) in a.per_core.iter().zip(&b.per_core) {
        assert_eq!(x.breakdown, y.breakdown);
        assert_eq!(x.instructions, y.instructions);
        assert_eq!(x.finished_at, y.finished_at);
    }
    if let (Some(ra), Some(rb)) = (&a.retcon, &b.retcon) {
        assert_eq!(ra, rb);
    }
}

#[test]
fn all_workloads_deterministic_under_eager() {
    for w in Workload::fig9() {
        assert_identical(w, System::Eager);
    }
}

#[test]
fn all_workloads_deterministic_under_retcon() {
    for w in Workload::fig9() {
        assert_identical(w, System::Retcon);
    }
}

#[test]
fn contended_counter_deterministic_under_every_system() {
    for s in [
        System::Eager,
        System::EagerAbort,
        System::Lazy,
        System::LazyVb,
        System::Retcon,
        System::RetconIdeal,
        System::Datm,
    ] {
        assert_identical(Workload::Counter, s);
    }
}

/// The `retcon-lab` runner must produce record sets *byte-identical* to
/// serial execution at any worker count — the property that makes
/// `results/*.json` reproducible regardless of `--jobs`.
#[test]
fn parallel_runner_is_byte_identical_at_any_job_count() {
    use retcon_lab::runner::{run_jobs, Job};
    use retcon_lab::ExperimentRecord;

    let mut jobs = Vec::new();
    for w in [
        Workload::Counter,
        Workload::Genome { resizable: true },
        Workload::Ssca2,
    ] {
        jobs.push(Job::new(w, System::Eager, 1, 42));
        for s in [System::Eager, System::LazyVb, System::Retcon, System::Datm] {
            jobs.push(Job::new(w, s, 4, 42));
        }
    }

    let as_bytes = |runs: Vec<retcon_lab::RunRecord>| {
        ExperimentRecord {
            name: "determinism".to_string(),
            seed: 42,
            meta: vec![],
            runs,
        }
        .to_json_string()
    };

    let serial = as_bytes(run_jobs(&jobs, 1).expect("serial run"));
    for workers in [4, 8] {
        let parallel = as_bytes(run_jobs(&jobs, workers).expect("parallel run"));
        assert_eq!(
            serial, parallel,
            "record set differs between --jobs 1 and --jobs {workers}"
        );
    }
}

/// Golden cross-protocol cycle counts: the 8-core shared counter, every
/// protocol, seed 42. These values were captured from the pre-optimization
/// simulator (PR 2 HEAD) and pin *simulated timing itself* — not just
/// record bytes — so a hot-path optimization that accidentally changes
/// latency accounting, scheduling order, or conflict resolution fails here
/// even if it is internally consistent.
#[test]
fn golden_cycle_counts_8core_counter() {
    let expected = [
        (System::Eager, 398_943),
        (System::EagerAbort, 344_139),
        (System::Lazy, 114_940),
        (System::LazyVb, 55_312),
        (System::Retcon, 54_750),
        (System::RetconIdeal, 56_270),
        (System::Datm, 702_185),
    ];
    for (system, cycles) in expected {
        let report = run(Workload::Counter, system, 8, 42).expect("run completes");
        assert_eq!(
            report.cycles,
            cycles,
            "8-core counter cycle count changed under {} (golden value from the seed simulator)",
            system.label()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(Workload::Genome { resizable: false }, System::Eager, 4, 1).unwrap();
    let b = run(Workload::Genome { resizable: false }, System::Eager, 4, 2).unwrap();
    // Different keys hash to different buckets: cycle counts differ with
    // overwhelming probability.
    assert_ne!(a.cycles, b.cycles);
}
