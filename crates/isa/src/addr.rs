//! Word and cache-block addresses.
//!
//! All simulated memory is addressed in units of 64-bit words. Coherence,
//! conflict detection and RETCON's initial-value buffer operate on 64-byte
//! cache blocks — 8 consecutive words — matching the paper's Table 1
//! configuration ("64B blocks") and the §4.4 optimization of maintaining
//! initial-value-buffer entries at cache-block granularity.

use std::fmt;

/// Number of 64-bit words per 64-byte cache block.
pub const WORDS_PER_BLOCK: u64 = 8;

/// A word address: an index into the simulated memory's array of 64-bit
/// words.
///
/// # Example
///
/// ```
/// use retcon_isa::{Addr, WORDS_PER_BLOCK};
/// let a = Addr(13);
/// assert_eq!(a.block().0, 1);
/// assert_eq!(a.offset_in_block(), 13 - WORDS_PER_BLOCK);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A cache-block address: a word address divided by [`WORDS_PER_BLOCK`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl Addr {
    /// The cache block containing this word.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / WORDS_PER_BLOCK)
    }

    /// The index of this word within its cache block (`0..WORDS_PER_BLOCK`).
    #[inline]
    pub fn offset_in_block(self) -> u64 {
        self.0 % WORDS_PER_BLOCK
    }

    /// Returns the address `offset` words after `self`, wrapping on overflow
    /// (matching the wrapping arithmetic of the simulated machine).
    #[inline]
    pub fn offset(self, offset: i64) -> Addr {
        Addr(self.0.wrapping_add(offset as u64))
    }
}

impl BlockAddr {
    /// The first word of this block.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * WORDS_PER_BLOCK)
    }

    /// Iterates over the word addresses contained in this block.
    pub fn words(self) -> impl Iterator<Item = Addr> {
        let base = self.base().0;
        (0..WORDS_PER_BLOCK).map(move |i| Addr(base + i))
    }

    /// Returns `true` if `addr` lies within this block.
    #[inline]
    pub fn contains(self, addr: Addr) -> bool {
        addr.block() == self
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}]", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk[{:#x}]", self.0)
    }
}

impl From<u64> for Addr {
    fn from(w: u64) -> Self {
        Addr(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        assert_eq!(Addr(0).block(), BlockAddr(0));
        assert_eq!(Addr(7).block(), BlockAddr(0));
        assert_eq!(Addr(8).block(), BlockAddr(1));
        assert_eq!(Addr(63).block(), BlockAddr(7));
    }

    #[test]
    fn offset_in_block() {
        assert_eq!(Addr(0).offset_in_block(), 0);
        assert_eq!(Addr(7).offset_in_block(), 7);
        assert_eq!(Addr(8).offset_in_block(), 0);
    }

    #[test]
    fn block_words_cover_block() {
        let b = BlockAddr(3);
        let words: Vec<Addr> = b.words().collect();
        assert_eq!(words.len(), WORDS_PER_BLOCK as usize);
        for w in &words {
            assert!(b.contains(*w));
            assert_eq!(w.block(), b);
        }
        assert_eq!(words[0], b.base());
    }

    #[test]
    fn signed_offsets_wrap() {
        assert_eq!(Addr(10).offset(-3), Addr(7));
        assert_eq!(Addr(10).offset(3), Addr(13));
        assert_eq!(Addr(0).offset(-1), Addr(u64::MAX));
    }

    #[test]
    fn contains_rejects_neighbors() {
        let b = BlockAddr(1);
        assert!(!b.contains(Addr(7)));
        assert!(b.contains(Addr(8)));
        assert!(b.contains(Addr(15)));
        assert!(!b.contains(Addr(16)));
    }
}
