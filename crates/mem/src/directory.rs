//! Directory coherence state.

use std::collections::{BTreeSet, HashMap};

use retcon_isa::BlockAddr;

use crate::system::CoreId;

/// Coherence state of one block as seen by the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No core caches the block.
    Uncached,
    /// One or more cores hold read-only copies.
    Shared(BTreeSet<CoreId>),
    /// Exactly one core holds the block with write permission.
    Modified(CoreId),
}

impl DirState {
    /// The set of cores currently holding any copy.
    pub fn holders(&self) -> Vec<CoreId> {
        match self {
            DirState::Uncached => Vec::new(),
            DirState::Shared(s) => s.iter().copied().collect(),
            DirState::Modified(c) => vec![*c],
        }
    }

    /// `true` if `core` holds a copy.
    pub fn holds(&self, core: CoreId) -> bool {
        match self {
            DirState::Uncached => false,
            DirState::Shared(s) => s.contains(&core),
            DirState::Modified(c) => *c == core,
        }
    }

    /// `true` if `core` holds the block with write permission.
    pub fn holds_modified(&self, core: CoreId) -> bool {
        matches!(self, DirState::Modified(c) if *c == core)
    }
}

/// The directory: authoritative coherence state for every block.
///
/// The directory answers two questions for the memory system: *who must be
/// invalidated/downgraded to grant this request* and *can the data be
/// forwarded from a remote owner instead of DRAM*. State transitions are
/// driven exclusively by [`grant_read`](Directory::grant_read),
/// [`grant_write`](Directory::grant_write) and
/// [`drop_holder`](Directory::drop_holder); the per-core tag arrays mirror
/// this state for latency and speculative-bit lookups.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<u64, DirState>,
}

impl Directory {
    /// Creates an empty directory (all blocks [`DirState::Uncached`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state of `block`.
    pub fn state(&self, block: BlockAddr) -> DirState {
        self.entries
            .get(&block.0)
            .cloned()
            .unwrap_or(DirState::Uncached)
    }

    /// Cores whose copies must change state for `core` to perform the given
    /// access: for a write, every other holder; for a read, the remote
    /// modified owner (who must downgrade), if any.
    pub fn victims(&self, core: CoreId, block: BlockAddr, write: bool) -> Vec<CoreId> {
        match self.state(block) {
            DirState::Uncached => Vec::new(),
            DirState::Shared(s) => {
                if write {
                    s.iter().copied().filter(|&c| c != core).collect()
                } else {
                    Vec::new()
                }
            }
            DirState::Modified(o) => {
                if o == core {
                    Vec::new()
                } else {
                    vec![o]
                }
            }
        }
    }

    /// `true` if a miss by `core` would be serviced by a remote owner's cache
    /// (dirty forward) rather than DRAM.
    pub fn forwarded_from_owner(&self, core: CoreId, block: BlockAddr) -> bool {
        matches!(self.state(block), DirState::Modified(o) if o != core)
    }

    /// Records that `core` has been granted a read-only copy, downgrading a
    /// remote modified owner to shared. Returns the downgraded owner, if any.
    pub fn grant_read(&mut self, core: CoreId, block: BlockAddr) -> Option<CoreId> {
        let state = self.state(block);
        let (new, downgraded) = match state {
            DirState::Uncached => (DirState::Shared(BTreeSet::from([core])), None),
            DirState::Shared(mut s) => {
                s.insert(core);
                (DirState::Shared(s), None)
            }
            DirState::Modified(o) => {
                if o == core {
                    (DirState::Modified(o), None)
                } else {
                    (DirState::Shared(BTreeSet::from([o, core])), Some(o))
                }
            }
        };
        self.entries.insert(block.0, new);
        downgraded
    }

    /// Records that `core` has been granted an exclusive (writable) copy,
    /// invalidating all other holders. Returns the invalidated cores.
    pub fn grant_write(&mut self, core: CoreId, block: BlockAddr) -> Vec<CoreId> {
        let victims = self.victims(core, block, true);
        self.entries.insert(block.0, DirState::Modified(core));
        victims
    }

    /// Records that `core` no longer caches `block` (eviction or
    /// invalidation acknowledged).
    pub fn drop_holder(&mut self, core: CoreId, block: BlockAddr) {
        let state = self.state(block);
        let new = match state {
            DirState::Uncached => DirState::Uncached,
            DirState::Shared(mut s) => {
                s.remove(&core);
                if s.is_empty() {
                    DirState::Uncached
                } else {
                    DirState::Shared(s)
                }
            }
            DirState::Modified(o) => {
                if o == core {
                    DirState::Uncached
                } else {
                    DirState::Modified(o)
                }
            }
        };
        if new == DirState::Uncached {
            self.entries.remove(&block.0);
        } else {
            self.entries.insert(block.0, new);
        }
    }

    /// Number of blocks with a non-`Uncached` entry.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const C2: CoreId = CoreId(2);
    const B: BlockAddr = BlockAddr(7);

    #[test]
    fn starts_uncached() {
        let d = Directory::new();
        assert_eq!(d.state(B), DirState::Uncached);
        assert!(d.victims(C0, B, true).is_empty());
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn read_read_shares() {
        let mut d = Directory::new();
        assert_eq!(d.grant_read(C0, B), None);
        assert_eq!(d.grant_read(C1, B), None);
        let s = d.state(B);
        assert!(s.holds(C0) && s.holds(C1));
        assert!(!s.holds_modified(C0));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.grant_read(C0, B);
        d.grant_read(C1, B);
        let victims = d.grant_write(C2, B);
        assert_eq!(victims.len(), 2);
        assert!(victims.contains(&C0) && victims.contains(&C1));
        assert!(d.state(B).holds_modified(C2));
    }

    #[test]
    fn read_downgrades_modified_owner() {
        let mut d = Directory::new();
        d.grant_write(C0, B);
        assert!(d.forwarded_from_owner(C1, B));
        let downgraded = d.grant_read(C1, B);
        assert_eq!(downgraded, Some(C0));
        let s = d.state(B);
        assert!(s.holds(C0) && s.holds(C1));
        assert!(!s.holds_modified(C0));
    }

    #[test]
    fn owner_rereading_keeps_modified() {
        let mut d = Directory::new();
        d.grant_write(C0, B);
        assert_eq!(d.grant_read(C0, B), None);
        assert!(d.state(B).holds_modified(C0));
    }

    #[test]
    fn write_steals_from_owner() {
        let mut d = Directory::new();
        d.grant_write(C0, B);
        let victims = d.grant_write(C1, B);
        assert_eq!(victims, vec![C0]);
        assert!(d.state(B).holds_modified(C1));
    }

    #[test]
    fn drop_holder_transitions() {
        let mut d = Directory::new();
        d.grant_read(C0, B);
        d.grant_read(C1, B);
        d.drop_holder(C0, B);
        assert!(!d.state(B).holds(C0));
        assert!(d.state(B).holds(C1));
        d.drop_holder(C1, B);
        assert_eq!(d.state(B), DirState::Uncached);
        assert_eq!(d.tracked_blocks(), 0);

        d.grant_write(C2, B);
        d.drop_holder(C2, B);
        assert_eq!(d.state(B), DirState::Uncached);
    }

    #[test]
    fn victims_for_read_only_modified_owner() {
        let mut d = Directory::new();
        d.grant_read(C0, B);
        assert!(d.victims(C1, B, false).is_empty());
        d.grant_write(C0, B);
        assert_eq!(d.victims(C1, B, false), vec![C0]);
        assert_eq!(d.victims(C0, B, false), Vec::<CoreId>::new());
    }
}
