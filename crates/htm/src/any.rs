//! Monomorphized protocol dispatch.
//!
//! The simulator calls into the concurrency-control protocol once per
//! *instruction* (register hooks) and once per *memory access* — by far the
//! hottest call sites in the workspace. Routing them through
//! `Box<dyn Protocol>` costs an indirect call that the optimizer cannot see
//! through, so nothing inlines and every per-access branch is re-derived
//! behind the call. [`AnyProtocol`] flattens the five built-in protocols
//! into one enum whose methods dispatch with an ordinary (predictable,
//! inlineable) `match`, the same enum-state-machine shape the related kani
//! and mv codebases use for their hot dispatch.
//!
//! External users of `retcon-sim` with a custom [`Protocol`] implementation
//! are still supported through the thin [`AnyProtocol::Dyn`] adapter — they
//! pay the old virtual-call price, the built-ins no longer do.

use retcon::RetconStats;
use retcon_isa::{Addr, BinOp, CmpOp, Reg};
use retcon_mem::{CoreId, MemorySystem};

use crate::protocol::Protocol;
use crate::result::{CommitResult, MemResult, ProtocolStats};
use crate::storm::{StallAction, StallStorm};
use crate::{DatmLite, EagerTm, LazyTm, LazyVbTm, RetconTm};

/// Every concurrency-control protocol, dispatched by `match` instead of
/// vtable.
///
/// Construct it with `From`/`Into` from any built-in protocol value (the
/// monomorphized variants) or from a `Box<dyn Protocol>` (the adapter
/// variant for external implementations):
///
/// ```
/// use retcon_htm::{AnyProtocol, ConflictPolicy, EagerTm};
///
/// let p: AnyProtocol = EagerTm::new(2, ConflictPolicy::OldestWins).into();
/// assert_eq!(p.name(), "eager");
/// ```
pub enum AnyProtocol<const N: usize = 1> {
    /// The §2 baseline eager HTM (both contention policies).
    Eager(EagerTm<N>),
    /// Lazy conflict detection, committer wins (Figure 2(e)).
    Lazy(LazyTm<N>),
    /// Value-based commit validation (§5.1 `lazy-vb`).
    LazyVb(LazyVbTm<N>),
    /// Full RETCON symbolic repair (and its idealized configuration).
    Retcon(RetconTm<N>),
    /// Dependence-aware forwarding TM (Figure 2(b)).
    Datm(DatmLite<N>),
    /// Escape hatch for external [`Protocol`] implementations; calls stay
    /// virtual.
    Dyn(Box<dyn Protocol<N>>),
}

impl<const N: usize> std::fmt::Debug for AnyProtocol<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `dyn Protocol` is not `Debug`; the protocol name identifies every
        // variant well enough for diagnostics.
        f.debug_tuple("AnyProtocol").field(&self.name()).finish()
    }
}

/// Expands one protocol call across every variant, fully qualified as
/// `Protocol::<N>::method` so the size class is pinned (the built-ins
/// implement `Protocol<N>` for every `N`). `Dyn` deref-coerces the box,
/// so the same expansion serves all six arms.
macro_rules! dispatch {
    ($self:expr, $method:ident ( $($args:expr),* )) => {
        match $self {
            AnyProtocol::Eager(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Lazy(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::LazyVb(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Retcon(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Datm(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Dyn(p) => Protocol::<N>::$method(&mut **p, $($args),*),
        }
    };
    (ref $self:expr, $method:ident ( $($args:expr),* )) => {
        match $self {
            AnyProtocol::Eager(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Lazy(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::LazyVb(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Retcon(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Datm(p) => Protocol::<N>::$method(p, $($args),*),
            AnyProtocol::Dyn(p) => Protocol::<N>::$method(&**p, $($args),*),
        }
    };
}

impl<const N: usize> AnyProtocol<N> {
    /// Short name for reports (e.g. `"eager"`, `"lazy-vb"`, `"RetCon"`).
    #[inline]
    pub fn name(&self) -> &'static str {
        dispatch!(ref self, name())
    }

    /// Begins (or re-begins after an abort) a transaction on `core`.
    #[inline]
    pub fn tx_begin(&mut self, core: CoreId, now: u64) {
        dispatch!(self, tx_begin(core, now))
    }

    /// `true` while `core` has an active transaction.
    #[inline]
    pub fn tx_active(&self, core: CoreId) -> bool {
        dispatch!(ref self, tx_active(core))
    }

    /// Performs a load (see [`Protocol::read`]).
    #[inline]
    pub fn read(
        &mut self,
        core: CoreId,
        dst: Reg,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        now: u64,
    ) -> MemResult {
        dispatch!(self, read(core, dst, addr, addr_reg, mem, now))
    }

    /// Performs a store (see [`Protocol::write`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &mut self,
        core: CoreId,
        src: Option<Reg>,
        value: u64,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        now: u64,
    ) -> MemResult {
        dispatch!(self, write(core, src, value, addr, addr_reg, mem, now))
    }

    /// Attempts to commit `core`'s transaction.
    #[inline]
    pub fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, now: u64) -> CommitResult {
        dispatch!(self, commit(core, mem, now))
    }

    /// Returns and clears the "aborted by another core" flag.
    #[inline]
    pub fn take_aborted(&mut self, core: CoreId) -> bool {
        dispatch!(self, take_aborted(core))
    }

    /// Non-clearing preview of the flag (see
    /// [`Protocol::abort_pending`]).
    #[inline]
    pub fn abort_pending(&self, core: CoreId) -> bool {
        dispatch!(ref self, abort_pending(core))
    }

    /// Hook: `dst` was overwritten with an immediate.
    #[inline]
    pub fn on_imm(&mut self, core: CoreId, dst: Reg) {
        dispatch!(self, on_imm(core, dst))
    }

    /// Hook: register move `dst <- src`.
    #[inline]
    pub fn on_mov(&mut self, core: CoreId, dst: Reg, src: Reg) {
        dispatch!(self, on_mov(core, dst, src))
    }

    /// Hook: ALU operation; returns the concrete result.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn on_alu(
        &mut self,
        core: CoreId,
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> u64 {
        dispatch!(self, on_alu(core, op, dst, lhs, rhs, lhs_val, rhs_val))
    }

    /// Hook: branch; returns the concrete outcome.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn on_branch(
        &mut self,
        core: CoreId,
        cmp: CmpOp,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> bool {
        dispatch!(self, on_branch(core, cmp, lhs, rhs, lhs_val, rhs_val))
    }

    /// This core's protocol statistics.
    #[inline]
    pub fn stats(&self, core: CoreId) -> &ProtocolStats {
        dispatch!(ref self, stats(core))
    }

    /// Aggregate RETCON structure statistics, if collected.
    #[inline]
    pub fn retcon_stats(&self) -> Option<RetconStats> {
        dispatch!(ref self, retcon_stats())
    }

    /// Read-only stall-storm dry run (see [`Protocol::stall_storm`]).
    #[inline]
    pub fn stall_storm(
        &self,
        core: CoreId,
        action: StallAction,
        mem: &MemorySystem<N>,
    ) -> Option<StallStorm<N>> {
        dispatch!(ref self, stall_storm(core, action, mem))
    }

    /// Applies `n` fast-forwarded stall retries (see
    /// [`Protocol::apply_stall_retries`]).
    #[inline]
    pub fn apply_stall_retries(
        &mut self,
        core: CoreId,
        storm: &StallStorm<N>,
        n: u64,
        mem: &mut MemorySystem<N>,
    ) {
        dispatch!(self, apply_stall_retries(core, storm, n, mem))
    }

    /// Checks protocol-internal invariants at a quiescent point (see
    /// [`Protocol::check_quiescent`]).
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_quiescent(&self) -> Result<(), String> {
        dispatch!(ref self, check_quiescent())
    }

    /// The inner [`RetconTm`], if this is the RETCON variant (tests and
    /// diagnostics that reach for the symbolic engine).
    pub fn as_retcon(&self) -> Option<&RetconTm<N>> {
        match self {
            AnyProtocol::Retcon(p) => Some(p),
            _ => None,
        }
    }
}

/// `AnyProtocol` is itself a [`Protocol`], so code written against the
/// trait (or nesting one `AnyProtocol` inside another's `Dyn` box) keeps
/// working.
impl<const N: usize> Protocol<N> for AnyProtocol<N> {
    fn name(&self) -> &'static str {
        AnyProtocol::name(self)
    }

    fn tx_begin(&mut self, core: CoreId, now: u64) {
        AnyProtocol::tx_begin(self, core, now)
    }

    fn tx_active(&self, core: CoreId) -> bool {
        AnyProtocol::tx_active(self, core)
    }

    fn read(
        &mut self,
        core: CoreId,
        dst: Reg,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        now: u64,
    ) -> MemResult {
        AnyProtocol::read(self, core, dst, addr, addr_reg, mem, now)
    }

    fn write(
        &mut self,
        core: CoreId,
        src: Option<Reg>,
        value: u64,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        now: u64,
    ) -> MemResult {
        AnyProtocol::write(self, core, src, value, addr, addr_reg, mem, now)
    }

    fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, now: u64) -> CommitResult {
        AnyProtocol::commit(self, core, mem, now)
    }

    fn take_aborted(&mut self, core: CoreId) -> bool {
        AnyProtocol::take_aborted(self, core)
    }

    fn abort_pending(&self, core: CoreId) -> bool {
        AnyProtocol::abort_pending(self, core)
    }

    fn on_imm(&mut self, core: CoreId, dst: Reg) {
        AnyProtocol::on_imm(self, core, dst)
    }

    fn on_mov(&mut self, core: CoreId, dst: Reg, src: Reg) {
        AnyProtocol::on_mov(self, core, dst, src)
    }

    fn on_alu(
        &mut self,
        core: CoreId,
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> u64 {
        AnyProtocol::on_alu(self, core, op, dst, lhs, rhs, lhs_val, rhs_val)
    }

    fn on_branch(
        &mut self,
        core: CoreId,
        cmp: CmpOp,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> bool {
        AnyProtocol::on_branch(self, core, cmp, lhs, rhs, lhs_val, rhs_val)
    }

    fn stats(&self, core: CoreId) -> &ProtocolStats {
        AnyProtocol::stats(self, core)
    }

    fn retcon_stats(&self) -> Option<RetconStats> {
        AnyProtocol::retcon_stats(self)
    }

    fn stall_storm(
        &self,
        core: CoreId,
        action: StallAction,
        mem: &MemorySystem<N>,
    ) -> Option<StallStorm<N>> {
        AnyProtocol::stall_storm(self, core, action, mem)
    }

    fn apply_stall_retries(
        &mut self,
        core: CoreId,
        storm: &StallStorm<N>,
        n: u64,
        mem: &mut MemorySystem<N>,
    ) {
        AnyProtocol::apply_stall_retries(self, core, storm, n, mem)
    }

    fn check_quiescent(&self) -> Result<(), String> {
        AnyProtocol::check_quiescent(self)
    }
}

impl<const N: usize> From<EagerTm<N>> for AnyProtocol<N> {
    fn from(p: EagerTm<N>) -> Self {
        AnyProtocol::Eager(p)
    }
}

impl<const N: usize> From<LazyTm<N>> for AnyProtocol<N> {
    fn from(p: LazyTm<N>) -> Self {
        AnyProtocol::Lazy(p)
    }
}

impl<const N: usize> From<LazyVbTm<N>> for AnyProtocol<N> {
    fn from(p: LazyVbTm<N>) -> Self {
        AnyProtocol::LazyVb(p)
    }
}

impl<const N: usize> From<RetconTm<N>> for AnyProtocol<N> {
    fn from(p: RetconTm<N>) -> Self {
        AnyProtocol::Retcon(p)
    }
}

impl<const N: usize> From<DatmLite<N>> for AnyProtocol<N> {
    fn from(p: DatmLite<N>) -> Self {
        AnyProtocol::Datm(p)
    }
}

impl<const N: usize> From<Box<dyn Protocol<N>>> for AnyProtocol<N> {
    fn from(p: Box<dyn Protocol<N>>) -> Self {
        AnyProtocol::Dyn(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictPolicy;
    use retcon_mem::MemConfig;

    #[test]
    fn monomorphized_and_dyn_variants_agree() {
        // The same access sequence through the enum variant and through the
        // Dyn adapter must be indistinguishable.
        let run = |mut p: AnyProtocol| {
            let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
            p.tx_begin(CoreId(0), 0);
            assert!(p.tx_active(CoreId(0)));
            let r = p.write(CoreId(0), None, 7, Addr(0), None, &mut mem, 1);
            assert!(matches!(r, MemResult::Value { value: 7, .. }));
            let r = p.read(CoreId(0), Reg(1), Addr(0), None, &mut mem, 2);
            assert!(matches!(r, MemResult::Value { value: 7, .. }));
            assert!(matches!(
                p.commit(CoreId(0), &mut mem, 3),
                CommitResult::Committed { .. }
            ));
            (p.stats(CoreId(0)).clone(), mem.read_word(Addr(0)))
        };
        let direct = run(EagerTm::new(2, ConflictPolicy::OldestWins).into());
        let boxed: Box<dyn Protocol> = Box::new(EagerTm::new(2, ConflictPolicy::OldestWins));
        let adapted = run(boxed.into());
        assert_eq!(direct, adapted);
    }

    #[test]
    fn every_builtin_converts() {
        use retcon::RetconConfig;
        let all: Vec<AnyProtocol> = vec![
            EagerTm::new(2, ConflictPolicy::OldestWins).into(),
            EagerTm::new(2, ConflictPolicy::RequesterLoses).into(),
            LazyTm::new(2).into(),
            LazyVbTm::new(2).into(),
            RetconTm::new(2, RetconConfig::default()).into(),
            DatmLite::new(2).into(),
        ];
        let names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["eager", "eager-abort", "lazy", "lazy-vb", "RetCon", "datm"]
        );
        assert!(all[4].as_retcon().is_some());
        assert!(all[0].as_retcon().is_none());
    }
}
