//! Job-parallel experiment execution.
//!
//! Every simulation in this workspace is a pure, deterministic function of
//! `(workload, system, cores, seed, config)` — see `tests/determinism.rs`.
//! The runner exploits that: a [`Job`] list is fanned out across N worker
//! threads pulling from a shared cursor, and each result is written into
//! the slot of its job's *index*, so the returned record vector is
//! **bit-identical to serial execution** at any worker count (the
//! root-level determinism suite pins `--jobs 1/4/8` byte-equality).
//!
//! Execution and caching live in [`crate::engine`], which the
//! `retcon-serve` daemon shares; this module owns only the job list →
//! record list fan-out.

use crate::engine::{record_for, simulate, RunKey, SimCache};
use crate::record::RunRecord;
use retcon::RetconConfig;
use retcon_sim::SimError;
use retcon_workloads::{System, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use crate::engine::ReportCache;

/// One simulation to run: the full experiment context — a [`RunKey`]
/// plus the display-only knob labels recorded alongside the run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Workload to build.
    pub workload: Workload,
    /// System to run it under.
    pub system: System,
    /// Core count.
    pub cores: usize,
    /// Workload-build seed.
    pub seed: u64,
    /// When set, overrides the RETCON configuration (structure-size
    /// sweeps); the protocol is then a [`retcon_htm::RetconTm`] regardless
    /// of `system`'s default mapping.
    pub cfg: Option<RetconConfig>,
    /// Knob labels recorded alongside the run (e.g. `("ivb", "4")`).
    /// Deliberately NOT part of the simulation key — two sweep points
    /// whose configs coincide share one simulation.
    pub knobs: Vec<(String, String)>,
}

impl Job {
    /// A plain run of `workload` under `system`.
    pub fn new(workload: Workload, system: System, cores: usize, seed: u64) -> Job {
        Job {
            workload,
            system,
            cores,
            seed,
            cfg: None,
            knobs: Vec::new(),
        }
    }

    /// A RETCON run with an explicit configuration and its knob labels.
    pub fn with_cfg(
        workload: Workload,
        cores: usize,
        seed: u64,
        cfg: RetconConfig,
        knobs: Vec<(String, String)>,
    ) -> Job {
        Job {
            workload,
            system: System::Retcon,
            cores,
            seed,
            cfg: Some(cfg),
            knobs,
        }
    }

    /// The simulation inputs this job's report is a pure function of.
    pub fn key(&self) -> RunKey {
        RunKey {
            workload: self.workload,
            system: self.system,
            cfg: self.cfg,
            cores: self.cores,
            seed: self.seed,
        }
    }
}

fn record_from(job: &Job, report: retcon_sim::SimReport) -> RunRecord {
    let mut record = record_for(&job.key(), report);
    record.knobs = job.knobs.clone();
    record
}

fn execute_cached(job: &Job, cache: &dyn SimCache) -> Result<RunRecord, SimError> {
    let key = job.key();
    let report = match cache.lookup(&key) {
        Some(report) => report,
        None => {
            // Simulate outside any cache lock: sims run for milliseconds
            // to seconds and must not serialize the worker pool.
            let t = Instant::now();
            let report = simulate(&key)?;
            let micros = t.elapsed().as_micros() as u64;
            retcon_obs::phase::add(retcon_obs::phase::Phase::Simulate, micros);
            cache.insert(&key, &report, micros);
            report
        }
    };
    Ok(record_from(job, report))
}

/// Executes one job. Pure: same job, same record.
///
/// `seq_cycles` is left 0 — baseline wiring is a dataset-assembly concern
/// (see [`crate::datasets`]).
///
/// # Errors
///
/// Propagates [`SimError`] (cycle-limit or validation failures — both
/// indicate workload bugs, so callers treat them as fatal).
pub fn execute(job: &Job) -> Result<RunRecord, SimError> {
    Ok(record_from(job, simulate(&job.key())?))
}

/// Runs every job, fanning out across `workers` threads (`<= 1` means
/// serial), and returns the records **in job order**.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job; later results are
/// discarded.
pub fn run_jobs(jobs: &[Job], workers: usize) -> Result<Vec<RunRecord>, SimError> {
    run_jobs_cached(jobs, workers, &ReportCache::new())
}

/// [`run_jobs`] with an externally-owned [`SimCache`], so repeated
/// simulations are shared across job lists (and within one — duplicate
/// entries in `jobs` hit the memo too). The lab passes a [`ReportCache`];
/// the serving stack's warm path runs through a
/// [`ResultStore`](crate::engine::ResultStore).
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job; later results are
/// discarded.
pub fn run_jobs_cached(
    jobs: &[Job],
    workers: usize,
    cache: &dyn SimCache,
) -> Result<Vec<RunRecord>, SimError> {
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|job| execute_cached(job, cache)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunRecord, SimError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let result = execute_cached(job, cache);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    let mut records = Vec::with_capacity(jobs.len());
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(record)) => records.push(record),
            Some(Err(e)) => return Err(e),
            None => unreachable!("every job index was claimed by a worker"),
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimCache;

    fn small_jobs() -> Vec<Job> {
        vec![
            Job::new(Workload::Counter, System::Retcon, 2, 42),
            Job::new(Workload::Counter, System::Eager, 1, 42),
            Job::new(Workload::Counter, System::Datm, 2, 42),
            Job::with_cfg(
                Workload::Counter,
                2,
                42,
                RetconConfig {
                    ivb_capacity: 4,
                    ..RetconConfig::default()
                },
                vec![("ivb".to_string(), "4".to_string())],
            ),
        ]
    }

    #[test]
    fn parallel_order_matches_serial() {
        let jobs = small_jobs();
        let serial = run_jobs(&jobs, 1).unwrap();
        let parallel = run_jobs(&jobs, 4).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial[0].system, "RetCon");
        assert_eq!(serial[3].knob("ivb"), Some("4"));
    }

    #[test]
    fn execute_fills_context() {
        let record = execute(&Job::new(Workload::Counter, System::Lazy, 2, 7)).unwrap();
        assert_eq!(record.workload, "counter");
        assert_eq!(record.system, "lazy");
        assert_eq!(record.cores, 2);
        assert_eq!(record.seed, 7);
        assert_eq!(record.seq_cycles, 0);
        assert!(record.report.protocol.commits > 0);
    }

    #[test]
    fn cache_is_transparent_and_keyed_on_sim_inputs_only() {
        let cache = ReportCache::new();
        let job = Job::new(Workload::Counter, System::Retcon, 2, 42);
        let fresh = run_jobs(std::slice::from_ref(&job), 1).unwrap();
        let first = run_jobs_cached(std::slice::from_ref(&job), 1, &cache).unwrap();
        let second = run_jobs_cached(std::slice::from_ref(&job), 1, &cache).unwrap();
        assert_eq!(fresh, first);
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);

        // Same simulation inputs, different knob labels: one sim, two
        // records that differ only in their knobs.
        let mut labelled = job;
        labelled.knobs = vec![("ivb".to_string(), "16".to_string())];
        let third = run_jobs_cached(&[labelled], 1, &cache).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(third[0].report, first[0].report);
        assert_eq!(third[0].knob("ivb"), Some("16"));
    }

    #[test]
    fn result_store_serves_the_runner_byte_identically() {
        // The daemon-shaped cache drops into the same runner seam: records
        // through a ResultStore equal records through a ReportCache equal
        // uncached records.
        let jobs = small_jobs();
        let plain = run_jobs(&jobs, 1).unwrap();
        let store = crate::engine::ResultStore::new(1 << 20);
        let cold = run_jobs_cached(&jobs, 1, &store).unwrap();
        let warm = run_jobs_cached(&jobs, 4, &store).unwrap();
        assert_eq!(plain, cold);
        assert_eq!(plain, warm);
        // The explicit-default-cfg job (`ivb` knob is a *non*-default cfg)
        // missed; the three plain runs hit on the warm pass.
        assert!(store.stats().hits >= 3);
        let key = jobs[0].key();
        assert!(store.lookup(&key).is_some());
    }
}
