//! Architectural register names.

use std::fmt;

/// Number of architectural integer registers available to a program.
///
/// The simulated cores are simple in-order machines; 32 registers matches the
/// x86-64-ish configuration of the paper's simulator closely enough for
/// workload kernels, which rarely need more than a dozen live values.
pub const NUM_REGS: usize = 32;

/// An architectural register name (`r0` … `r31`).
///
/// `Reg` is a plain newtype over the register index so workload generators
/// can allocate registers with simple arithmetic. [`Reg::index`] panics if
/// the index is out of range, and [`Program::validate`] rejects programs that
/// name nonexistent registers, so invalid names are caught before execution.
///
/// [`Program::validate`]: crate::Program::validate
///
/// # Example
///
/// ```
/// use retcon_isa::{Reg, NUM_REGS};
/// let r = Reg(3);
/// assert_eq!(r.index(), 3);
/// assert!(Reg::all().count() == NUM_REGS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Returns the register index as a `usize` suitable for indexing a
    /// register file array.
    ///
    /// # Panics
    ///
    /// Panics if the register index is `>= NUM_REGS`; such registers can be
    /// constructed (the field is public) but are rejected by program
    /// validation before they reach an interpreter.
    #[inline]
    pub fn index(self) -> usize {
        assert!(
            (self.0 as usize) < NUM_REGS,
            "register r{} out of range (max r{})",
            self.0,
            NUM_REGS - 1
        );
        self.0 as usize
    }

    /// Returns `true` if this register names one of the `NUM_REGS`
    /// architectural registers.
    #[inline]
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_REGS
    }

    /// Iterates over every architectural register, `r0` through `r31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg(r.0).index(), r.0 as usize);
            assert!(r.is_valid());
        }
    }

    #[test]
    fn invalid_register_detected() {
        assert!(!Reg(NUM_REGS as u8).is_valid());
        assert!(!Reg(255).is_valid());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = Reg(NUM_REGS as u8).index();
    }

    #[test]
    fn display_formats_name() {
        assert_eq!(Reg(7).to_string(), "r7");
    }

    #[test]
    fn all_yields_unique_registers() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.0 as usize, i);
        }
    }
}
