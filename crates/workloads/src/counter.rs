//! The Figure 2 micro-benchmark: every transaction increments one shared
//! counter twice.

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::spec::{Alloc, WorkloadSpec};

/// Total increments-transactions across all cores.
const TOTAL_TXS: u64 = 2048;
/// Abstract work cycles between the two increments.
const WORK: u32 = 10;

/// Builds the counter micro-benchmark: `TOTAL_TXS` transactions split
/// across `num_cores`, each performing `load; +1; store; work; load; +1;
/// store` on the single shared counter — the exact schedule of Figure 2.
/// Total transactions the counter workload commits at `num_cores`
/// ([`TOTAL_TXS`] rounded to an even per-core split).
pub fn total_transactions(num_cores: usize) -> u64 {
    (TOTAL_TXS / num_cores as u64).max(1) * num_cores as u64
}

pub fn build(num_cores: usize, _seed: u64) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let counter = alloc.alloc_words(1);
    let iters = (TOTAL_TXS / num_cores as u64).max(1);

    let mut programs = Vec::with_capacity(num_cores);
    for _ in 0..num_cores {
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_addr = Reg(1);
        let r_val = Reg(2);

        b.imm(r_iter, iters);
        b.imm(r_addr, counter.0);
        b.jump(body);

        b.select(body);
        b.tx_begin();
        b.load(r_val, r_addr, 0);
        b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
        b.store(Operand::Reg(r_val), r_addr, 0);
        b.work(WORK);
        b.load(r_val, r_addr, 0);
        b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
        b.store(Operand::Reg(r_val), r_addr, 0);
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("counter program is well-formed"));
    }
    WorkloadSpec {
        name: "counter",
        tapes: vec![Vec::new(); num_cores],
        init: Vec::new(),
        programs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};
    use retcon_isa::Addr;

    /// The expected final counter value when every transaction commits.
    fn expected_total(num_cores: usize) -> u64 {
        total_transactions(num_cores) * 2
    }

    #[test]
    fn builds_for_any_core_count() {
        for cores in [1, 2, 7, 32] {
            let spec = build(cores, 0);
            assert_eq!(spec.num_cores(), cores);
            for p in &spec.programs {
                assert!(p.validate().is_ok());
            }
        }
    }

    #[test]
    fn all_systems_preserve_the_count() {
        for system in [System::Eager, System::Lazy, System::LazyVb, System::Retcon] {
            let spec = build(4, 0);
            let report = run_spec(&spec, system, 4).expect("runs");
            assert!(report.protocol.commits >= 2048, "{system:?}");
        }
    }

    #[test]
    fn retcon_commits_without_aborts() {
        let spec = build(4, 0);
        let report = run_spec(&spec, System::Retcon, 4).expect("runs");
        // After the predictor warms up (first conflict per core), steals
        // replace aborts almost entirely.
        assert!(
            report.protocol.aborts() < 16,
            "aborts: {}",
            report.protocol.aborts()
        );
    }

    #[test]
    fn final_value_is_preserved_under_contention() {
        let spec = build(4, 0);
        let cfg = retcon_sim::SimConfig::with_cores(4);
        let mut machine =
            retcon_sim::Machine::new(cfg, System::Eager.protocol(4), spec.programs.clone());
        machine.run().expect("runs");
        assert_eq!(machine.mem().read_word(Addr(0)), expected_total(4));
    }
}
