//! The full RETCON protocol: the symbolic engine wired into coherence.

use retcon::{Engine, Repair, RetconConfig, RetconStats, StorePath};
use retcon_isa::table::EpochSet;
use retcon_isa::{Addr, BinOp, BlockAddr, CmpOp, CoreSet, Reg};
use retcon_mem::{AccessKind, CoreId, MemorySystem, UndoLog};

use crate::cm::{decide, Age, ConflictPolicy, Decision};
use crate::protocol::Protocol;
use crate::result::{AbortCause, CommitResult, MemResult, ProtocolStats, RegUpdates};
use crate::storm::{StallAction, StallStorm, WatchList, MAX_WATCHED_BLOCKS};

#[derive(Debug)]
struct CoreState {
    active: bool,
    birth: Option<u64>,
    start_cycle: u64,
    engine: Engine,
    undo: UndoLog,
    /// Blocks accessed *plainly* (untracked) by the current transaction.
    /// Tracking decisions are sticky within a transaction: once a block has
    /// been read or written through the ordinary speculative path, its
    /// value has flowed into the transaction unconstrained, so beginning
    /// symbolic tracking later (the predictor can train mid-transaction)
    /// would let a steal invalidate that value without any constraint —
    /// an unserializable commit. Such blocks stay plain until the
    /// transaction ends.
    plain_blocks: EpochSet,
    aborted: bool,
    stats: ProtocolStats,
    rstats: RetconStats,
    /// Scratch: non-stealable conflicts handed to the contention manager
    /// (reused across resolutions so conflict handling never allocates).
    hard: Vec<(CoreId, Age)>,
    /// Scratch: untracked blocks with buffered stores, reacquired at commit.
    store_blocks: Vec<BlockAddr>,
    /// Scratch: the pre-commit repair output buffers.
    repair: Repair,
}

impl CoreState {
    fn new(cfg: RetconConfig) -> Self {
        CoreState {
            active: false,
            birth: None,
            start_cycle: 0,
            engine: Engine::new(cfg),
            undo: UndoLog::new(),
            plain_blocks: EpochSet::new(),
            aborted: false,
            stats: ProtocolStats::default(),
            rstats: RetconStats::new(),
            hard: Vec::new(),
            store_blocks: Vec::new(),
            repair: Repair::default(),
        }
    }
}

/// Outcome of RETCON conflict resolution for a pending access.
enum Resolve {
    /// All conflicts resolved (stolen or victims aborted); proceed.
    Proceed,
    /// Requester must stall.
    Stall,
    /// Requester's transaction must abort.
    AbortSelf,
}

/// The full RETCON hardware: the baseline eager HTM of §2 extended with the
/// `retcon` crate's symbolic engine.
///
/// Non-symbolic accesses behave exactly like [`EagerTm`](crate::EagerTm)
/// with the timestamp policy. The differences (§4):
///
/// * loads from predicted-conflicting blocks initiate **symbolic tracking**;
///   later loads are served from the initial value buffer or the symbolic
///   store buffer without touching coherence;
/// * a remote request that conflicts only with *symbolically tracked,
///   read-only* state **steals** the block instead of invoking contention
///   management — the victim keeps running on its recorded initial values;
/// * stores of symbolic values (and all stores to tracked blocks) are
///   buffered in the symbolic store buffer, invisible to coherence until
///   commit;
/// * commit runs the Figure 7 pre-commit process: reacquire lost blocks
///   (serially by default; in parallel under
///   [`RetconConfig::idealized`]), validate constraints, and repair
///   buffered stores and symbolic registers against final values.
///
/// # Example
///
/// A tracked counter is stolen by a remote write, yet the transaction
/// commits with a repaired value:
///
/// ```
/// use retcon::RetconConfig;
/// use retcon_htm::{RetconTm, Protocol, MemResult, CommitResult};
/// use retcon_mem::{MemorySystem, MemConfig, CoreId};
/// use retcon_isa::{Addr, Reg, BinOp};
///
/// let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
/// let mut cfg = RetconConfig::default();
/// cfg.initial_threshold = 0; // track on first touch (no warm-up)
/// let mut tm = RetconTm::new(2, cfg);
///
/// tm.tx_begin(CoreId(0), 0);
/// let v = match tm.read(CoreId(0), Reg(1), Addr(0), None, &mut mem, 1) {
///     MemResult::Value { value, .. } => value,
///     other => panic!("{other:?}"),
/// };
/// let v = tm.on_alu(CoreId(0), BinOp::Add, Reg(1), Reg(1), None, v, 1);
/// tm.write(CoreId(0), Some(Reg(1)), v, Addr(0), None, &mut mem, 2);
///
/// // A remote (non-transactional) write steals the tracked block...
/// tm.write(CoreId(1), None, 10, Addr(0), None, &mut mem, 3);
/// assert!(!tm.take_aborted(CoreId(0)), "steal, not abort");
///
/// // ...and commit repairs the increment on top of the new value.
/// assert!(matches!(tm.commit(CoreId(0), &mut mem, 4), CommitResult::Committed { .. }));
/// assert_eq!(mem.read_word(Addr(0)), 11);
/// ```
#[derive(Debug)]
pub struct RetconTm<const N: usize = 1> {
    _class: core::marker::PhantomData<[u64; N]>,
    policy: ConflictPolicy,
    cores: Vec<CoreState>,
}

impl<const N: usize> RetconTm<N> {
    /// Creates the protocol for `num_cores` cores with the given RETCON
    /// structure configuration (use `RetconConfig::default()` for the
    /// paper's Table 1 sizes).
    pub fn new(num_cores: usize, cfg: RetconConfig) -> Self {
        RetconTm {
            _class: core::marker::PhantomData,
            policy: ConflictPolicy::OldestWins,
            cores: (0..num_cores).map(|_| CoreState::new(cfg)).collect(),
        }
    }

    /// The RETCON engine of `core` (for tests and diagnostics).
    pub fn engine(&self, core: CoreId) -> &Engine {
        &self.cores[core.0].engine
    }

    /// Mutable access to `core`'s engine (e.g. to pre-train the predictor in
    /// tests).
    pub fn engine_mut(&mut self, core: CoreId) -> &mut Engine {
        &mut self.cores[core.0].engine
    }

    fn age(&self, core: CoreId) -> Option<Age> {
        let cs = &self.cores[core.0];
        if cs.active {
            Some((cs.birth.expect("active tx has a birth"), core.0))
        } else {
            None
        }
    }

    fn abort_core(
        &mut self,
        core: CoreId,
        mem: &mut MemorySystem<N>,
        cause: AbortCause,
        remote: bool,
    ) {
        let cs = &mut self.cores[core.0];
        debug_assert!(cs.active, "aborting an inactive transaction on {core}");
        cs.undo.rollback(mem.memory_mut());
        mem.clear_spec(core);
        cs.engine.reset();
        cs.plain_blocks.clear();
        cs.active = false;
        cs.aborted = remote;
        cs.stats.record_abort(cause);
    }

    /// Trains the predictor down on every block the overflowing transaction
    /// tracks. Without this, a transaction whose store footprint exceeds the
    /// symbolic store buffer would retry, re-track the same blocks and
    /// overflow again, forever — the same pathology a constraint violation
    /// causes, handled the same way (§5.1's aggressive train-down).
    fn train_down_on_overflow(&mut self, core: CoreId) {
        let blocks: Vec<_> = self.cores[core.0]
            .engine
            .precommit_blocks()
            .into_iter()
            .map(|(b, _)| b)
            .collect();
        let predictor = self.cores[core.0].engine.predictor_mut();
        for b in blocks {
            predictor.on_violation(b);
        }
    }

    /// Resolves the conflicts of a request by `core` to `addr`.
    ///
    /// Victims whose only speculative claim on the block is *symbolic
    /// read-only tracking* lose the block without aborting (the RETCON
    /// steal); remaining victims go through the §2 contention manager. Every
    /// conflict trains the predictor on both sides, which is how blocks
    /// *become* symbolic in the first place.
    fn resolve(
        &mut self,
        core: CoreId,
        addr: Addr,
        conflicts: CoreSet<N>,
        mem: &mut MemorySystem<N>,
    ) -> Resolve {
        let block = addr.block();
        // The non-stealable victims accumulate in the requester's reusable
        // scratch buffer: conflict resolution runs on every contended
        // access, so it must not allocate in steady state. `conflicts` is
        // the conflicting-core set; ascending iteration reproduces the old
        // `ConflictSet`'s ascending core order, and each victim's
        // speculative bits are fetched only when the steal test needs them.
        let mut hard = std::mem::take(&mut self.cores[core.0].hard);
        hard.clear();
        for victim_id in conflicts {
            let victim_id = CoreId(victim_id);
            // Both parties learn that this block is contended.
            self.cores[victim_id.0]
                .engine
                .predictor_mut()
                .on_conflict(block);
            self.cores[core.0].engine.predictor_mut().on_conflict(block);
            let victim = &self.cores[victim_id.0];
            let stealable = victim.active
                && victim.engine.is_tracking(block)
                && !mem.spec_bits(victim_id, block).written;
            if stealable {
                mem.invalidate_block(victim_id, block);
                self.cores[victim_id.0].engine.on_steal(block);
            } else {
                let age = self
                    .age(victim_id)
                    .expect("speculative bits imply an active tx");
                hard.push((victim_id, age));
            }
        }
        let result = if hard.is_empty() {
            Resolve::Proceed
        } else {
            match decide(self.policy, self.age(core), &hard) {
                Decision::AbortVictims => {
                    for &(v, _) in &hard {
                        self.abort_core(v, mem, AbortCause::Conflict, true);
                    }
                    Resolve::Proceed
                }
                Decision::StallRequester => {
                    self.cores[core.0].stats.stalls += 1;
                    Resolve::Stall
                }
                Decision::AbortRequester => {
                    self.abort_core(core, mem, AbortCause::Conflict, false);
                    Resolve::AbortSelf
                }
            }
        };
        self.cores[core.0].hard = hard;
        result
    }

    /// Read-only twin of [`RetconTm::resolve`]'s verdict: would a retry of
    /// a conflicting access to `block` (conflict mask `mask`) take the
    /// `StallRequester` path again with no steal? Steals mutate coherence
    /// state, so any stealable victim declines — in steady state the steals
    /// completed on the first stalled attempt and only hard victims remain.
    /// Returns the set to train predictors on per retry. Victims go on the
    /// stack: the dry run must not allocate (the scratch holds 64 victims;
    /// wider conflicts decline certification and retry step-by-step).
    fn storm_verdict(
        &self,
        core: CoreId,
        block: BlockAddr,
        mask: CoreSet<N>,
        mem: &MemorySystem<N>,
    ) -> Option<CoreSet<N>> {
        let mut hard = [(CoreId(0), (0u64, 0usize)); 64];
        let mut n = 0;
        for victim_id in mask {
            let victim_id = CoreId(victim_id);
            let victim = &self.cores[victim_id.0];
            let stealable = victim.active
                && victim.engine.is_tracking(block)
                && !mem.spec_bits(victim_id, block).written;
            if stealable {
                return None;
            }
            if n == hard.len() {
                return None;
            }
            hard[n] = (victim_id, self.age(victim_id)?);
            n += 1;
        }
        match decide(self.policy, self.age(core), &hard[..n]) {
            Decision::StallRequester => Some(mask),
            _ => None,
        }
    }

    /// The commit-storm oracle: a read-only replica of [`Protocol::commit`]'s
    /// acquisition walk, deciding whether a stalled commit's retry is a
    /// fixed point. The walk visits tracked blocks in IVB order, then
    /// untracked buffered-store blocks ascending and deduplicated (exactly
    /// [`Engine::collect_precommit_store_blocks`]'s order, replicated on the
    /// stack). Every block ahead of the stall must re-access as a plain L1
    /// hit — the steady state the first stalled attempt established — and
    /// goes into the storm's watch list; the first conflicted block must
    /// re-stall per [`RetconTm::storm_verdict`]. Anything else (a possible
    /// steal, a coherence transition, an oversized footprint, a walk that
    /// would now run to completion) declines and the commit retries
    /// step-by-step.
    fn commit_storm(&self, core: CoreId, mem: &MemorySystem<N>) -> Option<StallStorm<N>> {
        let engine = &self.cores[core.0].engine;
        let tracked = engine.ivb().len();
        let mut stores = [BlockAddr(0); MAX_WATCHED_BLOCKS];
        let mut n_stores = 0usize;
        for e in engine.ssb().iter() {
            let b = e.addr.block();
            if engine.ivb().contains(b) {
                continue;
            }
            match stores[..n_stores].binary_search_by_key(&b.0, |s| s.0) {
                Ok(_) => {}
                Err(pos) => {
                    if n_stores == MAX_WATCHED_BLOCKS {
                        return None;
                    }
                    stores.copy_within(pos..n_stores, pos + 1);
                    stores[pos] = b;
                    n_stores += 1;
                }
            }
        }
        let mut watch = WatchList::EMPTY;
        for i in 0..tracked + n_stores {
            let (block, kind): (BlockAddr, AccessKind) = if i < tracked {
                let e = engine.ivb().entry_at(i);
                (
                    e.block(),
                    if e.is_written() {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                )
            } else {
                (stores[i - tracked], AccessKind::Write)
            };
            let mask = mem.conflict_mask_of(core, block.base(), kind);
            if !mask.is_empty() {
                let train_mask = self.storm_verdict(core, block, mask, mem)?;
                return Some(StallStorm {
                    train_mask,
                    block,
                    // Every earlier iteration passed the L1-hit check, so
                    // the replayed prefix is exactly `i` hits long.
                    prefix_hits: i as u32,
                    watch,
                });
            }
            if !mem.is_l1_hit(core, block, kind) || !watch.push(block) {
                return None;
            }
        }
        None
    }
}

impl<const N: usize> Protocol<N> for RetconTm<N> {
    fn name(&self) -> &'static str {
        "RetCon"
    }

    fn tx_begin(&mut self, core: CoreId, now: u64) {
        let cs = &mut self.cores[core.0];
        debug_assert!(!cs.active);
        cs.active = true;
        cs.birth.get_or_insert(now);
        cs.start_cycle = now;
        cs.plain_blocks.clear();
        cs.engine.begin();
    }

    fn tx_active(&self, core: CoreId) -> bool {
        self.cores[core.0].active
    }

    fn read(
        &mut self,
        core: CoreId,
        dst: Reg,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let active = self.cores[core.0].active;
        if active {
            let cs = &mut self.cores[core.0];
            if let Some(r) = addr_reg {
                cs.engine.concretize_addr_reg(r);
            }
            // Figure 6: symbolic store buffer, then initial value buffer,
            // then memory — classified and completed in one fused pass.
            if let Some(value) = cs.engine.transactional_load(dst, addr) {
                return MemResult::Value { value, latency: 1 };
            }
        }
        let latency = match mem.plan_if_clean(core, addr, AccessKind::Read) {
            Ok(plan) => mem.access_planned(&plan, active),
            Err(conflicts) => {
                match self.resolve(core, addr, conflicts, mem) {
                    Resolve::Proceed => {}
                    Resolve::Stall => return MemResult::Stall,
                    Resolve::AbortSelf => return MemResult::Abort,
                }
                // Resolution (steal/abort) may have changed coherence
                // state: classify now.
                mem.access(core, addr, AccessKind::Read, active)
            }
        };
        let value = mem.read_word(addr);
        if active {
            let block = addr.block();
            let cs = &mut self.cores[core.0];
            // `insert` doubles as the membership test (one hash lookup, not
            // two) and the predictor is only consulted for blocks not
            // already accessed plainly this transaction.
            if cs.plain_blocks.insert(block.0) && cs.engine.wants_tracking(addr) {
                cs.plain_blocks.remove(block.0);
                let memory = &*mem;
                let ok = cs.engine.begin_tracking(block, |w| memory.read_word(w));
                debug_assert!(ok, "wants_tracking implies room");
                let v = cs.engine.finish_tracked_load(dst, addr);
                debug_assert_eq!(v, value);
                // The block just became symbolically tracked — a conflict
                // verdict input (tracked blocks are stealable).
                mem.bump_block_version(block);
            } else {
                cs.engine.finish_memory_load(dst, value);
            }
        }
        MemResult::Value { value, latency }
    }

    fn write(
        &mut self,
        core: CoreId,
        src: Option<Reg>,
        value: u64,
        addr: Addr,
        addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let active = self.cores[core.0].active;
        if active {
            if let Some(r) = addr_reg {
                self.cores[core.0].engine.concretize_addr_reg(r);
            }
            match self.cores[core.0].engine.on_store(addr, src, value) {
                StorePath::Buffered => return MemResult::Value { value, latency: 1 },
                StorePath::Overflow => {
                    self.train_down_on_overflow(core);
                    self.abort_core(core, mem, AbortCause::Overflow, false);
                    return MemResult::Abort;
                }
                StorePath::Normal => {}
            }
        }
        let clean_plan = match mem.plan_if_clean(core, addr, AccessKind::Write) {
            Ok(plan) => Some(plan),
            Err(conflicts) => {
                match self.resolve(core, addr, conflicts, mem) {
                    Resolve::Proceed => {}
                    Resolve::Stall => return MemResult::Stall,
                    Resolve::AbortSelf => return MemResult::Abort,
                }
                None
            }
        };
        if active {
            let block = addr.block();
            let cs = &mut self.cores[core.0];
            // Store-initiated tracking: a *blind* write (the block was never
            // accessed plainly by this transaction) to a block the predictor
            // has learned is conflict-prone begins tracking too, so the
            // store is buffered and reapplied at commit (this is how RETCON
            // "implicitly provides selective lazy conflict detection",
            // §5.1). Conflicts were resolved above, so memory holds no other
            // core's uncommitted data for this block. As on the read path,
            // `insert` doubles as the membership test and gates the
            // predictor lookup.
            if cs.plain_blocks.insert(block.0) && cs.engine.wants_tracking(addr) {
                cs.plain_blocks.remove(block.0);
                let memory = &*mem;
                let ok = cs.engine.begin_tracking(block, |w| memory.read_word(w));
                debug_assert!(ok, "wants_tracking implies room");
                // Tracked blocks are stealable: a conflict verdict input.
                mem.bump_block_version(block);
                match cs.engine.on_store(addr, src, value) {
                    StorePath::Buffered => return MemResult::Value { value, latency: 1 },
                    StorePath::Overflow => {
                        self.train_down_on_overflow(core);
                        self.abort_core(core, mem, AbortCause::Overflow, false);
                        return MemResult::Abort;
                    }
                    StorePath::Normal => unreachable!("stores to tracked blocks buffer"),
                }
            }
            let cs = &mut self.cores[core.0];
            cs.undo.record(mem.memory(), addr);
        }
        let latency = match clean_plan {
            Some(plan) => mem.access_planned(&plan, active),
            // Resolution may have changed coherence state: classify now.
            None => mem.access(core, addr, AccessKind::Write, active),
        };
        mem.write_word(addr, value);
        MemResult::Value { value, latency }
    }

    fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, now: u64) -> CommitResult {
        debug_assert!(self.cores[core.0].active);
        let cfg = *self.cores[core.0].engine.config();
        let mut serial_latency = 0u64;
        let mut parallel_latency = 0u64;

        // Figure 7, step 1 (acquisition): reacquire every tracked block —
        // with write permission when commit-time stores target it (§4.4) —
        // and acquire write permission for buffered stores to untracked
        // blocks. Conflicts go through the normal contention manager; a
        // stall reschedules the entire commit (partial acquisitions are
        // harmless — the blocks are simply cached).
        //
        // Tracked blocks are visited by index straight out of the IVB (it
        // cannot change mid-loop: resolution only ever mutates *other*
        // cores unless it aborts us, and then we return immediately);
        // untracked store blocks come from the reusable scratch buffer.
        // Same visit order as the old collect-then-iterate, no per-commit
        // allocation.
        let tracked = self.cores[core.0].engine.ivb().len();
        let mut store_blocks = std::mem::take(&mut self.cores[core.0].store_blocks);
        self.cores[core.0]
            .engine
            .collect_precommit_store_blocks(&mut store_blocks);
        for i in 0..tracked + store_blocks.len() {
            let (block, kind): (BlockAddr, AccessKind) = if i < tracked {
                let e = self.cores[core.0].engine.ivb().entry_at(i);
                (
                    e.block(),
                    if e.is_written() {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                )
            } else {
                (store_blocks[i - tracked], AccessKind::Write)
            };
            let addr = block.base();
            let conflicts = mem.conflict_mask_of(core, addr, kind);
            if !conflicts.is_empty() {
                let resolved = self.resolve(core, addr, conflicts, mem);
                if !matches!(resolved, Resolve::Proceed) {
                    self.cores[core.0].store_blocks = store_blocks;
                    return match resolved {
                        Resolve::Stall => CommitResult::Stall,
                        _ => CommitResult::Abort,
                    };
                }
            }
            let l = mem.access(core, addr, kind, true);
            serial_latency += l;
            parallel_latency = parallel_latency.max(l);
        }
        self.cores[core.0].store_blocks = store_blocks;
        let mut latency = if cfg.parallel_reacquire {
            parallel_latency
        } else {
            serial_latency
        };

        // Figure 7, steps 1 (validation) and 2 (repair), into the reusable
        // repair buffers.
        let mut repair = std::mem::take(&mut self.cores[core.0].repair);
        let cs = &mut self.cores[core.0];
        let validated = {
            // Split borrows: the engine reads final values from memory.
            let memory = &*mem;
            cs.engine
                .validate_and_repair_into(|w| memory.read_word(w), &mut repair)
        };
        match validated {
            Err(v) => {
                cs.engine.predictor_mut().on_violation(v.block);
                cs.rstats.record_violation();
                self.cores[core.0].repair = repair;
                self.abort_core(core, mem, AbortCause::Validation, false);
                CommitResult::Abort
            }
            Ok(()) => {
                for &(addr, value) in &repair.stores {
                    debug_assert!(
                        !mem.has_conflicts(core, addr, AccessKind::Write),
                        "store blocks were acquired above"
                    );
                    let l = mem.access(core, addr, AccessKind::Write, false);
                    if !cfg.free_commit_stores {
                        latency += l;
                    }
                    mem.write_word(addr, value);
                }
                let mut reg_updates = RegUpdates::EMPTY;
                for &(r, v) in &repair.registers {
                    reg_updates.push(r, v);
                }
                let cs = &mut self.cores[core.0];
                let mut snap = cs.engine.snapshot();
                snap.commit_cycles = latency;
                let lifetime = now.saturating_sub(cs.start_cycle) + latency;
                cs.rstats.record_commit(snap, lifetime.max(1));
                cs.undo.clear();
                cs.engine.reset();
                cs.plain_blocks.clear();
                cs.active = false;
                cs.birth = None;
                cs.stats.commits += 1;
                cs.repair = repair;
                mem.clear_spec(core);
                CommitResult::Committed {
                    latency,
                    reg_updates,
                }
            }
        }
    }

    fn take_aborted(&mut self, core: CoreId) -> bool {
        std::mem::take(&mut self.cores[core.0].aborted)
    }

    fn abort_pending(&self, core: CoreId) -> bool {
        self.cores[core.0].aborted
    }

    fn on_imm(&mut self, core: CoreId, dst: Reg) {
        self.cores[core.0].engine.on_imm(dst);
    }

    fn on_mov(&mut self, core: CoreId, dst: Reg, src: Reg) {
        self.cores[core.0].engine.on_mov(dst, src);
    }

    fn on_alu(
        &mut self,
        core: CoreId,
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> u64 {
        self.cores[core.0]
            .engine
            .on_alu(op, dst, lhs, rhs, lhs_val, rhs_val)
    }

    fn on_branch(
        &mut self,
        core: CoreId,
        cmp: CmpOp,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> bool {
        self.cores[core.0]
            .engine
            .on_branch(cmp, lhs, rhs, lhs_val, rhs_val)
    }

    fn stats(&self, core: CoreId) -> &ProtocolStats {
        &self.cores[core.0].stats
    }

    fn stall_storm(
        &self,
        core: CoreId,
        action: StallAction,
        mem: &MemorySystem<N>,
    ) -> Option<StallStorm<N>> {
        // An access retry is a fixed point exactly when `resolve` would
        // take the StallRequester path again with no steal
        // ([`RetconTm::storm_verdict`]); every retry trains both predictors
        // per conflicting core, which the storm's `train_mask` carries. A
        // commit retry additionally re-walks its conflict-free acquisition
        // prefix, which [`RetconTm::commit_storm`] proves is a pure L1-hit
        // replay before admitting the storm.
        let (addr, kind) = match action {
            StallAction::Read(a) => (a, AccessKind::Read),
            StallAction::Write(a) => (a, AccessKind::Write),
            StallAction::Commit => return self.commit_storm(core, mem),
        };
        let mask = mem.conflict_mask_of(core, addr, kind);
        if mask.is_empty() {
            return None;
        }
        let train_mask = self.storm_verdict(core, addr.block(), mask, mem)?;
        Some(StallStorm::access(train_mask, addr.block()))
    }

    fn apply_stall_retries(
        &mut self,
        core: CoreId,
        storm: &StallStorm<N>,
        n: u64,
        mem: &mut MemorySystem<N>,
    ) {
        // n repetitions of the stalled outcome: per conflicting core, one
        // conflict observation for the victim and one for the requester
        // (saturating counters commute, so the bulk update is exact), the
        // requester's stall count, and — for commit storms — the prefix
        // walk's L1-hit statistics.
        let n32 = u32::try_from(n).unwrap_or(u32::MAX);
        for victim_id in storm.train_mask {
            self.cores[victim_id]
                .engine
                .predictor_mut()
                .on_conflicts(storm.block, n32);
            self.cores[core.0]
                .engine
                .predictor_mut()
                .on_conflicts(storm.block, n32);
        }
        self.cores[core.0].stats.stalls += n;
        if storm.prefix_hits != 0 {
            mem.replay_l1_hits(core, n.saturating_mul(u64::from(storm.prefix_hits)));
        }
    }

    fn retcon_stats(&self) -> Option<RetconStats> {
        let mut agg = RetconStats::new();
        for cs in &self.cores {
            agg.merge(&cs.rstats);
        }
        Some(agg)
    }

    /// Repair-chain consistency: every commit/abort must collapse the
    /// symbolic state — IVB and SSB drained, no register still carrying a
    /// symbolic tag (a dangling tag would let a stale repair chain leak
    /// into the next transaction).
    fn check_quiescent(&self) -> Result<(), String> {
        for (i, cs) in self.cores.iter().enumerate() {
            if cs.active {
                return Err(format!("RetCon: core {i} still has an active transaction"));
            }
            if cs.birth.is_some() {
                return Err(format!("RetCon: core {i} kept a transaction birth stamp"));
            }
            if !cs.undo.is_empty() {
                return Err(format!(
                    "RetCon: core {i} undo log holds {} entries at quiescence",
                    cs.undo.len()
                ));
            }
            if cs.aborted {
                return Err(format!("RetCon: core {i} has an undelivered abort flag"));
            }
            if cs.engine.in_tx() {
                return Err(format!("RetCon: core {i} engine still in a transaction"));
            }
            if !cs.engine.ivb().is_empty() {
                return Err(format!(
                    "RetCon: core {i} IVB tracks {} blocks at quiescence",
                    cs.engine.ivb().len()
                ));
            }
            if !cs.engine.ssb().is_empty() {
                return Err(format!(
                    "RetCon: core {i} SSB buffers {} stores at quiescence",
                    cs.engine.ssb().len()
                ));
            }
            for r in retcon_isa::Reg::all() {
                if cs.engine.symbolic_value(r).is_some() {
                    return Err(format!(
                        "RetCon: core {i} register {r:?} still carries a symbolic tag"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_mem::MemConfig;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const A: Addr = Addr(0);

    fn setup() -> (MemorySystem, RetconTm) {
        let cfg = RetconConfig {
            initial_threshold: 0, // track everything (simplifies tests)
            ..RetconConfig::default()
        };
        (
            MemorySystem::new(MemConfig::default(), 2),
            RetconTm::new(2, cfg),
        )
    }

    fn value(r: MemResult) -> u64 {
        match r {
            MemResult::Value { value, .. } => value,
            other => panic!("expected value, got {other:?}"),
        }
    }

    /// Drive one "load; add k; store" increment through the protocol.
    fn increment(tm: &mut RetconTm, mem: &mut MemorySystem, core: CoreId, addr: Addr, k: u64) {
        let v = value(tm.read(core, Reg(1), addr, None, mem, 0));
        let nv = tm.on_alu(core, BinOp::Add, Reg(1), Reg(1), None, v, k);
        assert_eq!(nv, v.wrapping_add(k));
        let r = tm.write(core, Some(Reg(1)), nv, addr, None, mem, 0);
        assert!(matches!(r, MemResult::Value { .. }));
    }

    #[test]
    fn figure2a_schedule_both_commit() {
        // Figure 2(a): P0 and P1 each increment the counter twice,
        // concurrently. RETCON repairs; both commit; the counter ends at 4.
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        increment(&mut tm, &mut mem, C0, A, 1);
        increment(&mut tm, &mut mem, C0, A, 1);
        increment(&mut tm, &mut mem, C1, A, 1);
        increment(&mut tm, &mut mem, C1, A, 1);
        let r0 = tm.commit(C0, &mut mem, 10);
        assert!(matches!(r0, CommitResult::Committed { .. }), "{r0:?}");
        let r1 = tm.commit(C1, &mut mem, 11);
        assert!(matches!(r1, CommitResult::Committed { .. }), "{r1:?}");
        assert_eq!(mem.read_word(A), 4);
        assert_eq!(tm.stats(C0).commits, 1);
        assert_eq!(tm.stats(C1).commits, 1);
        assert_eq!(tm.stats(C0).aborts() + tm.stats(C1).aborts(), 0);
        let rs = tm.retcon_stats().unwrap();
        assert_eq!(rs.transactions, 2);
    }

    #[test]
    fn steal_lets_victim_continue() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        // C0 tracks A symbolically.
        let v = value(tm.read(C0, Reg(1), A, None, &mut mem, 1));
        assert_eq!(v, 0);
        assert!(tm.engine(C0).is_tracking(A.block()));
        // A non-tx write by C1 steals the block instead of aborting C0.
        let _ = tm.write(C1, None, 42, A, None, &mut mem, 2);
        assert!(!tm.take_aborted(C0));
        assert!(tm.tx_active(C0));
        // C0's later read still sees the initial value (0).
        assert_eq!(value(tm.read(C0, Reg(2), A, None, &mut mem, 3)), 0);
        // And C0 commits fine (no constraints were generated).
        assert!(matches!(
            tm.commit(C0, &mut mem, 4),
            CommitResult::Committed { .. }
        ));
        let rs = tm.retcon_stats().unwrap();
        assert_eq!(rs.sum.blocks_lost, 1);
    }

    #[test]
    fn violated_constraint_aborts_and_trains_down() {
        let (mut mem, mut tm) = setup();
        mem.write_word(A, 5);
        tm.tx_begin(C0, 0);
        let v = value(tm.read(C0, Reg(1), A, None, &mut mem, 1));
        // Branch: r1 < 10 (taken) -> constraint A < 10.
        assert!(tm.on_branch(C0, CmpOp::Lt, Reg(1), None, v, 10));
        // Remote write pushes A to 50 (stealing the block).
        let _ = tm.write(C1, None, 50, A, None, &mut mem, 2);
        // Commit: constraint 50 < 10 fails -> abort + train-down.
        assert_eq!(tm.commit(C0, &mut mem, 3), CommitResult::Abort);
        assert_eq!(tm.stats(C0).aborts_validation, 1);
        assert!(!tm.engine(C0).predictor().should_track(A.block()));
        assert_eq!(tm.retcon_stats().unwrap().violations, 1);
    }

    #[test]
    fn repair_applies_register_updates() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        let v = value(tm.read(C0, Reg(1), A, None, &mut mem, 1));
        let nv = tm.on_alu(C0, BinOp::Add, Reg(1), Reg(1), None, v, 3);
        assert_eq!(nv, 3);
        // Remote +10 steals the block.
        let _ = tm.write(C1, None, 10, A, None, &mut mem, 2);
        match tm.commit(C0, &mut mem, 3) {
            CommitResult::Committed { reg_updates, .. } => {
                assert_eq!(reg_updates.as_slice(), &[(Reg(1), 13)]);
            }
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn written_blocks_are_not_stealable() {
        let (mut mem, tm) = setup();
        // Disable tracking so C0's write is a normal speculative write.
        let cfg = RetconConfig {
            initial_threshold: u32::MAX,
            ..RetconConfig::default()
        };
        let mut tm2 = RetconTm::new(2, cfg);
        tm2.tx_begin(C0, 0);
        let _ = tm2.write(C0, None, 7, A, None, &mut mem, 1);
        // Younger C1 writing the same block must stall (oldest wins), not
        // steal.
        tm2.tx_begin(C1, 5);
        assert_eq!(
            tm2.write(C1, None, 9, A, None, &mut mem, 6),
            MemResult::Stall
        );
        let _ = tm; // silence unused
    }

    #[test]
    fn untracked_behaves_like_eager() {
        let cfg = RetconConfig {
            initial_threshold: u32::MAX, // never track
            ..RetconConfig::default()
        };
        let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
        let mut tm = RetconTm::new(2, cfg);
        tm.tx_begin(C0, 0);
        let _ = tm.write(C0, None, 5, A, None, &mut mem, 1);
        // Non-tx reader aborts the younger... no: non-tx always wins.
        let v = value(tm.read(C1, Reg(0), A, None, &mut mem, 2));
        assert_eq!(v, 0, "speculative value rolled back");
        assert!(tm.take_aborted(C0));
    }

    #[test]
    fn ssb_overflow_aborts() {
        let cfg = RetconConfig {
            initial_threshold: 0,
            ssb_capacity: 1,
            ..RetconConfig::default()
        };
        let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
        let mut tm = RetconTm::new(2, cfg);
        tm.tx_begin(C0, 0);
        // Track block of A; two buffered stores to different words overflow.
        let _ = tm.read(C0, Reg(1), A, None, &mut mem, 1);
        assert!(matches!(
            tm.write(C0, None, 1, Addr(1), None, &mut mem, 2),
            MemResult::Value { .. }
        ));
        assert_eq!(
            tm.write(C0, None, 2, Addr(2), None, &mut mem, 3),
            MemResult::Abort
        );
        assert_eq!(tm.stats(C0).aborts_overflow, 1);
    }

    #[test]
    fn predictor_learns_from_conflicts() {
        // With the real threshold (1 conflict), the first conflict aborts,
        // and the retry tracks the block symbolically.
        let cfg = RetconConfig {
            initial_threshold: 1,
            ..RetconConfig::default()
        };
        let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
        let mut tm = RetconTm::new(2, cfg);

        tm.tx_begin(C1, 0);
        let _ = tm.read(C1, Reg(1), A, None, &mut mem, 1);
        assert!(!tm.engine(C1).is_tracking(A.block()), "not yet learned");
        // Non-tx write by C0: C1 is not tracking, so it aborts — and both
        // predictors observe the conflict.
        let _ = tm.write(C0, None, 5, A, None, &mut mem, 2);
        assert!(tm.take_aborted(C1));
        // Retry: now the block is predicted conflicting and gets tracked.
        tm.tx_begin(C1, 3);
        let _ = tm.read(C1, Reg(1), A, None, &mut mem, 4);
        assert!(tm.engine(C1).is_tracking(A.block()));
        // This time the same remote write steals instead of aborting.
        let _ = tm.write(C0, None, 9, A, None, &mut mem, 5);
        assert!(!tm.take_aborted(C1));
        assert!(matches!(
            tm.commit(C1, &mut mem, 6),
            CommitResult::Committed { .. }
        ));
    }

    #[test]
    fn serializability_of_counter_increments() {
        // N interleaved increments from both cores: final value must equal
        // the total number of committed increments.
        let (mut mem, mut tm) = setup();
        let mut committed = 0u64;
        for round in 0..10u64 {
            tm.tx_begin(C0, round * 100);
            tm.tx_begin(C1, round * 100 + 1);
            increment(&mut tm, &mut mem, C0, A, 1);
            increment(&mut tm, &mut mem, C1, A, 1);
            if matches!(
                tm.commit(C0, &mut mem, round * 100 + 50),
                CommitResult::Committed { .. }
            ) {
                committed += 1;
            }
            if matches!(
                tm.commit(C1, &mut mem, round * 100 + 51),
                CommitResult::Committed { .. }
            ) {
                committed += 1;
            }
            // Clear any aborted flags for the next round.
            let _ = tm.take_aborted(C0);
            let _ = tm.take_aborted(C1);
        }
        assert_eq!(mem.read_word(A), committed);
        assert_eq!(committed, 20, "RETCON repairs every increment");
    }
}
