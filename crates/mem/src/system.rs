//! The memory-system façade: caches + directory + latency + speculative bits.

use std::fmt;

use retcon_isa::{Addr, BlockAddr, CoreSet};

use crate::cache::{CacheArray, SpecBits};
use crate::config::MemConfig;
use crate::directory::Directory;
use crate::memory::GlobalMemory;
use crate::stats::MemStats;
use retcon_isa::table::BlockTable;

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The two kinds of memory access, as seen by coherence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Requires a readable copy.
    Read,
    /// Requires an exclusive copy.
    Write,
}

/// A conflict detected by snooping another core's speculative bits (§2: "a
/// conflict is defined as an external write request to a block that has been
/// speculatively read or any external request to a speculatively-written
/// block").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The core whose speculative state conflicts with the request.
    pub core: CoreId,
    /// That core's speculative bits on the requested block.
    pub bits: SpecBits,
}

const INLINE_CONFLICTS: usize = 4;

/// The conflicts of one access, stored inline for the common cases (zero or
/// a handful of conflicting cores) and spilling to the heap only for wide
/// fan-outs. The conflict-free hot path allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct ConflictSet {
    len: usize,
    inline: [Option<Conflict>; INLINE_CONFLICTS],
    spill: Vec<Conflict>,
}

impl ConflictSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, c: Conflict) {
        if self.spill.is_empty() && self.len < INLINE_CONFLICTS {
            self.inline[self.len] = Some(c);
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill
                    .extend(self.inline[..self.len].iter().map(|o| o.expect("filled")));
                self.len = 0;
            }
            self.spill.push(c);
        }
    }

    /// Number of conflicts.
    pub fn len(&self) -> usize {
        self.len + self.spill.len()
    }

    /// `true` if the access conflicts with no core.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the conflicts in ascending core order.
    pub fn iter(&self) -> impl Iterator<Item = &Conflict> {
        self.inline[..self.len]
            .iter()
            .filter_map(|o| o.as_ref())
            .chain(self.spill.iter())
    }

    /// The conflicts as a `Vec` (diagnostics and the [`Probe`] view).
    pub fn to_vec(&self) -> Vec<Conflict> {
        self.iter().copied().collect()
    }
}

/// Result of [`MemorySystem::probe`]: what an access *would* cost and whom it
/// would conflict with, without changing any state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// Cycles the access will take.
    pub latency: u64,
    /// Cores with conflicting speculative permissions on the block.
    pub conflicts: Vec<Conflict>,
}

/// Where an access was serviced (used for latency and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    L1Hit,
    L1Upgrade,
    L2Hit,
    L2HitUpgrade,
    Miss { forwarded: bool },
}

/// The allocation-free probe result handed back to
/// [`MemorySystem::access_planned`]: the cache classification (and the
/// latency derived from it) computed once at probe time, plus the conflict
/// set. Valid only while the memory system is untouched — resolving a
/// conflict (abort, steal, invalidate) can change the classification, so
/// after resolution protocols must fall back to [`MemorySystem::access`],
/// which re-classifies.
#[derive(Debug, Clone)]
pub struct AccessPlan {
    /// Cycles the access will take (if performed before any state change).
    pub latency: u64,
    /// Cores with conflicting speculative permissions on the block.
    pub conflicts: ConflictSet,
    core: CoreId,
    addr: Addr,
    kind: AccessKind,
    service: Service,
}

impl AccessPlan {
    /// `true` if the planned access conflicts with at least one core.
    pub fn has_conflicts(&self) -> bool {
        !self.conflicts.is_empty()
    }
}

/// Core sets holding speculative permissions on one block: the
/// directory-side sharer/speculative summary that makes conflict detection
/// O(1) instead of an O(num_cores) cache snoop. Sized per machine size
/// class (`N = 1` keeps the historical two-`u64` layout).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpecMask<const N: usize> {
    /// Core `i` present: core `i` holds a speculative-read bit on the block.
    readers: CoreSet<N>,
    /// Core `i` present: core `i` holds a speculative-written bit on the
    /// block.
    writers: CoreSet<N>,
}

impl<const N: usize> SpecMask<N> {
    #[inline]
    fn is_empty(self) -> bool {
        self.readers.is_empty() && self.writers.is_empty()
    }
}

/// One core's authoritative speculative bits: a dense-first per-block table
/// plus the list of blocks touched since the last
/// [`clear_spec`](MemorySystem::clear_spec), so commit/abort clears walk
/// only what the transaction marked (the table itself is never scanned).
/// The list may hold a duplicate when a block was stolen mid-transaction
/// and re-marked; cleared entries read back as `NONE` and are skipped.
#[derive(Debug, Clone, Default)]
struct SpecTable {
    bits: BlockTable<SpecBits>,
    touched: Vec<u64>,
}

/// The complete simulated memory system: architectural memory, per-core
/// L1/L2 tag arrays, a directory, per-core permissions-only overflow caches,
/// and latency/statistics accounting.
///
/// # Protocol contract
///
/// Concurrency-control protocols drive the system with a two-phase pattern:
///
/// 1. [`plan`](Self::plan) (or the allocating [`probe`](Self::probe) view) —
///    returns the latency, the cache classification and any conflicting
///    cores without changing state;
/// 2. the protocol resolves each conflict (abort the victim and clear its
///    speculative bits via [`clear_spec`](Self::clear_spec), steal the block
///    via [`invalidate_block`](Self::invalidate_block), or stall the
///    requester);
/// 3. [`access_planned`](Self::access_planned) — on the conflict-free fast
///    path, performs the coherence transitions, cache fills/evictions and
///    speculative-bit updates using the classification already computed in
///    step 1; after a conflict *resolution* (which may change coherence
///    state), [`access`](Self::access) re-classifies instead.
///
/// Calling `access` while another core still holds conflicting speculative
/// bits is a protocol bug; debug builds panic on it.
///
/// # Speculative-permission bookkeeping
///
/// Speculative read/written bits are kept three ways, each serving one
/// consumer at O(1):
///
/// * per-core **union maps** (`spec`) — the authoritative bits per block,
///   covering both cache-resident and overflowed ("permissions-only cache")
///   state; this is what [`spec_bits`](Self::spec_bits) reads;
/// * a global **per-block mask** (`masks`) — reader/writer core bitmasks
///   consulted by conflict detection, replacing the per-core snoop loop;
/// * **cache-line bits** — kept solely so LRU victim selection can prefer
///   non-speculative lines; eviction migrates nothing (the union map already
///   has the bits) and only counts a `spec_overflows` statistic.
#[derive(Debug, Clone)]
pub struct MemorySystem<const N: usize = 1> {
    mem: GlobalMemory,
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    dir: Directory<N>,
    /// Per-core authoritative speculative bits (cache + permissions-only
    /// overflow united), keyed by block.
    spec: Vec<SpecTable>,
    /// Per-block reader/writer core masks (union of `spec` across cores).
    masks: BlockTable<SpecMask<N>>,
    /// Per-block *conflict version*: a monotonic counter bumped whenever
    /// something that a conflict-resolution verdict on the block could
    /// depend on changes — the block's mask ([`mark_spec`](Self::mark_spec)
    /// growth, [`clear_spec`](Self::clear_spec) /
    /// [`invalidate_block`](Self::invalidate_block) removal, and with it
    /// every per-core [`SpecBits`] transition, since bits and masks mutate
    /// in lockstep) — plus protocol-side events reported through
    /// [`bump_block_version`](Self::bump_block_version) (RETCON beginning
    /// symbolic tracking of the block; DATM dependence-graph changes).
    /// Monotonicity is the point: a cached verdict stamped with the version
    /// it was derived at stays provably valid exactly while the version
    /// stands still, and can never be revalidated by accident after the
    /// block's entry is cleared and repopulated. The simulator's stall
    /// fast-forward is the consumer.
    versions: BlockTable<u64>,
    /// Count of conflict-version bumps ever applied (any block): a global
    /// change detector over `versions`. A reader holding a sum of block
    /// versions knows the sum is unchanged while this epoch is unchanged —
    /// the O(1) fast path the simulator's stall fast-forward takes before
    /// re-walking a certificate's watched blocks.
    bump_epoch: u64,
    cfg: MemConfig,
    stats: Vec<MemStats>,
}

impl<const N: usize> MemorySystem<N> {
    /// Creates a memory system for `num_cores` cores.
    pub fn new(cfg: MemConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(
            num_cores <= CoreSet::<N>::CAPACITY,
            "this size class supports at most {} cores (got {num_cores}); \
             use a wider CoreSet size class",
            CoreSet::<N>::CAPACITY
        );
        MemorySystem {
            mem: GlobalMemory::new(),
            l1: (0..num_cores).map(|_| CacheArray::new(cfg.l1)).collect(),
            l2: (0..num_cores).map(|_| CacheArray::new(cfg.l2)).collect(),
            dir: Directory::new(),
            spec: (0..num_cores).map(|_| SpecTable::default()).collect(),
            masks: BlockTable::new(),
            versions: BlockTable::new(),
            bump_epoch: 0,
            cfg,
            stats: vec![MemStats::default(); num_cores],
        }
    }

    /// Number of cores sharing this memory system.
    pub fn num_cores(&self) -> usize {
        self.l1.len()
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Reads the architectural value of a word (no timing, no coherence).
    #[inline]
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.mem.read(addr)
    }

    /// Writes the architectural value of a word (no timing, no coherence).
    /// Used for workload initialization, undo-log rollback and commit-time
    /// repair, whose coherence actions are modelled separately.
    #[inline]
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.mem.write(addr, value);
    }

    /// Direct access to the architectural memory (for integration tests and
    /// version-management helpers).
    pub fn memory(&self) -> &GlobalMemory {
        &self.mem
    }

    /// Mutable access to the architectural memory.
    pub fn memory_mut(&mut self) -> &mut GlobalMemory {
        &mut self.mem
    }

    fn classify(&self, core: CoreId, block: BlockAddr, kind: AccessKind) -> Service {
        let needs_exclusive = kind == AccessKind::Write;
        if self.l1[core.0].contains(block) {
            if needs_exclusive && !self.dir.holds_modified(core, block) {
                Service::L1Upgrade
            } else {
                Service::L1Hit
            }
        } else if self.l2[core.0].contains(block) {
            if needs_exclusive && !self.dir.holds_modified(core, block) {
                Service::L2HitUpgrade
            } else {
                Service::L2Hit
            }
        } else {
            Service::Miss {
                forwarded: self.dir.forwarded_from_owner(core, block),
            }
        }
    }

    fn latency_of(&self, service: Service) -> u64 {
        let lat = &self.cfg.latency;
        match service {
            Service::L1Hit => lat.l1_hit,
            Service::L1Upgrade => lat.l1_hit + lat.upgrade(),
            Service::L2Hit => lat.l2_hit,
            Service::L2HitUpgrade => lat.l2_hit + lat.upgrade(),
            Service::Miss { forwarded } => lat.l2_miss(forwarded),
        }
    }

    /// The speculative bits `core` holds on `block`, whether resident in its
    /// L1 or overflowed into its permissions-only cache.
    #[inline]
    pub fn spec_bits(&self, core: CoreId, block: BlockAddr) -> SpecBits {
        self.spec[core.0].bits.get(block.0)
    }

    /// Computes the latency, classification and conflict set of an access
    /// without performing it — the allocation-free probe. Hand the plan to
    /// [`access_planned`](Self::access_planned) when it is conflict-free.
    pub fn plan(&self, core: CoreId, addr: Addr, kind: AccessKind) -> AccessPlan {
        let block = addr.block();
        let service = self.classify(core, block, kind);
        AccessPlan {
            latency: self.latency_of(service),
            conflicts: self.conflict_set(core, addr, kind),
            core,
            addr,
            kind,
            service,
        }
    }

    /// [`plan`](Self::plan) with the conflict check hoisted first:
    /// classification (the cache/directory walk) is skipped entirely when
    /// the access conflicts, because its result would be discarded — after
    /// conflict *resolution* protocols must re-classify via
    /// [`access`](Self::access) anyway. Stall-retry loops call this once
    /// per retry, so the skipped walk — and the conflict representation
    /// being a bare [`CoreSet`] rather than a materialized
    /// [`ConflictSet`] — is the dominant saving on contended runs.
    ///
    /// # Errors
    ///
    /// Returns the non-empty conflicting-core set when the access
    /// conflicts (ascending iteration reproduces [`ConflictSet`]'s
    /// ascending core order; per-victim [`spec_bits`](Self::spec_bits) are
    /// fetched on demand by the protocols that need them).
    #[inline]
    pub fn plan_if_clean(
        &self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
    ) -> Result<AccessPlan, CoreSet<N>> {
        let block = addr.block();
        let mask = self.conflict_mask(core, block, kind);
        if !mask.is_empty() {
            return Err(mask);
        }
        let service = self.classify(core, block, kind);
        Ok(AccessPlan {
            latency: self.latency_of(service),
            conflicts: ConflictSet::new(),
            core,
            addr,
            kind,
            service,
        })
    }

    /// The set of cores whose speculative bits conflict with `core`
    /// performing `kind` on `addr`'s block (the allocation- and
    /// struct-free form of [`conflict_set`](Self::conflict_set)).
    #[inline]
    pub fn conflict_mask_of(&self, core: CoreId, addr: Addr, kind: AccessKind) -> CoreSet<N> {
        self.conflict_mask(core, addr.block(), kind)
    }

    /// Computes the latency and conflict set of an access without performing
    /// it ([`plan`](Self::plan) with a `Vec`-backed view; kept for tests and
    /// diagnostics).
    pub fn probe(&self, core: CoreId, addr: Addr, kind: AccessKind) -> Probe {
        let plan = self.plan(core, addr, kind);
        Probe {
            latency: plan.latency,
            conflicts: plan.conflicts.to_vec(),
        }
    }

    /// The set of cores whose speculative bits conflict with `core`
    /// performing `kind` on `block`.
    #[inline]
    fn conflict_mask(&self, core: CoreId, block: BlockAddr, kind: AccessKind) -> CoreSet<N> {
        let mask = self.masks.get(block.0);
        let conflicting = match kind {
            AccessKind::Read => mask.writers,
            AccessKind::Write => mask.readers.union(mask.writers),
        };
        conflicting.without(core.0)
    }

    /// `true` if `core` performing `kind` on `addr`'s block would conflict
    /// with at least one other core's speculative bits. O(1).
    #[inline]
    pub fn has_conflicts(&self, core: CoreId, addr: Addr, kind: AccessKind) -> bool {
        !self.conflict_mask(core, addr.block(), kind).is_empty()
    }

    /// The cores whose speculative bits conflict with `core` performing
    /// `kind` on `addr`'s block, in ascending core order.
    pub fn conflict_set(&self, core: CoreId, addr: Addr, kind: AccessKind) -> ConflictSet {
        let block = addr.block();
        let mut out = ConflictSet::new();
        for i in self.conflict_mask(core, block, kind) {
            out.push(Conflict {
                core: CoreId(i),
                bits: self.spec_bits(CoreId(i), block),
            });
        }
        out
    }

    /// [`conflict_set`](Self::conflict_set) as a `Vec` (tests and
    /// diagnostics).
    pub fn conflicts(&self, core: CoreId, addr: Addr, kind: AccessKind) -> Vec<Conflict> {
        self.conflict_set(core, addr, kind).to_vec()
    }

    /// Performs the access: directory transition, cache fills (with
    /// inclusion-maintaining evictions), invalidation of remote copies, and —
    /// when `speculative` — setting this core's speculative bit for the
    /// block. Returns the access latency in cycles.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if another core still holds conflicting
    /// speculative bits (the protocol must resolve conflicts first).
    pub fn access(&mut self, core: CoreId, addr: Addr, kind: AccessKind, speculative: bool) -> u64 {
        let block = addr.block();
        let service = self.classify(core, block, kind);
        self.perform(core, addr, kind, speculative, service)
    }

    /// Performs a conflict-free planned access, reusing the classification
    /// computed by [`plan`](Self::plan) instead of re-deriving it. Returns
    /// the access latency in cycles.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the plan has unresolved conflicts, or if
    /// memory-system state changed since the plan was taken (the plan's
    /// classification is then stale — use [`access`](Self::access)).
    pub fn access_planned(&mut self, plan: &AccessPlan, speculative: bool) -> u64 {
        debug_assert!(
            plan.conflicts.is_empty(),
            "access_planned with unresolved conflicts; resolve, then use access()"
        );
        debug_assert_eq!(
            self.classify(plan.core, plan.addr.block(), plan.kind),
            plan.service,
            "stale AccessPlan: state changed since plan() was taken"
        );
        self.perform(plan.core, plan.addr, plan.kind, speculative, plan.service)
    }

    fn perform(
        &mut self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        speculative: bool,
        service: Service,
    ) -> u64 {
        let block = addr.block();
        debug_assert!(
            !self.has_conflicts(core, addr, kind),
            "access by {core} to {addr:?} with unresolved conflicts: {:?}",
            self.conflicts(core, addr, kind)
        );
        let latency = self.latency_of(service);

        // Directory transition + remote copy removal.
        let n_victims = match kind {
            AccessKind::Read => {
                // A remote modified owner is downgraded but keeps its copy.
                self.dir.grant_read(core, block);
                0u64
            }
            AccessKind::Write => {
                let victims = self.dir.grant_write(core, block);
                let n = u64::from(victims.count());
                for v in victims {
                    self.drop_copy(CoreId(v), block);
                    self.stats[v].invalidations_received += 1;
                }
                n
            }
        };
        self.stats[core.0].invalidations_sent += n_victims;

        // Fill local caches (L2 then L1, maintaining inclusion).
        self.fill(core, block);

        // Speculative bit update.
        if speculative {
            let bits = match kind {
                AccessKind::Read => SpecBits {
                    read: true,
                    written: false,
                },
                AccessKind::Write => SpecBits {
                    read: false,
                    written: true,
                },
            };
            self.mark_spec(core, block, bits);
        }

        // Statistics.
        let st = &mut self.stats[core.0];
        st.accesses += 1;
        match service {
            Service::L1Hit => st.l1_hits += 1,
            Service::L1Upgrade | Service::L2HitUpgrade => st.upgrades += 1,
            Service::L2Hit => st.l2_hits += 1,
            Service::Miss { .. } => st.misses += 1,
        }
        latency
    }

    /// `true` when an access by `core` to `block` would be serviced as a
    /// plain L1 hit — resident, and already writable for `Write` — with no
    /// coherence transition. The stall fast-forward's commit-storm oracle
    /// uses this to prove a reacquisition walk is a fixed point: an L1-hit
    /// re-access only refreshes LRU recency (idempotent across identical
    /// walks) and counts statistics, which
    /// [`replay_l1_hits`](Self::replay_l1_hits) replays in bulk.
    pub fn is_l1_hit(&self, core: CoreId, block: BlockAddr, kind: AccessKind) -> bool {
        matches!(self.classify(core, block, kind), Service::L1Hit)
    }

    /// Replays `count` L1-hit accesses into `core`'s memory statistics —
    /// the per-retry footprint of a skipped commit-reacquisition walk
    /// (every walk access was proven an L1 hit by
    /// [`is_l1_hit`](Self::is_l1_hit); an L1 hit's only non-idempotent
    /// effect is these two counters).
    pub fn replay_l1_hits(&mut self, core: CoreId, count: u64) {
        let st = &mut self.stats[core.0];
        st.accesses += count;
        st.l1_hits += count;
    }

    /// The block's current conflict version (see the `versions` field): a
    /// monotonic counter that stands still exactly while every input of a
    /// conflict-resolution verdict on the block is unchanged.
    #[inline]
    pub fn block_version(&self, block: BlockAddr) -> u64 {
        self.versions.get(block.0)
    }

    /// Records a protocol-side event that conflict verdicts on `block` may
    /// depend on but that the memory system cannot see itself (RETCON
    /// beginning symbolic tracking of the block, DATM dependence-graph
    /// changes).
    #[inline]
    pub fn bump_block_version(&mut self, block: BlockAddr) {
        *self.versions.entry(block.0) += 1;
        self.bump_epoch += 1;
    }

    /// The global conflict-version epoch: increments whenever *any* block's
    /// conflict version does. While it is unchanged, every
    /// [`block_version`](Self::block_version) is unchanged.
    #[inline]
    pub fn bump_epoch(&self) -> u64 {
        self.bump_epoch
    }

    /// Sets speculative bits on a block the core already caches (or tracks in
    /// its permissions-only cache).
    pub fn mark_spec(&mut self, core: CoreId, block: BlockAddr, bits: SpecBits) {
        if !bits.any() {
            return;
        }
        // Cache-line bits drive LRU victim preference only; absence (the
        // block was evicted) is fine — the union table below is
        // authoritative.
        self.l1[core.0].mark_spec(block, bits);
        let tbl = &mut self.spec[core.0];
        let entry = tbl.bits.entry(block.0);
        let before = *entry;
        entry.merge(bits);
        let merged = *entry;
        if !before.any() {
            tbl.touched.push(block.0);
        }
        if merged != before {
            // The core's footprint on the block grew (new bit, or a read
            // upgraded to written): conflict verdicts may change.
            *self.versions.entry(block.0) += 1;
            self.bump_epoch += 1;
        }
        let mask = self.masks.entry(block.0);
        if merged.read {
            mask.readers.insert(core.0);
        }
        if merged.written {
            mask.writers.insert(core.0);
        }
    }

    /// Clears `core`'s bits from the per-block conflict mask.
    fn clear_mask(&mut self, core: CoreId, block: u64) {
        let mut mask = self.masks.get(block);
        if mask.is_empty() {
            return;
        }
        let before = mask;
        mask.readers = mask.readers.without(core.0);
        mask.writers = mask.writers.without(core.0);
        if mask == before {
            return;
        }
        *self.versions.entry(block) += 1;
        self.bump_epoch += 1;
        if mask.is_empty() {
            self.masks.clear_entry(block);
        } else {
            *self.masks.entry(block) = mask;
        }
    }

    /// Removes `block` from `core`'s caches and directory entry, returning
    /// any speculative bits it carried (cache + permissions-only cache).
    /// This is the "steal" primitive used by RETCON and by protocols
    /// resolving conflicts in favour of a remote requester.
    pub fn invalidate_block(&mut self, core: CoreId, block: BlockAddr) -> SpecBits {
        let mut bits = SpecBits::NONE;
        if let Some(b) = self.l1[core.0].remove(block) {
            bits.merge(b);
        }
        self.l2[core.0].remove(block);
        bits.merge(self.spec[core.0].bits.clear_entry(block.0));
        self.clear_mask(core, block.0);
        self.dir.drop_holder(core, block);
        bits
    }

    /// Clears every speculative bit held by `core` (transaction commit or
    /// abort). Returns the number of blocks that had bits set.
    pub fn clear_spec(&mut self, core: CoreId) -> usize {
        // Take the touched-block list so we can walk it while updating the
        // caches and masks, then hand its (cleared) allocation back:
        // steady-state commits and aborts allocate nothing. Entries whose
        // bits were already stolen away read back as `NONE` and are
        // skipped (they were cleared — and uncounted — at steal time).
        let mut touched = std::mem::take(&mut self.spec[core.0].touched);
        let mut cleared = 0;
        for &block in &touched {
            let bits = self.spec[core.0].bits.clear_entry(block);
            if !bits.any() {
                continue;
            }
            cleared += 1;
            self.l1[core.0].clear_spec(BlockAddr(block));
            self.clear_mask(core, block);
        }
        touched.clear();
        self.spec[core.0].touched = touched;
        cleared
    }

    /// Blocks on which `core` currently holds speculative bits, in ascending
    /// block order.
    pub fn spec_blocks(&self, core: CoreId) -> Vec<(BlockAddr, SpecBits)> {
        let tbl = &self.spec[core.0];
        let mut blocks: Vec<(BlockAddr, SpecBits)> = tbl
            .touched
            .iter()
            .filter_map(|&b| {
                let bits = tbl.bits.get(b);
                bits.any().then_some((BlockAddr(b), bits))
            })
            .collect();
        blocks.sort_by_key(|(b, _)| b.0);
        blocks.dedup();
        blocks
    }

    /// `true` if `core` currently caches `block` (L1 or L2).
    pub fn caches_block(&self, core: CoreId, block: BlockAddr) -> bool {
        self.l1[core.0].contains(block) || self.l2[core.0].contains(block)
    }

    /// This core's accumulated statistics.
    pub fn stats(&self, core: CoreId) -> &MemStats {
        &self.stats[core.0]
    }

    /// Resets all statistics counters.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = MemStats::default();
        }
    }

    /// The directory (read-only), for tests asserting coherence state.
    pub fn directory(&self) -> &Directory<N> {
        &self.dir
    }

    fn drop_copy(&mut self, core: CoreId, block: BlockAddr) {
        // Invalidation from a remote write: remove the copy everywhere. Any
        // speculative bits still present here are a protocol error (debug
        // asserted in `perform`) — a write request conflicts with *any*
        // remote speculative bit, so legal victims carry none.
        self.l1[core.0].remove(block);
        self.l2[core.0].remove(block);
        self.dir.drop_holder(core, block);
    }

    fn fill(&mut self, core: CoreId, block: BlockAddr) {
        // L2 fill with inclusion: evicting an L2 block removes it from L1 too
        // and gives up its directory holding.
        if let Some((victim, _)) = self.l2[core.0].insert(block) {
            if let Some(bits) = self.l1[core.0].remove(victim) {
                if bits.any() {
                    self.overflow_spec(core);
                }
            }
            // The block leaves this core entirely.
            self.dir.drop_holder(core, victim);
        }
        // L1 fill.
        if let Some((victim, bits)) = self.l1[core.0].insert(block) {
            if bits.any() {
                self.overflow_spec(core);
            }
            // Victim may still be in L2; only drop the directory holding if
            // it is gone from both levels.
            if !self.l2[core.0].contains(victim) {
                self.dir.drop_holder(core, victim);
            }
        }
    }

    /// Records that a speculative line was evicted. The permissions survive
    /// in the union map (the OneTM-style permissions-only cache), so only
    /// the statistic moves.
    fn overflow_spec(&mut self, core: CoreId) {
        self.stats[core.0].spec_overflows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheGeometry;
    use crate::config::LatencyModel;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    fn ms(cores: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::default(), cores)
    }

    #[test]
    fn cold_miss_then_hits() {
        let mut m = ms(1);
        let a = Addr(0);
        // Cold: directory miss to DRAM.
        assert_eq!(m.access(C0, a, AccessKind::Read, false), 140);
        // Warm: L1 hit.
        assert_eq!(m.access(C0, a, AccessKind::Read, false), 1);
        // Same block, different word: still a hit.
        assert_eq!(m.access(C0, Addr(5), AccessKind::Read, false), 1);
        let st = m.stats(C0);
        assert_eq!(st.accesses, 3);
        assert_eq!(st.misses, 1);
        assert_eq!(st.l1_hits, 2);
    }

    #[test]
    fn planned_access_matches_plain_access() {
        let mut m = ms(2);
        let a = Addr(0);
        let plan = m.plan(C0, a, AccessKind::Read);
        assert!(!plan.has_conflicts());
        assert_eq!(plan.latency, 140);
        assert_eq!(m.access_planned(&plan, false), 140);
        // Warm L1 hit through the planned path.
        let plan = m.plan(C0, a, AccessKind::Write);
        assert_eq!(m.access_planned(&plan, true), 41);
        assert_eq!(m.stats(C0).accesses, 2);
        // Conflicting plan reports the conflict.
        let plan = m.plan(C1, a, AccessKind::Read);
        assert_eq!(plan.conflicts.len(), 1);
        assert_eq!(plan.conflicts.iter().next().unwrap().core, C0);
    }

    #[test]
    fn upgrade_miss_costs_directory_roundtrip() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, false);
        m.access(C1, a, AccessKind::Read, false);
        // C0 holds Shared; write needs upgrade: 1 (L1) + 40 (2 hops).
        assert_eq!(m.access(C0, a, AccessKind::Write, false), 41);
        assert_eq!(m.stats(C0).upgrades, 1);
        // C1's copy was invalidated.
        assert!(!m.caches_block(C1, a.block()));
        assert_eq!(m.stats(C1).invalidations_received, 1);
    }

    #[test]
    fn dirty_forward_cheaper_than_dram() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, false); // C0 Modified
                                                   // C1 read: forwarded from owner = 2*20 + 20 = 60.
        assert_eq!(m.access(C1, a, AccessKind::Read, false), 60);
        // Both now share.
        assert!(m.directory().state(a.block()).holds(C0));
        assert!(m.directory().state(a.block()).holds(C1));
    }

    #[test]
    fn write_after_owner_write_invalidates() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, false);
        m.access(C1, a, AccessKind::Write, false);
        assert!(m.directory().state(a.block()).holds_modified(C1));
        assert!(!m.caches_block(C0, a.block()));
    }

    #[test]
    fn speculative_bits_set_and_conflict() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, true);
        let bits = m.spec_bits(C0, a.block());
        assert!(bits.read && !bits.written);

        // Remote read does not conflict with a spec-read block.
        assert!(m.probe(C1, a, AccessKind::Read).conflicts.is_empty());
        assert!(!m.has_conflicts(C1, a, AccessKind::Read));
        // Remote write does.
        let p = m.probe(C1, a, AccessKind::Write);
        assert_eq!(p.conflicts.len(), 1);
        assert_eq!(p.conflicts[0].core, C0);
        assert!(m.has_conflicts(C1, a, AccessKind::Write));
    }

    #[test]
    fn spec_written_conflicts_with_remote_read() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, true);
        let p = m.probe(C1, a, AccessKind::Read);
        assert_eq!(p.conflicts.len(), 1);
        assert!(p.conflicts[0].bits.written);
    }

    #[test]
    fn clear_spec_resolves_conflicts() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, true);
        assert_eq!(m.clear_spec(C0), 1);
        assert!(m.probe(C1, a, AccessKind::Read).conflicts.is_empty());
        // Second clear is a no-op.
        assert_eq!(m.clear_spec(C0), 0);
    }

    #[test]
    fn invalidate_block_steals_and_returns_bits() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, true);
        let bits = m.invalidate_block(C0, a.block());
        assert!(bits.read);
        assert!(!m.caches_block(C0, a.block()));
        assert!(m.probe(C1, a, AccessKind::Write).conflicts.is_empty());
        // After the steal, C1 can write at DRAM cost (block now uncached).
        assert_eq!(m.access(C1, a, AccessKind::Write, false), 140);
    }

    #[test]
    fn spec_bits_survive_capacity_eviction_via_po_cache() {
        // Tiny caches force evictions: 1-set 1-way L1, 1-set 1-way L2.
        let cfg = MemConfig {
            l1: CacheGeometry { sets: 1, ways: 1 },
            l2: CacheGeometry { sets: 1, ways: 1 },
            latency: LatencyModel::default(),
        };
        let mut m: MemorySystem = MemorySystem::new(cfg, 2);
        let a = Addr(0);
        let b = Addr(8); // different block, same set
        m.access(C0, a, AccessKind::Read, true);
        m.access(C0, b, AccessKind::Read, true); // evicts block of `a`
        assert!(!m.caches_block(C0, a.block()));
        // Permissions survive: a remote write still conflicts.
        let p = m.probe(C1, a, AccessKind::Write);
        assert_eq!(p.conflicts.len(), 1);
        assert!(m.stats(C0).spec_overflows >= 1);
        // And spec_blocks reports both.
        let blocks = m.spec_blocks(C0);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn spec_blocks_merges_cache_and_overflow() {
        let mut m = ms(1);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, true);
        m.mark_spec(
            C0,
            a.block(),
            SpecBits {
                read: false,
                written: true,
            },
        );
        let blocks = m.spec_blocks(C0);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].1.read && blocks[0].1.written);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unresolved conflicts")]
    fn unresolved_conflict_panics_in_debug() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, true);
        let _ = m.access(C1, a, AccessKind::Read, false);
    }

    #[test]
    fn architectural_rw_bypasses_timing() {
        let mut m = ms(1);
        m.write_word(Addr(3), 9);
        assert_eq!(m.read_word(Addr(3)), 9);
        assert_eq!(m.stats(C0).accesses, 0);
    }

    #[test]
    fn downgrade_keeps_owner_copy() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, false);
        m.access(C1, a, AccessKind::Read, false);
        assert!(m.caches_block(C0, a.block()));
        assert!(m.caches_block(C1, a.block()));
        // C0 writing again needs an upgrade (it was downgraded to Shared).
        assert_eq!(m.access(C0, a, AccessKind::Write, false), 41);
    }

    #[test]
    fn conflict_set_spills_past_inline_capacity() {
        let mut m: MemorySystem = MemorySystem::new(MemConfig::default(), 8);
        let a = Addr(0);
        for i in 0..7 {
            m.access(CoreId(i), a, AccessKind::Read, true);
        }
        let set = m.conflict_set(CoreId(7), a, AccessKind::Write);
        assert_eq!(set.len(), 7);
        let cores: Vec<usize> = set.iter().map(|c| c.core.0).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 4, 5, 6], "ascending core order");
        assert_eq!(set.to_vec().len(), 7);
    }

    #[test]
    fn too_many_cores_rejected() {
        let result = std::panic::catch_unwind(|| MemorySystem::<1>::new(MemConfig::default(), 65));
        assert!(result.is_err());
    }

    #[test]
    fn wide_size_class_accepts_and_tracks_high_cores() {
        let mut m: MemorySystem<16> = MemorySystem::new(MemConfig::default(), 1024);
        let a = Addr(0);
        let hi = CoreId(1000);
        m.access(hi, a, AccessKind::Write, true);
        assert!(m.spec_bits(hi, a.block()).written);
        // A low core's read conflicts with the high core's written bit.
        let set = m.conflict_set(CoreId(3), a, AccessKind::Read);
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().core, hi);
        assert_eq!(m.clear_spec(hi), 1);
        assert!(!m.has_conflicts(CoreId(3), a, AccessKind::Read));
    }
}
