//! Directory coherence state.
//!
//! Entries are stored compactly as a per-block *sharer bitmask* plus an
//! optional owner index, so the hot-path questions — "who must be
//! invalidated", "can the data be forwarded", "does this core hold the block
//! modified" — are single-word bit operations instead of `BTreeSet`
//! traversals. The [`DirState`] enum remains as a read-only *view* for tests
//! and diagnostics.

use std::collections::BTreeSet;

use retcon_isa::BlockAddr;

use crate::system::CoreId;
use retcon_isa::table::BlockTable;

/// The directory supports at most this many cores (sharer sets are 64-bit
/// masks; the paper's machine is 32 cores).
pub const MAX_CORES: usize = 64;

/// Sentinel for "no modified owner".
const NO_OWNER: u8 = u8::MAX;

/// Compact per-block directory entry: either one modified owner, or a
/// bitmask of read-only sharers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// Bit `i` set: core `i` holds a read-only copy (only meaningful when
    /// `owner == NO_OWNER`).
    sharers: u64,
    /// Index of the modified owner, or [`NO_OWNER`].
    owner: u8,
}

/// The default entry is the uncached state: no sharers, no owner.
impl Default for Entry {
    fn default() -> Self {
        Entry {
            sharers: 0,
            owner: NO_OWNER,
        }
    }
}

impl Entry {
    #[inline]
    fn modified(core: CoreId) -> Entry {
        debug_assert!(core.0 < MAX_CORES);
        Entry {
            sharers: 0,
            owner: core.0 as u8,
        }
    }

    #[inline]
    fn shared(mask: u64) -> Entry {
        Entry {
            sharers: mask,
            owner: NO_OWNER,
        }
    }

    #[inline]
    fn holder_mask(self) -> u64 {
        if self.owner == NO_OWNER {
            self.sharers
        } else {
            1u64 << self.owner
        }
    }
}

/// Coherence state of one block as seen by the directory (a view assembled
/// on demand; the directory's storage is the compact [`Entry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No core caches the block.
    Uncached,
    /// One or more cores hold read-only copies.
    Shared(BTreeSet<CoreId>),
    /// Exactly one core holds the block with write permission.
    Modified(CoreId),
}

impl DirState {
    /// The set of cores currently holding any copy.
    pub fn holders(&self) -> Vec<CoreId> {
        match self {
            DirState::Uncached => Vec::new(),
            DirState::Shared(s) => s.iter().copied().collect(),
            DirState::Modified(c) => vec![*c],
        }
    }

    /// `true` if `core` holds a copy.
    pub fn holds(&self, core: CoreId) -> bool {
        match self {
            DirState::Uncached => false,
            DirState::Shared(s) => s.contains(&core),
            DirState::Modified(c) => *c == core,
        }
    }

    /// `true` if `core` holds the block with write permission.
    pub fn holds_modified(&self, core: CoreId) -> bool {
        matches!(self, DirState::Modified(c) if *c == core)
    }
}

/// The directory: authoritative coherence state for every block.
///
/// The directory answers two questions for the memory system: *who must be
/// invalidated/downgraded to grant this request* and *can the data be
/// forwarded from a remote owner instead of DRAM*. State transitions are
/// driven exclusively by [`grant_read`](Directory::grant_read),
/// [`grant_write`](Directory::grant_write) and
/// [`drop_holder`](Directory::drop_holder); the per-core tag arrays mirror
/// this state for latency and speculative-bit lookups.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// Per-block entries; the dense-first table makes every hot-path
    /// question an array load for densely-allocated workloads.
    entries: BlockTable<Entry>,
}

impl Directory {
    /// Creates an empty directory (all blocks [`DirState::Uncached`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state of `block`, as an assembled view (allocates for
    /// shared blocks; intended for tests and diagnostics, not the hot path).
    pub fn state(&self, block: BlockAddr) -> DirState {
        let e = self.entries.get(block.0);
        if e == Entry::default() {
            DirState::Uncached
        } else if e.owner != NO_OWNER {
            DirState::Modified(CoreId(e.owner as usize))
        } else {
            DirState::Shared(
                (0..MAX_CORES)
                    .filter(|i| e.sharers & (1u64 << i) != 0)
                    .map(CoreId)
                    .collect(),
            )
        }
    }

    /// Debug-asserts that `core` fits the one-word sharer masks. The
    /// `MemorySystem` constructor enforces this for protocol-driven use;
    /// this guard covers direct `Directory` users.
    #[inline]
    fn check_core(core: CoreId) {
        debug_assert!(
            core.0 < MAX_CORES,
            "CoreId {core} exceeds MAX_CORES ({MAX_CORES})"
        );
    }

    /// `true` if `core` holds any copy of `block`.
    #[inline]
    pub fn holds(&self, core: CoreId, block: BlockAddr) -> bool {
        Self::check_core(core);
        self.entries.get(block.0).holder_mask() & (1u64 << core.0) != 0
    }

    /// `true` if `core` holds `block` with write permission.
    #[inline]
    pub fn holds_modified(&self, core: CoreId, block: BlockAddr) -> bool {
        Self::check_core(core);
        self.entries.get(block.0).owner == core.0 as u8
    }

    /// Bitmask of cores whose copies must change state for `core` to perform
    /// the given access: for a write, every other holder; for a read, the
    /// remote modified owner (who must downgrade), if any.
    #[inline]
    pub fn victims_mask(&self, core: CoreId, block: BlockAddr, write: bool) -> u64 {
        Self::check_core(core);
        let e = self.entries.get(block.0);
        let me = 1u64 << core.0;
        if e.owner != NO_OWNER {
            e.holder_mask() & !me
        } else if write {
            e.sharers & !me
        } else {
            0
        }
    }

    /// [`victims_mask`](Self::victims_mask) as a `Vec` (tests and
    /// diagnostics).
    pub fn victims(&self, core: CoreId, block: BlockAddr, write: bool) -> Vec<CoreId> {
        let mut mask = self.victims_mask(core, block, write);
        let mut out = Vec::new();
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            out.push(CoreId(i));
        }
        out
    }

    /// `true` if a miss by `core` would be serviced by a remote owner's cache
    /// (dirty forward) rather than DRAM.
    #[inline]
    pub fn forwarded_from_owner(&self, core: CoreId, block: BlockAddr) -> bool {
        Self::check_core(core);
        let owner = self.entries.get(block.0).owner;
        owner != NO_OWNER && owner != core.0 as u8
    }

    /// Records that `core` has been granted a read-only copy, downgrading a
    /// remote modified owner to shared. Returns the downgraded owner, if any.
    pub fn grant_read(&mut self, core: CoreId, block: BlockAddr) -> Option<CoreId> {
        Self::check_core(core);
        let me = 1u64 << core.0;
        let e = self.entries.entry(block.0);
        if e.owner == NO_OWNER {
            // Uncached or shared: join the sharer set.
            e.sharers |= me;
            None
        } else if e.owner == core.0 as u8 {
            None
        } else {
            let owner = CoreId(e.owner as usize);
            *e = Entry::shared(me | (1u64 << owner.0));
            Some(owner)
        }
    }

    /// Records that `core` has been granted an exclusive (writable) copy,
    /// invalidating all other holders. Returns the bitmask of invalidated
    /// cores.
    pub fn grant_write(&mut self, core: CoreId, block: BlockAddr) -> u64 {
        let victims = self.victims_mask(core, block, true);
        *self.entries.entry(block.0) = Entry::modified(core);
        victims
    }

    /// Records that `core` no longer caches `block` (eviction or
    /// invalidation acknowledged).
    pub fn drop_holder(&mut self, core: CoreId, block: BlockAddr) {
        Self::check_core(core);
        let mut e = self.entries.get(block.0);
        if e == Entry::default() {
            return;
        }
        if e.owner != NO_OWNER {
            if e.owner == core.0 as u8 {
                self.entries.clear_entry(block.0);
            }
        } else {
            e.sharers &= !(1u64 << core.0);
            if e.sharers == 0 {
                self.entries.clear_entry(block.0);
            } else {
                *self.entries.entry(block.0) = e;
            }
        }
    }

    /// Number of blocks with a non-`Uncached` entry.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.occupied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const C2: CoreId = CoreId(2);
    const B: BlockAddr = BlockAddr(7);

    #[test]
    fn starts_uncached() {
        let d = Directory::new();
        assert_eq!(d.state(B), DirState::Uncached);
        assert!(d.victims(C0, B, true).is_empty());
        assert_eq!(d.victims_mask(C0, B, true), 0);
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn read_read_shares() {
        let mut d = Directory::new();
        assert_eq!(d.grant_read(C0, B), None);
        assert_eq!(d.grant_read(C1, B), None);
        let s = d.state(B);
        assert!(s.holds(C0) && s.holds(C1));
        assert!(!s.holds_modified(C0));
        assert!(d.holds(C0, B) && d.holds(C1, B));
        assert!(!d.holds_modified(C0, B));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.grant_read(C0, B);
        d.grant_read(C1, B);
        let victims = d.grant_write(C2, B);
        assert_eq!(victims, 0b11);
        assert!(d.state(B).holds_modified(C2));
        assert!(d.holds_modified(C2, B));
    }

    #[test]
    fn read_downgrades_modified_owner() {
        let mut d = Directory::new();
        d.grant_write(C0, B);
        assert!(d.forwarded_from_owner(C1, B));
        let downgraded = d.grant_read(C1, B);
        assert_eq!(downgraded, Some(C0));
        let s = d.state(B);
        assert!(s.holds(C0) && s.holds(C1));
        assert!(!s.holds_modified(C0));
    }

    #[test]
    fn owner_rereading_keeps_modified() {
        let mut d = Directory::new();
        d.grant_write(C0, B);
        assert_eq!(d.grant_read(C0, B), None);
        assert!(d.state(B).holds_modified(C0));
    }

    #[test]
    fn write_steals_from_owner() {
        let mut d = Directory::new();
        d.grant_write(C0, B);
        let victims = d.grant_write(C1, B);
        assert_eq!(victims, 0b01);
        assert!(d.state(B).holds_modified(C1));
    }

    #[test]
    fn drop_holder_transitions() {
        let mut d = Directory::new();
        d.grant_read(C0, B);
        d.grant_read(C1, B);
        d.drop_holder(C0, B);
        assert!(!d.state(B).holds(C0));
        assert!(d.state(B).holds(C1));
        d.drop_holder(C1, B);
        assert_eq!(d.state(B), DirState::Uncached);
        assert_eq!(d.tracked_blocks(), 0);

        d.grant_write(C2, B);
        d.drop_holder(C2, B);
        assert_eq!(d.state(B), DirState::Uncached);
    }

    #[test]
    fn victims_for_read_only_modified_owner() {
        let mut d = Directory::new();
        d.grant_read(C0, B);
        assert!(d.victims(C1, B, false).is_empty());
        d.grant_write(C0, B);
        assert_eq!(d.victims(C1, B, false), vec![C0]);
        assert_eq!(d.victims(C0, B, false), Vec::<CoreId>::new());
    }

    #[test]
    fn drop_of_non_holder_is_noop() {
        let mut d = Directory::new();
        d.grant_write(C0, B);
        d.drop_holder(C1, B);
        assert!(d.state(B).holds_modified(C0));
    }
}
