//! Symbolic values: the §4.4 `(input_address, increment)` representation.

use std::fmt;

use retcon_isa::Addr;

/// A symbolic value: `[root] + offset`.
///
/// The paper restricts symbolically trackable computation to additions and
/// subtractions (§4.4), which collapses any chain of increments into a single
/// `(input_address, increment)` pair. Because store-to-load forwarding copies
/// the symbolic value instead of chaining through the store (§4.3), every
/// symbolic value in the machine is rooted directly at a memory input, never
/// at another symbolic value — the property that makes commit-time repair a
/// single evaluation rather than a replay.
///
/// # Example
///
/// ```
/// use retcon::SymValue;
/// use retcon_isa::Addr;
///
/// let v = SymValue::root(Addr(8)).add(2).add(-1);
/// assert_eq!(v.offset(), 1);
/// assert_eq!(v.eval(10), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymValue {
    root: Addr,
    offset: i64,
}

impl SymValue {
    /// The symbolic value of a fresh load from `root`: `[root] + 0`.
    #[inline]
    pub fn root(root: Addr) -> Self {
        SymValue { root, offset: 0 }
    }

    /// The word address this value is rooted at.
    #[inline]
    pub fn root_addr(&self) -> Addr {
        self.root
    }

    /// The cumulative increment applied to the root.
    #[inline]
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Returns `self + k` (collapsing into the cumulative increment).
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)] // deliberately not `ops::Add`: k is a plain i64 offset
    pub fn add(self, k: i64) -> Self {
        SymValue {
            root: self.root,
            offset: self.offset.wrapping_add(k),
        }
    }

    /// Evaluates the symbolic value against a concrete root value, with the
    /// wrapping arithmetic of the simulated machine.
    #[inline]
    pub fn eval(&self, root_value: u64) -> u64 {
        root_value.wrapping_add(self.offset as u64)
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{:#x}]", self.root.0)
        } else if self.offset > 0 {
            write!(f, "[{:#x}]+{}", self.root.0, self.offset)
        } else {
            write!(f, "[{:#x}]{}", self.root.0, self.offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_zero_offset() {
        let v = SymValue::root(Addr(5));
        assert_eq!(v.root_addr(), Addr(5));
        assert_eq!(v.offset(), 0);
        assert_eq!(v.eval(42), 42);
    }

    #[test]
    fn increments_collapse() {
        let v = SymValue::root(Addr(5)).add(1).add(1).add(3);
        assert_eq!(v.offset(), 5);
        assert_eq!(v.eval(10), 15);
    }

    #[test]
    fn decrements_and_negative_offsets() {
        let v = SymValue::root(Addr(5)).add(-3);
        assert_eq!(v.offset(), -3);
        assert_eq!(v.eval(10), 7);
        // Wrapping evaluation below zero.
        assert_eq!(v.eval(2), u64::MAX);
    }

    #[test]
    fn eval_wraps_at_u64_max() {
        let v = SymValue::root(Addr(0)).add(2);
        assert_eq!(v.eval(u64::MAX), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SymValue::root(Addr(8)).to_string(), "[0x8]");
        assert_eq!(SymValue::root(Addr(8)).add(2).to_string(), "[0x8]+2");
        assert_eq!(SymValue::root(Addr(8)).add(-2).to_string(), "[0x8]-2");
    }
}
