//! The symbolic-tracking predictor.
//!
//! §4.1/§5.1 of the paper: a symbolic location is *"a memory address that
//! RETCON decides to track symbolically (e.g., via a predictor trained by
//! past history of conflicts)"*, and *"to avoid elongating the amount of
//! time that is spent in transactions that will eventually abort, a violated
//! constraint causes the predictor to train down aggressively, requiring the
//! observation of 100 conflicts on that block before attempting symbolic
//! tracking on that block again."*

use retcon_isa::table::BlockTable;
use retcon_isa::BlockAddr;

/// Per-block conflict-history predictor deciding which blocks to track
/// symbolically.
///
/// A block becomes trackable once it has been observed in `initial_threshold`
/// conflicts; a constraint violation at commit raises the bar by
/// `violation_backoff` further conflicts.
///
/// # Example
///
/// ```
/// use retcon::Predictor;
/// use retcon_isa::BlockAddr;
///
/// let mut p = Predictor::new(1, 100);
/// let b = BlockAddr(3);
/// assert!(!p.should_track(b));
/// p.on_conflict(b);
/// assert!(p.should_track(b));
/// p.on_violation(b);
/// assert!(!p.should_track(b)); // needs 100 more conflicts now
/// ```
#[derive(Debug, Clone)]
pub struct Predictor {
    initial_threshold: u32,
    violation_backoff: u32,
    entries: BlockTable<Entry>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Entry {
    /// `false` until the block's first conflict/violation is recorded (the
    /// dense-table equivalent of map absence).
    seen: bool,
    conflicts: u32,
    /// Conflicts required before tracking; starts at `initial_threshold` and
    /// is raised on violations.
    required: u32,
}

impl Predictor {
    /// Creates a predictor that enables tracking after `initial_threshold`
    /// observed conflicts and backs off by `violation_backoff` conflicts on
    /// each constraint violation.
    pub fn new(initial_threshold: u32, violation_backoff: u32) -> Self {
        Predictor {
            initial_threshold,
            violation_backoff,
            entries: BlockTable::new(),
        }
    }

    /// Should loads from `block` initiate symbolic tracking?
    #[inline]
    pub fn should_track(&self, block: BlockAddr) -> bool {
        let e = self.entries.get(block.0);
        if e.seen {
            e.conflicts >= e.required
        } else {
            self.initial_threshold == 0
        }
    }

    /// The entry for `block`, initialized on first touch (map-absence
    /// equivalent).
    #[inline]
    fn entry(&mut self, block: BlockAddr) -> &mut Entry {
        let threshold = self.initial_threshold;
        let e = self.entries.entry(block.0);
        if !e.seen {
            *e = Entry {
                seen: true,
                conflicts: 0,
                required: threshold,
            };
        }
        e
    }

    /// Records that a conflict was observed on `block` (an abort or stall
    /// whose contended block this was).
    #[inline]
    pub fn on_conflict(&mut self, block: BlockAddr) {
        let e = self.entry(block);
        e.conflicts = e.conflicts.saturating_add(1);
    }

    /// Records `n` conflict observations on `block` at once — exactly
    /// equivalent to `n` [`on_conflict`](Predictor::on_conflict) calls
    /// (saturating addition makes the bulk form exact). The simulator's
    /// stall fast-forward uses this to train analytically instead of once
    /// per replayed retry.
    #[inline]
    pub fn on_conflicts(&mut self, block: BlockAddr, n: u32) {
        let e = self.entry(block);
        e.conflicts = e.conflicts.saturating_add(n);
    }

    /// Records that a commit-time constraint check failed for `block`:
    /// tracking is disabled until `violation_backoff` further conflicts
    /// accumulate.
    pub fn on_violation(&mut self, block: BlockAddr) {
        let backoff = self.violation_backoff;
        let e = self.entry(block);
        e.required = e.conflicts.saturating_add(backoff);
    }

    /// Number of blocks with recorded history.
    pub fn tracked_history(&self) -> usize {
        self.entries.occupied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(9);

    #[test]
    fn tracks_after_threshold() {
        let mut p = Predictor::new(2, 100);
        assert!(!p.should_track(B));
        p.on_conflict(B);
        assert!(!p.should_track(B));
        p.on_conflict(B);
        assert!(p.should_track(B));
    }

    #[test]
    fn zero_threshold_tracks_everything() {
        let p = Predictor::new(0, 100);
        assert!(p.should_track(B));
        assert!(p.should_track(BlockAddr(1234)));
    }

    #[test]
    fn violation_requires_backoff_conflicts() {
        let mut p = Predictor::new(1, 3);
        p.on_conflict(B);
        assert!(p.should_track(B));
        p.on_violation(B);
        assert!(!p.should_track(B));
        p.on_conflict(B);
        p.on_conflict(B);
        assert!(!p.should_track(B));
        p.on_conflict(B);
        assert!(p.should_track(B));
    }

    #[test]
    fn violation_on_unseen_block_sets_bar() {
        let mut p = Predictor::new(0, 2);
        p.on_violation(B);
        assert!(!p.should_track(B));
        p.on_conflict(B);
        p.on_conflict(B);
        assert!(p.should_track(B));
        // Other blocks unaffected.
        assert!(p.should_track(BlockAddr(1)));
    }

    #[test]
    fn histories_are_per_block() {
        let mut p = Predictor::new(1, 100);
        p.on_conflict(B);
        assert!(p.should_track(B));
        assert!(!p.should_track(BlockAddr(10)));
        assert_eq!(p.tracked_history(), 1);
    }

    #[test]
    fn saturating_counters() {
        let mut p = Predictor::new(1, u32::MAX);
        p.on_conflict(B);
        p.on_violation(B); // required saturates at u32::MAX
        for _ in 0..10 {
            p.on_conflict(B);
        }
        assert!(!p.should_track(B));
    }
}
