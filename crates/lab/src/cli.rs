//! Command-line plumbing shared by the `retcon-lab` binary and the
//! `crates/bench` figure/table bins.

use crate::bench;
use crate::checks::{self, Check};
use crate::csv;
use crate::datasets::Dataset;
use crate::record::ExperimentRecord;
use crate::render;
use crate::runner::ReportCache;
use retcon_obs::phase::{self, PhaseTotal};
use retcon_sim::SimError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Output selection for a single-dataset invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Output {
    /// The historical stdout table.
    Table,
    /// The lossless JSON record.
    Json,
    /// The flat CSV projection.
    Csv,
}

/// Options shared by `run` and the bench bins.
#[derive(Debug)]
struct BinOptions {
    jobs: usize,
    output: Output,
    out_dir: Option<PathBuf>,
    /// Surface phase-profiling timings (simulate / serialize / spill I/O)
    /// in record `meta` and a stdout summary. Off by default because the
    /// timings are wall-clock — records must stay byte-deterministic
    /// unless the caller opts into this.
    profile: bool,
}

fn parse_bin_options(args: &[String]) -> Result<BinOptions, String> {
    let mut opts = BinOptions {
        jobs: 1,
        output: Output::Table,
        out_dir: None,
        profile: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" | "-j" => {
                let v = args
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| (1..=256).contains(n))
                    .ok_or("--jobs needs a worker count in 1..=256")?;
                opts.jobs = v;
                i += 2;
            }
            "--json" => {
                opts.output = Output::Json;
                i += 1;
            }
            "--csv" => {
                opts.output = Output::Csv;
                i += 1;
            }
            "--out" | "-o" => {
                let v = args.get(i + 1).ok_or("--out needs a directory")?;
                opts.out_dir = Some(PathBuf::from(v));
                i += 2;
            }
            "--profile" => {
                opts.profile = true;
                i += 1;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn write_record(dir: &Path, record: &ExperimentRecord) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let t = Instant::now();
    let json_text = record.to_json_string();
    let csv_text = csv::to_csv(record)?;
    phase::add(phase::Phase::Serialize, t.elapsed().as_micros() as u64);
    let json_path = dir.join(format!("{}.json", record.name));
    std::fs::write(&json_path, json_text)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    let csv_path = dir.join(format!("{}.csv", record.name));
    std::fs::write(&csv_path, csv_text)
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
    Ok(())
}

/// The `meta` rows a phase-profile delta contributes to a record:
/// `profile_<phase>_micros` / `_spans` for every phase that saw work.
fn profile_meta(delta: &[PhaseTotal]) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for t in delta {
        if t.spans == 0 {
            continue;
        }
        let name = t.phase.name();
        rows.push((format!("profile_{name}_micros"), t.micros.to_string()));
        rows.push((format!("profile_{name}_spans"), t.spans.to_string()));
    }
    rows
}

fn emit(dataset: Dataset, record: &ExperimentRecord, output: Output) -> Result<(), String> {
    match output {
        Output::Table => print!("{}", render::render(dataset, record)),
        Output::Json => print!("{}", record.to_json_string()),
        Output::Csv => print!("{}", csv::to_csv(record)?),
    }
    Ok(())
}

fn run_error(e: SimError) -> ExitCode {
    eprintln!("simulation failed: {e}");
    ExitCode::FAILURE
}

/// Entry point for the `crates/bench` figure/table bins: regenerates
/// `dataset` and prints it. Accepts `--jobs N`, `--json`, `--csv`, and
/// `--out DIR` (which also writes the JSON+CSV pair).
pub fn bin_main(dataset: Dataset) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_bin_options(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: {} [--jobs N] [--json | --csv] [--out DIR]",
                dataset.name()
            );
            return ExitCode::FAILURE;
        }
    };
    let record = match dataset.collect(opts.jobs) {
        Ok(record) => record,
        Err(e) => return run_error(e),
    };
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = write_record(dir, &record) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = emit(dataset, &record, opts.output) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: retcon-lab <command> [options]");
    eprintln!();
    eprintln!("commands:");
    eprintln!(
        "  all   [--jobs N] [--out DIR] [--profile]   regenerate every dataset (default out: results/)"
    );
    eprintln!("  run   <dataset> [--jobs N] [--json | --csv] [--out DIR] [--profile]");
    eprintln!("  check [--quick] [--jobs N] [--in DIR]");
    eprintln!(
        "  trace --workload <name> [--system S] [--cores N] [--seed N] [--shards N] [--out FILE]"
    );
    eprintln!("        run one workload with event tracing on; write Chrome trace-event JSON");
    eprintln!("  explore [--quick] [--jobs N] [--json | --csv] [--out DIR]   schedule exploration");
    eprintln!(
        "  bench [--jobs N] [--out FILE]       time every dataset, append to BENCH_hotpath.json"
    );
    eprintln!("  perfdiff [FILE]                     diff the last two bench entries (non-gating)");
    eprintln!("  list");
    eprintln!();
    eprintln!(
        "datasets: {}",
        Dataset::ALL
            .iter()
            .map(|d| d.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    eprintln!("extras (run explicitly, not part of `all`): scaling_xl");
    ExitCode::FAILURE
}

fn cmd_all(args: &[String]) -> ExitCode {
    let mut opts = match parse_bin_options(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if opts.output != Output::Table {
        // `all` always writes the JSON+CSV pair per dataset; accepting a
        // stdout-format flag here and ignoring it would mislead.
        eprintln!("`all` writes both formats to --out; --json/--csv apply to `run`");
        return usage();
    }
    let dir = opts
        .out_dir
        .take()
        .unwrap_or_else(|| PathBuf::from("results"));
    let started = Instant::now();
    // One cache across all datasets: fig10 is a strict subset of fig9's
    // at-scale matrix and ablation_ideal repeats its baselines, so the
    // shared memo avoids recomputing ~70 deterministic 32-core runs.
    let cache = ReportCache::new();
    for dataset in Dataset::ALL {
        let t = Instant::now();
        let before = phase::snapshot();
        let mut record = match dataset.collect_cached(opts.jobs, &cache) {
            Ok(record) => record,
            Err(e) => return run_error(e),
        };
        if opts.profile {
            let delta = phase::delta(&before, &phase::snapshot());
            record.meta.extend(profile_meta(&delta));
        }
        if let Err(e) = write_record(&dir, &record) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!(
            "{:<16} {:>4} runs  {:>8.2}s  -> {}.{{json,csv}}",
            dataset.name(),
            record.runs.len(),
            t.elapsed().as_secs_f64(),
            dir.join(dataset.name()).display()
        );
    }
    println!(
        "regenerated {} datasets in {:.2}s (jobs={})",
        Dataset::ALL.len(),
        started.elapsed().as_secs_f64(),
        opts.jobs
    );
    if opts.profile {
        println!();
        println!("phase profile (whole invocation):");
        for t in phase::snapshot() {
            println!(
                "  {:<12} {:>10.3}ms over {:>5} spans",
                t.phase.name(),
                t.micros as f64 / 1000.0,
                t.spans
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(dataset) = Dataset::parse(name) else {
        eprintln!("unknown dataset `{name}`");
        return usage();
    };
    let opts = match parse_bin_options(&args[1..]) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let before = phase::snapshot();
    let mut record = match dataset.collect(opts.jobs) {
        Ok(record) => record,
        Err(e) => return run_error(e),
    };
    if opts.profile {
        let delta = phase::delta(&before, &phase::snapshot());
        record.meta.extend(profile_meta(&delta));
    }
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = write_record(dir, &record) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = emit(dataset, &record, opts.output) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if opts.profile {
        eprintln!();
        eprintln!("phase profile (whole invocation):");
        for t in phase::snapshot() {
            eprintln!(
                "  {:<12} {:>10.3}ms over {:>5} spans",
                t.phase.name(),
                t.micros as f64 / 1000.0,
                t.spans
            );
        }
    }
    ExitCode::SUCCESS
}

/// `trace`: run one workload with event tracing on and export the stream
/// as Chrome trace-event JSON (loadable in `chrome://tracing` or
/// Perfetto). The report is byte-identical to an untraced run — printed
/// alongside the event counts so the invariant is visible.
fn cmd_trace(args: &[String]) -> ExitCode {
    use retcon_workloads::{System, Workload, MAX_SIM_CORES};
    let mut workload = None;
    let mut system = System::Retcon;
    let mut cores = 32usize;
    let mut seed = 42u64;
    let mut shards = 1usize;
    let mut out = PathBuf::from("trace.json");
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--workload" | "-w" => match value(i).and_then(|v| Workload::parse(v)) {
                Some(w) => workload = Some(w),
                None => return usage(),
            },
            "--system" | "-s" => match value(i).and_then(|v| System::parse(v)) {
                Some(s) => system = s,
                None => return usage(),
            },
            "--cores" | "-c" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cores = n,
                _ => return usage(),
            },
            "--seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--shards" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => return usage(),
            },
            "--out" | "-o" => match value(i) {
                Some(v) => out = PathBuf::from(v),
                None => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    let Some(workload) = workload else {
        return usage();
    };
    if cores > MAX_SIM_CORES {
        eprintln!("--cores {cores} exceeds the widest CoreSet size class ({MAX_SIM_CORES} cores)");
        return ExitCode::FAILURE;
    }
    let spec = workload.build(cores, seed);
    let (report, tracer) = match retcon_workloads::run_spec_traced_sized(
        &spec,
        system,
        cores,
        shards,
        retcon_obs::ring::DEFAULT_CAPACITY,
    ) {
        Ok(pair) => pair,
        Err(e) => return run_error(e),
    };
    if let Err(e) = std::fs::write(&out, retcon_obs::chrome::to_chrome_json(&tracer)) {
        eprintln!("writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} events, {} dropped, stream hash {:016x})",
        out.display(),
        tracer.len(),
        tracer.dropped(),
        tracer.stream_hash()
    );
    for kind in retcon_obs::EventKind::ALL {
        let n = tracer.count(kind);
        if n > 0 {
            println!("  {:<12} {n}", kind.name());
        }
    }
    println!(
        "report: {} cycles, {} commits, {} aborts, {} stalls",
        report.cycles,
        report.protocol.commits,
        report.protocol.aborts(),
        report.protocol.stalls
    );
    ExitCode::SUCCESS
}

/// The datasets the full check table reads.
fn checked_datasets(checks: &[Check]) -> Vec<Dataset> {
    let mut datasets: Vec<Dataset> = Vec::new();
    for check in checks {
        if !datasets.contains(&check.dataset) {
            datasets.push(check.dataset);
        }
    }
    datasets
}

fn load_or_collect(
    dataset: Dataset,
    in_dir: Option<&Path>,
    jobs: usize,
    cache: &ReportCache,
) -> Result<ExperimentRecord, String> {
    if let Some(dir) = in_dir {
        let path = dir.join(format!("{}.json", dataset.name()));
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            return ExperimentRecord::from_json_str(&text)
                .map_err(|e| format!("{}: {e}", path.display()));
        }
    }
    dataset
        .collect_cached(jobs, cache)
        .map_err(|e| format!("{}: {e}", dataset.name()))
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut jobs = 1usize;
    let mut in_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--jobs" | "-j" => {
                let Some(v) = args
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| (1..=256).contains(n))
                else {
                    return usage();
                };
                jobs = v;
                i += 2;
            }
            "--in" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                in_dir = Some(PathBuf::from(v));
                i += 2;
            }
            _ => return usage(),
        }
    }

    let (checks, records) = if quick {
        let records = match checks::quick_records(jobs) {
            Ok(records) => records,
            Err(e) => return run_error(e),
        };
        (checks::quick_checks(), records)
    } else {
        let checks = checks::full_checks();
        let mut records = BTreeMap::new();
        let cache = ReportCache::new();
        for dataset in checked_datasets(&checks) {
            match load_or_collect(dataset, in_dir.as_deref(), jobs, &cache) {
                Ok(record) => {
                    records.insert(dataset.name().to_string(), record);
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (checks, records)
    };

    let outcomes = checks::run_checks(&checks, &records);
    let mut failed = 0;
    for o in &outcomes {
        let status = if o.passed { "PASS" } else { "FAIL" };
        if !o.passed {
            failed += 1;
        }
        println!("{status}  [{:<14}] {}", o.dataset, o.name);
        println!("      {}", o.detail);
    }
    println!();
    if failed == 0 {
        println!(
            "all {} paper-shape checks passed ({})",
            outcomes.len(),
            if quick { "quick subset" } else { "full table" }
        );
        ExitCode::SUCCESS
    } else {
        println!("{failed}/{} paper-shape checks FAILED", outcomes.len());
        ExitCode::FAILURE
    }
}

/// `explore`: run the schedule-exploration campaign suite and emit the
/// record. Exit code reflects the expectation gate — any violation on a
/// correct protocol, or a mutation-test campaign that fails to flag the
/// broken shim, is a failure.
fn cmd_explore(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut rest = Vec::new();
    for a in args {
        if a == "--quick" {
            quick = true;
        } else {
            rest.push(a.clone());
        }
    }
    let opts = match parse_bin_options(&rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let run = crate::explore::run(quick, opts.jobs);
    if let Some(dir) = &opts.out_dir {
        if let Err(e) = write_record(dir, &run.record) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    match opts.output {
        Output::Table => print!("{}", run.summary),
        Output::Json => print!("{}", run.record.to_json_string()),
        Output::Csv => match csv::to_csv(&run.record) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    }
    if run.all_expected {
        ExitCode::SUCCESS
    } else {
        eprintln!("explore: expectation gate failed (see violations above)");
        ExitCode::FAILURE
    }
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut jobs = 1usize;
    let mut out = PathBuf::from("BENCH_hotpath.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" | "-j" => {
                let Some(v) = args
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| (1..=256).contains(n))
                else {
                    return usage();
                };
                jobs = v;
                i += 2;
            }
            "--out" | "-o" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                out = PathBuf::from(v);
                i += 2;
            }
            _ => return usage(),
        }
    }
    let report = match bench::run_bench(jobs) {
        Ok(report) => report,
        Err(e) => return run_error(e),
    };
    for d in &report.datasets {
        println!(
            "{:<16} {:>4} runs  {:>9.3}ms",
            d.name,
            d.runs,
            d.micros as f64 / 1000.0
        );
    }
    println!(
        "total: {} runs in {:.3}s ({} us/run mean, jobs={})",
        report.total_runs(),
        report.total_micros() as f64 / 1e6,
        report.mean_micros_per_run(),
        report.jobs
    );
    // Append to the existing trajectory (a PR 3 single-run v1 file reads
    // as its first entry), so the perf history stays diffable across PRs.
    let mut trajectory = match std::fs::read_to_string(&out) {
        Ok(text) => match bench::BenchTrajectory::from_json_str(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        },
        // Only a genuinely missing file starts a fresh trajectory; any
        // other read failure must not silently overwrite the accumulated
        // history.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => bench::BenchTrajectory::default(),
        Err(e) => {
            eprintln!("reading {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    trajectory.entries.push(report);
    if let Err(e) = std::fs::write(&out, trajectory.to_json_string()) {
        eprintln!("writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} trajectory entries)",
        out.display(),
        trajectory.entries.len()
    );
    ExitCode::SUCCESS
}

/// Compares the last two trajectory entries and warns on regression.
/// Non-gating by design: wall-clock on shared CI runners is noisy, so the
/// exit code is success whenever the file is readable — the warning lines
/// are the signal.
fn cmd_perfdiff(args: &[String]) -> ExitCode {
    let path = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_hotpath.json"));
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("reading {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let trajectory = match bench::BenchTrajectory::from_json_str(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let (lines, _warned) = bench::perfdiff_lines(&trajectory);
    println!("{}:", path.display());
    for line in lines {
        println!("{line}");
    }
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    println!("{:<16} runs  artifact", "dataset");
    // `all` regenerates exactly Dataset::ALL; the chained extras are
    // run-explicitly datasets whose records are not part of that set.
    for dataset in Dataset::ALL.into_iter().chain([Dataset::ScalingXl]) {
        println!(
            "{:<16} {:>4}  {}",
            dataset.name(),
            dataset.jobs().len(),
            dataset.title()
        );
    }
    ExitCode::SUCCESS
}

/// The `retcon-lab` binary entry point.
pub fn lab_main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("all") => cmd_all(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("perfdiff") => cmd_perfdiff(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help" | "-h" | "help") => {
            let _ = usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
