//! The RETCON engine: per-core symbolic tracking and commit-time repair.

use std::collections::BTreeMap;

use retcon_isa::{Addr, BinOp, BlockAddr, CmpOp, Reg};

use crate::config::RetconConfig;
use crate::constraint::Constraint;
use crate::ivb::Ivb;
use crate::predictor::Predictor;
use crate::regfile::SymRegFile;
use crate::ssb::Ssb;
use crate::stats::TxSnapshot;
use crate::sym::SymValue;

/// How a load will be serviced (the left half of the paper's Figure 6
/// flowchart, consulted in order: symbolic store buffer, then initial value
/// buffer, then the memory system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPath {
    /// Forwarded from the symbolic store buffer: no memory access, no
    /// conflict possible. Complete with
    /// [`Engine::finish_forwarded_load`].
    StoreForward {
        /// The buffered concrete value.
        value: u64,
    },
    /// The block is symbolically tracked: the recorded initial value is the
    /// best-guess concrete value, again with no memory access. Complete with
    /// [`Engine::finish_tracked_load`].
    InitialValue {
        /// The initial value recorded when tracking began.
        value: u64,
    },
    /// The load must access the memory system (possibly initiating symbolic
    /// tracking first — ask [`Engine::wants_tracking`]). Complete with
    /// [`Engine::finish_tracked_load`] after
    /// [`Engine::begin_tracking`], or with
    /// [`Engine::finish_memory_load`] for a plain load.
    Memory,
}

/// How a store was handled (the right half of Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorePath {
    /// Recorded in the symbolic store buffer; no memory access until commit.
    Buffered,
    /// A plain store: the protocol performs it through the memory system
    /// with normal conflict detection.
    Normal,
    /// The symbolic store buffer is full: the transaction must abort (the
    /// protocol retries it; Table 3 shows this is rare with 32 entries).
    Overflow,
}

/// A commit-time constraint violation: the final value of `word` no longer
/// satisfies the constraints accumulated during execution, so repair is
/// impossible and the transaction must abort (training the predictor down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The tracked block containing the violating word.
    pub block: BlockAddr,
    /// The violating word.
    pub word: Addr,
}

/// The output of a successful pre-commit repair (Figure 7 step 2): the final
/// concrete values of every buffered store and every symbolic register.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Repair {
    /// `(address, final value)` for each symbolic store buffer entry, in
    /// first-store order. The protocol performs these as ordinary coherent
    /// writes.
    pub stores: Vec<(Addr, u64)>,
    /// `(register, final value)` for each symbolic register. The simulator
    /// writes these into the concrete register file.
    pub registers: Vec<(Reg, u64)>,
}

/// The per-core RETCON engine.
///
/// The engine owns the four hardware structures of Figure 5 — initial value
/// buffer, constraint buffer, symbolic store buffer and symbolic register
/// file — plus the tracking predictor, and implements the Figure 6 operation
/// flowchart and the Figure 7 pre-commit repair algorithm. It is driven by a
/// concurrency-control protocol: the protocol routes every transactional
/// load, store, ALU operation and branch through the engine and runs
/// [`validate_and_repair`](Engine::validate_and_repair) at commit.
///
/// See the crate-level documentation for a worked example.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: RetconConfig,
    ivb: Ivb,
    ssb: Ssb,
    sregs: SymRegFile,
    /// Interval constraints keyed by root word address (deterministic order).
    constraints: BTreeMap<u64, Constraint>,
    predictor: Predictor,
    in_tx: bool,
}

impl Engine {
    /// Creates an engine with the given structure sizes.
    pub fn new(cfg: RetconConfig) -> Self {
        Engine {
            ivb: Ivb::new(cfg.effective_ivb_capacity()),
            ssb: Ssb::new(cfg.effective_ssb_capacity()),
            sregs: SymRegFile::new(),
            constraints: BTreeMap::new(),
            predictor: Predictor::new(cfg.initial_threshold, cfg.violation_backoff),
            cfg,
            in_tx: false,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RetconConfig {
        &self.cfg
    }

    /// The tracking predictor (shared across transactions).
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }

    /// Mutable access to the predictor, for the protocol to train on
    /// conflicts and violations.
    pub fn predictor_mut(&mut self) -> &mut Predictor {
        &mut self.predictor
    }

    /// `true` while a transaction is active.
    pub fn in_tx(&self) -> bool {
        self.in_tx
    }

    /// Starts a transaction: clears all per-transaction symbolic state.
    pub fn begin(&mut self) {
        self.clear_tx_state();
        self.in_tx = true;
    }

    /// Ends the transaction (commit or abort): clears all per-transaction
    /// symbolic state. The predictor survives.
    pub fn reset(&mut self) {
        self.clear_tx_state();
        self.in_tx = false;
    }

    fn clear_tx_state(&mut self) {
        self.ivb.clear();
        self.ssb.clear();
        self.sregs.clear_all();
        self.constraints.clear();
    }

    /// `true` if `block` is symbolically tracked by the current transaction.
    pub fn is_tracking(&self, block: BlockAddr) -> bool {
        self.ivb.contains(block)
    }

    /// Should a memory load from `addr` initiate symbolic tracking? True
    /// when the predictor has learned the block conflicts and the initial
    /// value buffer has room.
    pub fn wants_tracking(&self, addr: Addr) -> bool {
        self.in_tx && self.ivb.has_room() && self.predictor.should_track(addr.block())
    }

    /// Classifies a load per the Figure 6 flowchart (symbolic store buffer,
    /// then initial value buffer, then memory).
    pub fn load_path(&self, addr: Addr) -> LoadPath {
        if let Some(e) = self.ssb.lookup(addr) {
            return LoadPath::StoreForward { value: e.value };
        }
        if let Some(v) = self.ivb.initial(addr) {
            return LoadPath::InitialValue { value: v };
        }
        LoadPath::Memory
    }

    /// Fused Figure 6 load: classifies *and* completes a load serviced by
    /// the symbolic store buffer or the initial value buffer in a single
    /// pass over each structure, returning the concrete value. Returns
    /// `None` when the load must go to memory ([`LoadPath::Memory`]) —
    /// the caller then accesses the memory system and finishes with
    /// [`begin_tracking`](Engine::begin_tracking)/
    /// [`finish_tracked_load`](Engine::finish_tracked_load) or
    /// [`finish_memory_load`](Engine::finish_memory_load).
    ///
    /// Behaviorally identical to [`load_path`](Engine::load_path) followed
    /// by the matching `finish_*` call; this entry point exists because the
    /// split API looks each buffer up twice, and the protocol read path is
    /// the hottest loop in the simulator.
    pub fn transactional_load(&mut self, dst: Reg, addr: Addr) -> Option<u64> {
        if let Some(e) = self.ssb.lookup(addr) {
            let (value, sym) = (e.value, e.sym);
            self.sregs.set(dst, sym);
            return Some(value);
        }
        if let Some(v) = self.ivb.initial(addr) {
            self.sregs.set(dst, Some(SymValue::root(addr)));
            return Some(v);
        }
        None
    }

    /// Starts symbolic tracking of `block`, capturing initial word values
    /// via `read_word`. Returns `false` if the initial value buffer is full.
    pub fn begin_tracking(&mut self, block: BlockAddr, read_word: impl FnMut(Addr) -> u64) -> bool {
        debug_assert!(self.in_tx, "tracking outside a transaction");
        self.ivb.allocate(block, read_word)
    }

    /// Completes a load serviced by the symbolic store buffer: copies the
    /// entry's concrete and symbolic values into `dst` (§4.3's collapsed
    /// store-to-load forwarding). Returns the concrete value.
    ///
    /// # Panics
    ///
    /// Panics if `addr` has no buffer entry (callers must have observed
    /// [`LoadPath::StoreForward`]).
    pub fn finish_forwarded_load(&mut self, dst: Reg, addr: Addr) -> u64 {
        let e = *self
            .ssb
            .lookup(addr)
            .expect("finish_forwarded_load without an SSB entry");
        self.sregs.set(dst, e.sym);
        e.value
    }

    /// Completes a load from a symbolically tracked block: `dst` receives
    /// the recorded initial value and the symbolic tag `[addr] + 0`.
    ///
    /// # Panics
    ///
    /// Panics if `addr`'s block is not tracked.
    pub fn finish_tracked_load(&mut self, dst: Reg, addr: Addr) -> u64 {
        let v = self
            .ivb
            .initial(addr)
            .expect("finish_tracked_load on an untracked block");
        self.sregs.set(dst, Some(SymValue::root(addr)));
        v
    }

    /// Completes a plain memory load: `dst` holds a concrete value with no
    /// symbolic tag.
    pub fn finish_memory_load(&mut self, dst: Reg, _value: u64) {
        self.sregs.clear(dst);
    }

    /// Notes that `dst` was overwritten with an immediate (clearing any
    /// symbolic tag).
    pub fn on_imm(&mut self, dst: Reg) {
        self.sregs.clear(dst);
    }

    /// Propagates a register-to-register move, copying the symbolic tag.
    pub fn on_mov(&mut self, dst: Reg, src: Reg) {
        let s = self.sregs.get(src);
        self.sregs.set(dst, s);
    }

    /// Executes an ALU operation symbolically. `rhs` is `None` for an
    /// immediate operand. Returns the concrete result (`op.apply`), having
    /// updated `dst`'s symbolic tag and recorded any equality constraints
    /// forced by untrackable computation (§4.2).
    pub fn on_alu(
        &mut self,
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> u64 {
        let result = op.apply(lhs_val, rhs_val);
        if !self.in_tx {
            return result;
        }
        let lsym = self.sregs.get(lhs);
        let mut rsym = rhs.and_then(|r| self.sregs.get(r));
        // Invariant: at most one symbolic input per operation. If both are
        // symbolic, the right input is pinned with an equality constraint
        // and treated as concrete (§4.2, "if an operation has multiple
        // symbolic values as inputs, equality constraints are set on all but
        // one").
        if lsym.is_some() && rsym.is_some() {
            self.pin_equality(rsym.expect("checked").root_addr());
            rsym = None;
        }
        let out = match (lsym, rsym) {
            (None, None) => None,
            (Some(ls), None) => match op {
                BinOp::Add => Some(ls.add(rhs_val as i64)),
                BinOp::Sub => Some(ls.add((rhs_val as i64).wrapping_neg())),
                _ => {
                    self.pin_equality(ls.root_addr());
                    None
                }
            },
            (None, Some(rs)) => match op {
                // sym on the right: only addition commutes into the offset.
                BinOp::Add => Some(rs.add(lhs_val as i64)),
                _ => {
                    self.pin_equality(rs.root_addr());
                    None
                }
            },
            (Some(_), Some(_)) => unreachable!("right symbolic input was pinned"),
        };
        self.sregs.set(dst, out);
        result
    }

    /// Evaluates a branch symbolically. Returns the concrete outcome
    /// (`cmp.apply`), having recorded the control-flow constraint on the
    /// symbolic operand's root location (§4.2, "symbolic control-flow
    /// constraints").
    pub fn on_branch(
        &mut self,
        cmp: CmpOp,
        lhs: Reg,
        rhs: Option<Reg>,
        lhs_val: u64,
        rhs_val: u64,
    ) -> bool {
        let outcome = cmp.apply(lhs_val, rhs_val);
        if !self.in_tx {
            return outcome;
        }
        let lsym = self.sregs.get(lhs);
        let mut rsym = rhs.and_then(|r| self.sregs.get(r));
        if lsym.is_some() && rsym.is_some() {
            self.pin_equality(rsym.expect("checked").root_addr());
            rsym = None;
        }
        if let Some(ls) = lsym {
            self.add_branch_constraint(ls, cmp, rhs_val, outcome);
        } else if let Some(rs) = rsym {
            // k cmp sym  ⇔  sym cmp.swap() k.
            self.add_branch_constraint(rs, cmp.swap(), lhs_val, outcome);
        }
        outcome
    }

    /// Pins the root of `reg`'s symbolic value with an equality constraint
    /// because the register is about to be used as an address (§4.2:
    /// equality constraints on "the address calculation of loads or stores,
    /// but, critically, not the data input of store instructions").
    pub fn concretize_addr_reg(&mut self, reg: Reg) {
        if !self.in_tx {
            return;
        }
        if let Some(s) = self.sregs.get(reg) {
            self.pin_equality(s.root_addr());
        }
    }

    /// Executes a store per the Figure 6 flowchart: buffered symbolically if
    /// the value carries a symbolic tag or the target block is tracked;
    /// otherwise a normal store (which invalidates any stale buffer entry
    /// for the word).
    pub fn on_store(&mut self, addr: Addr, src: Option<Reg>, value: u64) -> StorePath {
        if !self.in_tx {
            return StorePath::Normal;
        }
        let sym = src.and_then(|r| self.sregs.get(r));
        if sym.is_some() || self.ivb.contains(addr.block()) {
            match self.ssb.insert(addr, value, sym) {
                Ok(()) => {
                    if self.ivb.contains(addr.block()) {
                        // §4.4: reacquire with write permission at commit.
                        self.ivb.mark_written(addr.block());
                    }
                    StorePath::Buffered
                }
                Err(_) => StorePath::Overflow,
            }
        } else {
            self.ssb.invalidate(addr);
            StorePath::Normal
        }
    }

    /// Notes that a remote request stole tracked `block`. Execution simply
    /// continues on the recorded initial values; the steal is remembered for
    /// the Table 3 "blocks lost" statistic and the commit-time reacquire.
    pub fn on_steal(&mut self, block: BlockAddr) {
        self.ivb.mark_lost(block);
    }

    /// The blocks the pre-commit process must reacquire, with the §4.4
    /// written-bit hint (`true` = acquire write permission directly because
    /// commit-time stores target the block).
    pub fn precommit_blocks(&self) -> Vec<(BlockAddr, bool)> {
        self.ivb
            .iter()
            .map(|e| (e.block(), e.is_written()))
            .collect()
    }

    /// Word addresses of buffered stores to *untracked* blocks, which the
    /// commit process must acquire write permission for.
    pub fn precommit_store_blocks(&self) -> Vec<BlockAddr> {
        let mut blocks = Vec::new();
        self.collect_precommit_store_blocks(&mut blocks);
        blocks
    }

    /// [`precommit_store_blocks`](Engine::precommit_store_blocks) into a
    /// caller-owned scratch buffer (cleared first), so steady-state commits
    /// reuse one allocation instead of collecting a fresh `Vec`.
    pub fn collect_precommit_store_blocks(&self, out: &mut Vec<BlockAddr>) {
        out.clear();
        out.extend(
            self.ssb
                .iter()
                .map(|e| e.addr.block())
                .filter(|b| !self.ivb.contains(*b)),
        );
        out.sort_by_key(|b| b.0);
        out.dedup();
    }

    /// Runs the Figure 7 pre-commit repair algorithm.
    ///
    /// Step 1: reads the final value of every word of every tracked block
    /// via `read_word` (the protocol has already reacquired the blocks) and
    /// checks every constraint — per-word equality bits and interval
    /// constraints — against the final values.
    ///
    /// Step 2: evaluates every symbolic store buffer entry and every
    /// symbolic register against the final values, producing the [`Repair`]
    /// the protocol applies to memory and the register file.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] (in address order) if any final value
    /// fails its constraints; the transaction must abort and the predictor
    /// should be trained down via
    /// [`Predictor::on_violation`](crate::Predictor::on_violation).
    pub fn validate_and_repair(
        &mut self,
        read_word: impl FnMut(Addr) -> u64,
    ) -> Result<Repair, Violation> {
        let mut out = Repair::default();
        self.validate_and_repair_into(read_word, &mut out)?;
        Ok(out)
    }

    /// [`validate_and_repair`](Engine::validate_and_repair) into a
    /// caller-owned [`Repair`] (its vectors are cleared and refilled), so
    /// steady-state commits reuse the repair buffers instead of allocating
    /// fresh ones every transaction.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] in address order, exactly as
    /// [`validate_and_repair`](Engine::validate_and_repair) does.
    pub fn validate_and_repair_into(
        &mut self,
        mut read_word: impl FnMut(Addr) -> u64,
        out: &mut Repair,
    ) -> Result<(), Violation> {
        out.stores.clear();
        out.registers.clear();
        // Step 1a: capture final values (same visit order as the old
        // collect-then-set loop: entries in allocation order, words
        // ascending).
        self.ivb.capture_currents(&mut read_word);
        // Step 1b: equality bits.
        for e in self.ivb.iter() {
            for w in e.block().words() {
                if e.has_equality(w) && e.current(w) != e.initial(w) {
                    return Err(Violation {
                        block: e.block(),
                        word: w,
                    });
                }
            }
        }
        // Step 1c: interval constraints. A word whose final value equals its
        // initial value trivially satisfies every constraint — execution
        // already took each branch with exactly that value — so the check is
        // skipped. This matters because the §4.4 compressed not-equal
        // representation grows an excluded *interval* over all `≠` bounds,
        // which can otherwise swallow the unchanged value itself.
        for (&w, c) in &self.constraints {
            let addr = Addr(w);
            let cur = self
                .ivb
                .current(addr)
                .expect("constraint root must be tracked");
            let initial = self
                .ivb
                .initial(addr)
                .expect("constraint root must be tracked");
            if cur != initial && !c.satisfied_by(cur) {
                return Err(Violation {
                    block: addr.block(),
                    word: addr,
                });
            }
        }
        // Step 2: evaluate outputs against final values.
        let eval = |sym: SymValue, ivb: &Ivb| -> u64 {
            let root_final = ivb
                .current(sym.root_addr())
                .expect("symbolic root must be tracked");
            sym.eval(root_final)
        };
        out.stores.extend(self.ssb.iter().map(|e| {
            let v = match e.sym {
                Some(s) => eval(s, &self.ivb),
                None => e.value,
            };
            (e.addr, v)
        }));
        out.registers.extend(
            self.sregs
                .iter_symbolic()
                .map(|(r, s)| (r, eval(s, &self.ivb))),
        );
        Ok(())
    }

    /// The Table 3 utilization snapshot of the current transaction
    /// (`commit_cycles` is filled in by the protocol, which owns timing).
    pub fn snapshot(&self) -> TxSnapshot {
        TxSnapshot {
            blocks_lost: self.ivb.lost_count() as u64,
            blocks_tracked: self.ivb.len() as u64,
            symbolic_registers: self.sregs.count_symbolic() as u64,
            private_stores: self.ssb.len() as u64,
            constraint_addrs: (self.constraints.len() + self.ivb.equality_count()) as u64,
            commit_cycles: 0,
        }
    }

    /// Registers an equality constraint on `word` (its final value must
    /// equal its initial value). Exposed for protocols that need to pin
    /// state directly (e.g. on untrackable sub-word accesses).
    pub fn pin_equality(&mut self, word: Addr) {
        let ok = self.ivb.set_equality(word);
        debug_assert!(ok, "equality pin on untracked word {word:?}");
    }

    fn add_branch_constraint(&mut self, sym: SymValue, cmp: CmpOp, bound: u64, taken: bool) {
        let root = sym.root_addr();
        if let Some(c) = self.constraints.get_mut(&root.0) {
            c.add_branch(sym.offset(), cmp, bound, taken);
            return;
        }
        if self.constraints.len() >= self.cfg.effective_constraint_capacity() {
            // Constraint buffer full: fall back to the (stronger, always
            // sound) compressed equality bit.
            self.pin_equality(root);
            return;
        }
        let mut c = Constraint::unconstrained();
        c.add_branch(sym.offset(), cmp, bound, taken);
        self.constraints.insert(root.0, c);
    }

    /// The symbolic tag of `reg`, if any (primarily for tests and
    /// diagnostics).
    pub fn symbolic_value(&self, reg: Reg) -> Option<SymValue> {
        self.sregs.get(reg)
    }

    /// The interval constraint on `word`, if any.
    pub fn constraint(&self, word: Addr) -> Option<&Constraint> {
        self.constraints.get(&word.0)
    }

    /// Read-only access to the initial value buffer.
    pub fn ivb(&self) -> &Ivb {
        &self.ivb
    }

    /// Read-only access to the symbolic store buffer.
    pub fn ssb(&self) -> &Ssb {
        &self.ssb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(RetconConfig::default())
    }

    fn track(eng: &mut Engine, addr: Addr, value: u64) {
        assert!(eng.begin_tracking(addr.block(), |_| value));
    }

    #[test]
    fn counter_increment_repair() {
        // Figure 2(a): two increments to a shared counter, repaired after a
        // remote +2.
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 0);
        let v = eng.finish_tracked_load(Reg(1), a);
        assert_eq!(v, 0);
        assert_eq!(eng.symbolic_value(Reg(1)), Some(SymValue::root(a)));

        let v = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, v, 1);
        let v = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, v, 1);
        assert_eq!(v, 2);
        assert_eq!(eng.symbolic_value(Reg(1)), Some(SymValue::root(a).add(2)));

        assert_eq!(eng.on_store(a, Some(Reg(1)), v), StorePath::Buffered);
        eng.on_steal(a.block());

        let repair = eng.validate_and_repair(|_| 2).unwrap();
        assert_eq!(repair.stores, vec![(a, 4)]);
        assert_eq!(repair.registers, vec![(Reg(1), 4)]);
        let snap = eng.snapshot();
        assert_eq!(snap.blocks_lost, 1);
        assert_eq!(snap.blocks_tracked, 1);
        assert_eq!(snap.private_stores, 1);
    }

    #[test]
    fn figure8_walkthrough() {
        // The paper's Figure 8: A = 5, B = 7 initially.
        let a = Addr(0); // block 0
        let b = Addr(8); // block 1
        let mut eng = engine();
        eng.begin();

        // t1: ld [A] -> r1 (symbolic; IVB captures 5).
        track(&mut eng, a, 5);
        let r1 = eng.finish_tracked_load(Reg(1), a);
        assert_eq!(r1, 5);

        // t2: r2 = r1 + 1 -> concrete 6, symbolic A+1.
        let r2 = eng.on_alu(BinOp::Add, Reg(2), Reg(1), None, r1, 1);
        assert_eq!(r2, 6);
        assert_eq!(eng.symbolic_value(Reg(2)), Some(SymValue::root(a).add(1)));

        // t3: br r2 > 1 taken -> constraint A+1 > 1, i.e. A > 0.
        assert!(eng.on_branch(CmpOp::Gt, Reg(2), None, r2, 1));
        assert_eq!(eng.constraint(a).unwrap().bounds(), (1, u64::MAX));

        // t4: st r2 -> [B]: symbolic store buffer gets (B, 6, A+1).
        assert_eq!(eng.on_store(b, Some(Reg(2)), r2), StorePath::Buffered);

        // t5: ld [B] -> r1 forwards from the SSB (A stolen around now).
        assert_eq!(eng.load_path(b), LoadPath::StoreForward { value: 6 });
        let r1 = eng.finish_forwarded_load(Reg(1), b);
        assert_eq!(r1, 6);
        eng.on_steal(a.block());

        // t6: r1 = r1 + 2 -> concrete 8, symbolic A+3.
        let r1v = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, r1, 2);
        assert_eq!(r1v, 8);
        assert_eq!(eng.symbolic_value(Reg(1)), Some(SymValue::root(a).add(3)));

        // t7: br r1 < 10 taken -> A+3 < 10, i.e. A < 7; combined 0 < A < 7.
        assert!(eng.on_branch(CmpOp::Lt, Reg(1), None, r1v, 10));
        assert_eq!(eng.constraint(a).unwrap().bounds(), (1, 6));

        // t8: st r1 -> [A]: symbolic store (A, 8, A+3).
        assert_eq!(eng.on_store(a, Some(Reg(1)), r1v), StorePath::Buffered);

        // t9: st 0 -> [B]: non-symbolic store to untracked B invalidates the
        // SSB entry and becomes a normal (cache) store.
        assert_eq!(eng.on_store(b, None, 0), StorePath::Normal);
        assert!(eng.ssb().lookup(b).is_none());

        // Commit: remote left A = 6; constraint 0 < 6 < 7 holds; the store
        // to A repairs to 6 + 3 = 9 and r1 repairs to 9.
        let repair = eng
            .validate_and_repair(|w| if w == a { 6 } else { 0 })
            .unwrap();
        assert_eq!(repair.stores, vec![(a, 9)]);
        assert!(repair.registers.contains(&(Reg(1), 9)));
    }

    #[test]
    fn violated_constraint_aborts() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let v = eng.finish_tracked_load(Reg(1), a);
        // Branch r1 < 10 taken: A < 10.
        assert!(eng.on_branch(CmpOp::Lt, Reg(1), None, v, 10));
        // Remote pushed A to 50: violation.
        let err = eng.validate_and_repair(|_| 50).unwrap_err();
        assert_eq!(err.word, a);
        assert_eq!(err.block, a.block());
    }

    #[test]
    fn equality_pin_from_untrackable_op() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let v = eng.finish_tracked_load(Reg(1), a);
        // Multiply is untrackable: result concrete, root pinned.
        let v2 = eng.on_alu(BinOp::Mul, Reg(2), Reg(1), None, v, 3);
        assert_eq!(v2, 15);
        assert_eq!(eng.symbolic_value(Reg(2)), None);
        assert!(eng.ivb().get(a.block()).unwrap().has_equality(a));

        // Unchanged value: commit fine.
        assert!(eng.clone().validate_and_repair(|_| 5).is_ok());
        // Changed value: equality violation.
        assert!(eng.validate_and_repair(|_| 6).is_err());
    }

    #[test]
    fn two_symbolic_inputs_pin_right() {
        let a = Addr(0);
        let b = Addr(8);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        track(&mut eng, b, 7);
        let va = eng.finish_tracked_load(Reg(1), a);
        let vb = eng.finish_tracked_load(Reg(2), b);
        // r3 = r1 + r2: right operand's root (B) gets pinned; result stays
        // symbolic in A.
        let v = eng.on_alu(BinOp::Add, Reg(3), Reg(1), Some(Reg(2)), va, vb);
        assert_eq!(v, 12);
        assert_eq!(eng.symbolic_value(Reg(3)), Some(SymValue::root(a).add(7)));
        assert!(eng.ivb().get(b.block()).unwrap().has_equality(b));
    }

    #[test]
    fn sub_with_symbolic_rhs_pins() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let va = eng.finish_tracked_load(Reg(1), a);
        // r2 = 100 - r1: k - sym is untrackable.
        eng.on_imm(Reg(2));
        let v = eng.on_alu(BinOp::Sub, Reg(3), Reg(2), Some(Reg(1)), 100, va);
        assert_eq!(v, 95);
        assert_eq!(eng.symbolic_value(Reg(3)), None);
        assert!(eng.ivb().get(a.block()).unwrap().has_equality(a));
    }

    #[test]
    fn sym_plus_concrete_reg_tracks() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let va = eng.finish_tracked_load(Reg(1), a);
        eng.on_imm(Reg(2));
        // r3 = r2(=10) + r1: addition commutes into offset, giving [A]+10.
        let v = eng.on_alu(BinOp::Add, Reg(3), Reg(2), Some(Reg(1)), 10, va);
        assert_eq!(v, 15);
        assert_eq!(eng.symbolic_value(Reg(3)), Some(SymValue::root(a).add(10)));
    }

    #[test]
    fn subtraction_tracks_on_left() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 10);
        let v = eng.finish_tracked_load(Reg(1), a);
        let v = eng.on_alu(BinOp::Sub, Reg(1), Reg(1), None, v, 3);
        assert_eq!(v, 7);
        assert_eq!(eng.symbolic_value(Reg(1)), Some(SymValue::root(a).add(-3)));
        eng.on_store(a, Some(Reg(1)), v);
        // Remote set A to 100: repairs to 97.
        let repair = eng.validate_and_repair(|_| 100).unwrap();
        assert_eq!(repair.stores, vec![(a, 97)]);
    }

    #[test]
    fn address_use_pins_symbolic_register() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let _ = eng.finish_tracked_load(Reg(1), a);
        eng.concretize_addr_reg(Reg(1));
        assert!(eng.ivb().get(a.block()).unwrap().has_equality(a));
        // The tag itself survives (the constraint guarantees consistency).
        assert!(eng.symbolic_value(Reg(1)).is_some());
    }

    #[test]
    fn mov_and_imm_propagate_tags() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let _ = eng.finish_tracked_load(Reg(1), a);
        eng.on_mov(Reg(2), Reg(1));
        assert_eq!(eng.symbolic_value(Reg(2)), Some(SymValue::root(a)));
        eng.on_imm(Reg(2));
        assert_eq!(eng.symbolic_value(Reg(2)), None);
    }

    #[test]
    fn store_to_tracked_block_always_buffers() {
        let a = Addr(0);
        let a2 = Addr(1); // same block
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        // Non-symbolic store to a tracked block still buffers (Figure 6).
        assert_eq!(eng.on_store(a2, None, 42), StorePath::Buffered);
        // Later load forwards the buffered value, not the initial one.
        assert_eq!(eng.load_path(a2), LoadPath::StoreForward { value: 42 });
        // The block is marked for write-permission reacquire.
        assert!(eng.ivb().get(a.block()).unwrap().is_written());
        // Commit replays the store with its concrete value.
        let repair = eng
            .validate_and_repair(|w| if w == a { 9 } else { 0 })
            .unwrap();
        assert_eq!(repair.stores, vec![(a2, 42)]);
    }

    #[test]
    fn store_outside_tx_is_normal() {
        let mut eng = engine();
        assert_eq!(eng.on_store(Addr(0), None, 1), StorePath::Normal);
    }

    #[test]
    fn ssb_overflow_reported() {
        let cfg = RetconConfig {
            ssb_capacity: 1,
            ..RetconConfig::default()
        };
        let mut eng = Engine::new(cfg);
        eng.begin();
        track(&mut eng, Addr(0), 5);
        assert_eq!(eng.on_store(Addr(0), None, 1), StorePath::Buffered);
        assert_eq!(eng.on_store(Addr(1), None, 2), StorePath::Overflow);
        // Overwriting the existing entry is still fine.
        assert_eq!(eng.on_store(Addr(0), None, 3), StorePath::Buffered);
    }

    #[test]
    fn ivb_capacity_disables_tracking() {
        let cfg = RetconConfig {
            ivb_capacity: 1,
            initial_threshold: 0, // track everything
            ..RetconConfig::default()
        };
        let mut eng = Engine::new(cfg);
        eng.begin();
        assert!(eng.wants_tracking(Addr(0)));
        track(&mut eng, Addr(0), 5);
        // Buffer full: further blocks are not tracked.
        assert!(!eng.wants_tracking(Addr(8)));
        assert!(!eng.begin_tracking(Addr(8).block(), |_| 0));
    }

    #[test]
    fn constraint_buffer_overflow_falls_back_to_equality() {
        let cfg = RetconConfig {
            constraint_capacity: 1,
            ivb_capacity: 4,
            ..RetconConfig::default()
        };
        let mut eng = Engine::new(cfg);
        eng.begin();
        let a = Addr(0);
        let b = Addr(8);
        track(&mut eng, a, 5);
        track(&mut eng, b, 7);
        let va = eng.finish_tracked_load(Reg(1), a);
        let vb = eng.finish_tracked_load(Reg(2), b);
        // First branch claims the only constraint entry.
        eng.on_branch(CmpOp::Lt, Reg(1), None, va, 100);
        assert!(eng.constraint(a).is_some());
        // Second branch on a different root falls back to an equality bit.
        eng.on_branch(CmpOp::Lt, Reg(2), None, vb, 100);
        assert!(eng.constraint(b).is_none());
        assert!(eng.ivb().get(b.block()).unwrap().has_equality(b));
        // B changed: equality violation even though the branch would still
        // go the same way (conservative fallback).
        assert!(eng
            .validate_and_repair(|w| if w == b { 8 } else { 5 })
            .is_err());
    }

    #[test]
    fn repeated_loads_of_tracked_block_see_initial_value() {
        let a = Addr(0);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let _ = eng.finish_tracked_load(Reg(1), a);
        eng.on_steal(a.block());
        // After the steal the initial value is still served.
        assert_eq!(eng.load_path(a), LoadPath::InitialValue { value: 5 });
        let v = eng.finish_tracked_load(Reg(2), a);
        assert_eq!(v, 5);
    }

    #[test]
    fn reset_clears_transactional_state_keeps_predictor() {
        let a = Addr(0);
        let mut eng = engine();
        eng.predictor_mut().on_conflict(a.block());
        eng.begin();
        track(&mut eng, a, 5);
        let _ = eng.finish_tracked_load(Reg(1), a);
        eng.on_store(a, Some(Reg(1)), 5);
        eng.reset();
        assert!(!eng.in_tx());
        assert!(!eng.is_tracking(a.block()));
        assert!(eng.ssb().is_empty());
        assert_eq!(eng.symbolic_value(Reg(1)), None);
        assert!(eng.predictor().should_track(a.block()));
    }

    #[test]
    fn precommit_blocks_report_write_hint() {
        let a = Addr(0);
        let b = Addr(8);
        let c = Addr(16);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 1);
        track(&mut eng, b, 2);
        eng.on_store(a, None, 9); // tracked block A written
        let blocks = eng.precommit_blocks();
        assert_eq!(blocks.len(), 2);
        assert!(blocks.contains(&(a.block(), true)));
        assert!(blocks.contains(&(b.block(), false)));
        // A symbolic store to an untracked block shows up separately.
        let _ = eng.finish_tracked_load(Reg(1), a);
        eng.on_store(c, Some(Reg(1)), 1);
        assert_eq!(eng.precommit_store_blocks(), vec![c.block()]);
    }

    #[test]
    fn snapshot_counts_constraints_and_equalities() {
        let a = Addr(0);
        let b = Addr(8);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        track(&mut eng, b, 7);
        let va = eng.finish_tracked_load(Reg(1), a);
        let vb = eng.finish_tracked_load(Reg(2), b);
        eng.on_branch(CmpOp::Lt, Reg(1), None, va, 100); // interval on A
        eng.on_alu(BinOp::Mul, Reg(3), Reg(2), None, vb, 2); // equality on B
        let snap = eng.snapshot();
        assert_eq!(snap.blocks_tracked, 2);
        assert_eq!(snap.constraint_addrs, 2);
        assert_eq!(snap.symbolic_registers, 2); // r1, r2 still tagged
    }

    #[test]
    fn branch_on_forwarded_value_constrains_root() {
        // Store A+1 to B, load it back, branch on it: constraint must land
        // on A (the flattened root), not on B.
        let a = Addr(0);
        let b = Addr(8);
        let mut eng = engine();
        eng.begin();
        track(&mut eng, a, 5);
        let va = eng.finish_tracked_load(Reg(1), a);
        let v1 = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, va, 1);
        eng.on_store(b, Some(Reg(1)), v1);
        let v2 = eng.finish_forwarded_load(Reg(2), b);
        assert_eq!(v2, 6);
        eng.on_branch(CmpOp::Gt, Reg(2), None, v2, 1);
        assert!(eng.constraint(a).is_some());
        assert!(eng.constraint(b).is_none());
    }
}
