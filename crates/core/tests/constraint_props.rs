//! Property tests for the constraint algebra and symbolic values.
//!
//! The §4.4 interval representation must *never* admit a value the original
//! branch predicates would reject (soundness), and — for the precise
//! `<, ≤, =, >, ≥` operators without offset clamping — must admit exactly
//! the values they accept (the paper claims precision for those).

use proptest::prelude::*;

use retcon::{Constraint, SymValue};
use retcon_isa::{Addr, CmpOp};

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// A branch observation: the symbolic value `[root] + offset` compared
/// against `bound` took direction `taken`.
#[derive(Debug, Clone, Copy)]
struct Obs {
    offset: i64,
    cmp: CmpOp,
    bound: u64,
    taken: bool,
}

fn obs_strategy() -> impl Strategy<Value = Obs> {
    ((-64i64..64), cmp_strategy(), 0u64..4096, any::<bool>()).prop_map(
        |(offset, cmp, bound, taken)| Obs {
            offset,
            cmp,
            bound,
            taken,
        },
    )
}

/// Direct evaluation of an observation against a candidate root value `x`,
/// in the no-wrap domain (mathematical x + offset, defined only when
/// non-negative).
fn direct(obs: Obs, x: u64) -> Option<bool> {
    let shifted = x as i128 + obs.offset as i128;
    if !(0..=u64::MAX as i128).contains(&shifted) {
        return None;
    }
    Some(obs.cmp.apply(shifted as u64, obs.bound) == obs.taken)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Soundness: any value the constraint admits satisfies every recorded
    /// observation (within the no-wrap domain).
    #[test]
    fn interval_is_sound(
        observations in proptest::collection::vec(obs_strategy(), 1..8),
        candidates in proptest::collection::vec(0u64..8192, 16),
    ) {
        let mut c = Constraint::unconstrained();
        for o in &observations {
            c.add_branch(o.offset, o.cmp, o.bound, o.taken);
        }
        for &x in &candidates {
            if c.satisfied_by(x) {
                for o in &observations {
                    if let Some(holds) = direct(*o, x) {
                        prop_assert!(
                            holds,
                            "constraint admitted x={x} but {o:?} rejects it"
                        );
                    }
                }
            }
        }
    }

    /// Precision for ordering operators: without `≠` observations, the
    /// interval admits *every* value all observations accept.
    #[test]
    fn interval_is_precise_without_ne(
        observations in proptest::collection::vec(
            obs_strategy().prop_filter("no Ne/Eq-negation", |o| {
                // The effective operator after negation must not be Ne.
                let eff = if o.taken { o.cmp } else { o.cmp.negate() };
                eff != CmpOp::Ne
            }),
            1..8
        ),
        candidates in proptest::collection::vec(0u64..8192, 16),
    ) {
        let mut c = Constraint::unconstrained();
        for o in &observations {
            c.add_branch(o.offset, o.cmp, o.bound, o.taken);
        }
        for &x in &candidates {
            let all_hold = observations.iter().all(|o| direct(*o, x) == Some(true));
            if all_hold {
                prop_assert!(
                    c.satisfied_by(x),
                    "constraint rejected x={x} though every observation accepts it"
                );
            }
        }
    }

    /// The value observed during execution always satisfies the constraints
    /// it generated (a transaction whose inputs never change must commit).
    #[test]
    fn generating_value_always_satisfies(
        root_value in 0u64..4096,
        branches in proptest::collection::vec(((-64i64..64), cmp_strategy(), 0u64..4096), 1..10),
    ) {
        let mut c = Constraint::unconstrained();
        let mut ne_seen = false;
        for &(offset, cmp, bound) in &branches {
            let shifted = root_value as i128 + offset as i128;
            if !(0..=u64::MAX as i128).contains(&shifted) {
                continue;
            }
            let taken = cmp.apply(shifted as u64, bound);
            let eff = if taken { cmp } else { cmp.negate() };
            ne_seen |= eff == CmpOp::Ne;
            c.add_branch(offset, cmp, bound, taken);
        }
        // With `≠` observations the grown excluded interval may cover the
        // generating value (the engine handles that case by skipping the
        // check for unchanged words); without them it must be admitted.
        if !ne_seen {
            prop_assert!(c.satisfied_by(root_value));
        }
    }

    /// Symbolic evaluation distributes over offset composition.
    #[test]
    fn sym_value_offsets_compose(
        base in any::<u64>(),
        ks in proptest::collection::vec(-1000i64..1000, 0..20),
    ) {
        let mut v = SymValue::root(Addr(0));
        let mut expected = base;
        for &k in &ks {
            v = v.add(k);
            expected = expected.wrapping_add(k as u64);
        }
        prop_assert_eq!(v.eval(base), expected);
    }

    /// Intersection is monotone: a value admitted by the intersection is
    /// admitted by both operands.
    #[test]
    fn intersect_is_conjunction(
        obs_a in proptest::collection::vec(obs_strategy(), 1..5),
        obs_b in proptest::collection::vec(obs_strategy(), 1..5),
        candidates in proptest::collection::vec(0u64..8192, 16),
    ) {
        let mut a = Constraint::unconstrained();
        for o in &obs_a {
            a.add_branch(o.offset, o.cmp, o.bound, o.taken);
        }
        let mut b = Constraint::unconstrained();
        for o in &obs_b {
            b.add_branch(o.offset, o.cmp, o.bound, o.taken);
        }
        let mut both = a;
        both.intersect(&b);
        for &x in &candidates {
            if both.satisfied_by(x) {
                prop_assert!(a.satisfied_by(x));
                prop_assert!(b.satisfied_by(x));
            }
        }
    }
}
