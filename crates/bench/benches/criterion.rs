//! Criterion micro-benchmarks for the RETCON reproduction.
//!
//! These measure the cost of the simulator's building blocks (symbolic
//! tracking, pre-commit repair, coherence accesses) and of complete small
//! workload runs under each system — useful for keeping the harness fast
//! enough that the figure-regeneration binaries stay interactive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use retcon::{Engine, RetconConfig};
use retcon_isa::{Addr, BinOp, Reg};
use retcon_mem::{AccessKind, CoreId, MemConfig, MemorySystem};
use retcon_workloads::{run_spec, System, Workload};

/// Symbolic tracking: one load + N increments + store + repair.
fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.bench_function("track_increment_repair", |b| {
        b.iter(|| {
            let mut eng = Engine::new(RetconConfig::default());
            eng.begin();
            let a = Addr(0);
            eng.begin_tracking(a.block(), |_| 0);
            let mut v = eng.finish_tracked_load(Reg(1), a);
            for _ in 0..16 {
                v = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, v, 1);
            }
            eng.on_store(a, Some(Reg(1)), v);
            eng.on_steal(a.block());
            let repair = eng.validate_and_repair(|_| 100).expect("repairs");
            black_box(repair);
        })
    });
    group.bench_function("alu_symbolic_propagation", |b| {
        let mut eng = Engine::new(RetconConfig::default());
        eng.begin();
        eng.begin_tracking(Addr(0).block(), |_| 7);
        let v = eng.finish_tracked_load(Reg(1), Addr(0));
        b.iter(|| {
            black_box(eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, black_box(v), 1));
        })
    });
    group.finish();
}

/// Coherence substrate: hits, misses, invalidations.
fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory");
    group.bench_function("l1_hit", |b| {
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
        ms.access(CoreId(0), Addr(0), AccessKind::Read, false);
        b.iter(|| black_box(ms.access(CoreId(0), Addr(0), AccessKind::Read, false)));
    });
    group.bench_function("write_invalidate_pingpong", |b| {
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
        b.iter(|| {
            black_box(ms.access(CoreId(0), Addr(0), AccessKind::Write, false));
            black_box(ms.access(CoreId(1), Addr(0), AccessKind::Write, false));
        });
    });
    group.finish();
}

/// End-to-end: the counter micro-benchmark at 4 cores under each system.
fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_4core");
    group.sample_size(10);
    for system in [System::Eager, System::LazyVb, System::Retcon] {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.label()),
            &system,
            |b, &system| {
                let spec = Workload::Counter.build(4, 42);
                b.iter(|| black_box(run_spec(&spec, system, 4).expect("runs")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_memory, bench_workloads);
criterion_main!(benches);
