//! Cross-protocol equivalence: for workloads whose transactions *commute*
//! (pure additive updates), every protocol must produce bit-identical final
//! memory — the serialization order cannot matter, so any deviation is a
//! lost or phantom update in some protocol.

use proptest::prelude::*;

use retcon_isa::{Addr, BinOp, CmpOp, Operand, Program, ProgramBuilder, Reg};
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::{SplitMix64, System};

/// Each transaction adds tape-provided deltas to `updates` counters chosen
/// by tape-provided indices (mod `pool`), with optional work between them.
fn additive_program(pool: u64, iters: u64, updates: u32, work: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let body = b.block();
    let done = b.block();
    b.imm(Reg(0), iters);
    b.jump(body);
    b.select(body);
    b.tx_begin();
    for _ in 0..updates {
        b.input(Reg(1)); // counter index
        b.input(Reg(2)); // delta
        b.bin(BinOp::Mod, Reg(1), Reg(1), Operand::Imm(pool as i64));
        b.bin(BinOp::Shl, Reg(1), Reg(1), Operand::Imm(3));
        b.load(Reg(3), Reg(1), 0);
        b.bin(BinOp::Add, Reg(3), Reg(3), Operand::Reg(Reg(2)));
        b.store(Operand::Reg(Reg(3)), Reg(1), 0);
        if work > 0 {
            b.work(work);
        }
    }
    b.tx_commit();
    b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
    b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
    b.select(done);
    b.halt();
    b.build().expect("program is well-formed")
}

/// Runs the additive workload under `system` and returns the final counter
/// values.
fn final_state(
    system: System,
    cores: usize,
    pool: u64,
    iters: u64,
    updates: u32,
    work: u32,
    seed: u64,
) -> Vec<u64> {
    let mut machine = Machine::new(
        SimConfig::with_cores(cores),
        system.protocol(cores),
        (0..cores)
            .map(|_| additive_program(pool, iters, updates, work))
            .collect(),
    );
    let mut rng = SplitMix64::new(seed);
    for c in 0..cores {
        let tape: Vec<u64> = (0..2 * iters * updates as u64)
            .map(|i| {
                if i % 2 == 0 {
                    rng.next_u64() >> 8 // index
                } else {
                    rng.below(50) // small delta
                }
            })
            .collect();
        machine.set_tape(c, tape);
    }
    machine.run().expect("run completes");
    (0..pool).map(|i| machine.mem().read_word(Addr(i * 8))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Commutative workloads end in the same state under every protocol —
    /// and that state equals the oracle sum of all deltas.
    #[test]
    fn additive_workloads_agree_across_protocols(
        cores in 2usize..5,
        pool in 1u64..4,
        updates in 1u32..3,
        work in 0u32..20,
        seed in any::<u64>(),
    ) {
        let iters = 8u64;
        // Oracle: replay the tapes directly.
        let mut oracle = vec![0u64; pool as usize];
        let mut rng = SplitMix64::new(seed);
        for _ in 0..cores {
            for _ in 0..iters * updates as u64 {
                let idx = (rng.next_u64() >> 8) % pool;
                let delta = rng.below(50);
                oracle[idx as usize] = oracle[idx as usize].wrapping_add(delta);
            }
        }
        for system in [
            System::Eager,
            System::Lazy,
            System::LazyVb,
            System::Retcon,
            System::RetconIdeal,
        ] {
            let state = final_state(system, cores, pool, iters, updates, work, seed);
            prop_assert_eq!(
                &state, &oracle,
                "final state under {} diverges from the oracle", system.label()
            );
        }
    }
}
