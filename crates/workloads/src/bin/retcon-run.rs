//! Command-line workload runner.
//!
//! ```text
//! cargo run --release -p retcon-workloads --bin retcon-run -- \
//!     --workload genome-sz --system RetCon --cores 16 --seed 42
//! ```
//!
//! Runs one workload under one hardware configuration and prints the
//! simulator's report: cycles, speedup over the sequential baseline,
//! commit/abort/stall counts, the time breakdown, and — under RETCON — the
//! Table 3 structure-utilization statistics.
//!
//! `--json` instead emits the run as a machine-readable record in exactly
//! the `retcon-lab` `RunRecord` JSON shape (workload/system/cores/seed
//! context plus the full [`retcon_sim::SimReport`] serialization), so ad-hoc
//! runs can be concatenated with harness-generated result sets.

use std::process::ExitCode;

use retcon_sim::json::Json;
use retcon_sim::SimConfig;
use retcon_workloads::{run_spec_configured, sequential_baseline, System, Workload};

fn usage() -> ExitCode {
    eprintln!(
        "usage: retcon-run --workload <name> [--system <name>] [--cores <n>] [--seed <n>] \
         [--schedule-seed <n>] [--json]"
    );
    eprintln!();
    let names: Vec<&str> = Workload::all().iter().map(|w| w.label()).collect();
    eprintln!("workloads: {}", names.join(", "));
    eprintln!("systems:   eager, eager-abort, lazy, lazy-vb, RetCon, RetCon-ideal, datm");
    eprintln!();
    eprintln!("--schedule-seed fuzzes the instruction interleaving (seeded, reproducible);");
    eprintln!("omitting it keeps the deterministic min-heap schedule");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut workload = None;
    let mut system = System::Retcon;
    let mut cores = 32usize;
    let mut seed = 42u64;
    let mut schedule_seed = None;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--workload" | "-w" => match value(i).and_then(|v| Workload::parse(v)) {
                Some(w) => workload = Some(w),
                None => return usage(),
            },
            "--system" | "-s" => match value(i).and_then(|v| System::parse(v)) {
                Some(s) => system = s,
                None => return usage(),
            },
            "--cores" | "-c" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) if (1..=1024).contains(&n) => cores = n,
                _ => return usage(),
            },
            "--seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--schedule-seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) => schedule_seed = Some(n),
                None => return usage(),
            },
            "--json" => {
                json = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 2;
    }
    let Some(workload) = workload else {
        return usage();
    };

    let seq = match sequential_baseline(workload, seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sequential baseline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = workload.build(cores, seed);
    let mut cfg = SimConfig::with_cores(cores);
    cfg.schedule_seed = schedule_seed;
    let report = match run_spec_configured(&spec, system.protocol(cores), cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        // The `retcon-lab` RunRecord shape; a fuzzed schedule is recorded
        // as a knob so the run stays replayable from its record alone.
        let knobs = match schedule_seed {
            Some(s) => vec![Json::Arr(vec![
                Json::str("schedule-seed"),
                Json::str(&s.to_string()),
            ])],
            None => Vec::new(),
        };
        let record = Json::obj(vec![
            ("workload", Json::str(workload.label())),
            ("system", Json::str(system.label())),
            ("cores", Json::UInt(cores as u64)),
            ("seed", Json::UInt(seed)),
            ("knobs", Json::Arr(knobs)),
            ("seq_cycles", Json::UInt(seq)),
            ("report", report.to_json()),
        ]);
        print!("{}", record.to_pretty_string());
        return ExitCode::SUCCESS;
    }

    println!("workload   {}", workload.label());
    println!("system     {}", system.label());
    println!("cores      {cores}");
    println!("seed       {seed}");
    if let Some(s) = schedule_seed {
        println!("schedule   fuzzed (seed {s})");
    }
    println!();
    println!("cycles     {} (sequential: {seq})", report.cycles);
    println!("speedup    {:.2}x", report.speedup_over(seq));
    println!(
        "txs        {} commits, {} aborts ({} conflict / {} validation / {} overflow / {} cycle), {} stalls",
        report.protocol.commits,
        report.protocol.aborts(),
        report.protocol.aborts_conflict,
        report.protocol.aborts_validation,
        report.protocol.aborts_overflow,
        report.protocol.aborts_cycle,
        report.protocol.stalls,
    );
    let b = report.breakdown();
    let (busy, conflict, barrier, other) = b.fractions();
    println!(
        "breakdown  busy {:.1}% | conflict {:.1}% | barrier {:.1}% | other {:.1}%",
        100.0 * busy,
        100.0 * conflict,
        100.0 * barrier,
        100.0 * other
    );
    if let Some(rs) = &report.retcon {
        println!();
        println!("RETCON structures (avg / max per committed tx):");
        println!(
            "  blocks lost        {:.1} / {}",
            rs.avg_blocks_lost(),
            rs.max.blocks_lost
        );
        println!(
            "  blocks tracked     {:.1} / {}",
            rs.avg_blocks_tracked(),
            rs.max.blocks_tracked
        );
        println!(
            "  symbolic registers {:.1} / {}",
            rs.avg_symbolic_registers(),
            rs.max.symbolic_registers
        );
        println!(
            "  private stores     {:.1} / {}",
            rs.avg_private_stores(),
            rs.max.private_stores
        );
        println!(
            "  constraint addrs   {:.1} / {}",
            rs.avg_constraint_addrs(),
            rs.max.constraint_addrs
        );
        println!(
            "  commit cycles      {:.1} / {} ({:.2}% of tx lifetime); {} violations",
            rs.avg_commit_cycles(),
            rs.max.commit_cycles,
            rs.commit_stall_percent(),
            rs.violations
        );
    }
    ExitCode::SUCCESS
}
