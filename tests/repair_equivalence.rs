//! The paper's core correctness claim, as a property test:
//!
//! *"As long as changes in values do not result in control flow changes,
//! the output thus produced will be the same as if the transaction had
//! executed using those input values in the first place."* (§4)
//!
//! We generate random straight-line transactions over a few symbolic
//! locations — loads, add/sub (and occasionally untrackable) arithmetic,
//! branches, stores — execute them through the RETCON engine against
//! *initial* values, steal every block, and repair against *final* values.
//! Whenever the engine accepts the commit, the repaired outputs must equal
//! the outputs of an oracle interpreter that re-executes the same program
//! directly against the final values. Whenever the oracle's control flow
//! would have differed, the engine must have rejected the commit.

use proptest::prelude::*;

use retcon::{Engine, LoadPath, RetconConfig, StorePath};
use retcon_isa::{Addr, BinOp, CmpOp, Reg};

/// One step of a generated transaction.
#[derive(Debug, Clone)]
enum Step {
    /// `reg[dst] <- mem[loc]` (symbolic location index).
    Load { dst: u8, loc: u8 },
    /// `reg[dst] <- reg[dst] op k`.
    Alu { dst: u8, op: BinOp, k: u8 },
    /// Branch on `reg[src] cmp k` (outcome recorded, both paths fall
    /// through — straight-line control flow keeps the oracle simple while
    /// still generating every kind of constraint).
    Branch { src: u8, cmp: CmpOp, k: u8 },
    /// `mem[loc] <- reg[src]`.
    Store { src: u8, loc: u8 },
}

const NUM_LOCS: usize = 4;
const NUM_REGS_USED: u8 = 4;

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..NUM_REGS_USED, 0..NUM_LOCS as u8).prop_map(|(dst, loc)| Step::Load { dst, loc }),
        (
            0..NUM_REGS_USED,
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Add),
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Sub),
                Just(BinOp::Mul), // occasionally untrackable
            ],
            0u8..16
        )
            .prop_map(|(dst, op, k)| Step::Alu { dst, op, k }),
        (
            0..NUM_REGS_USED,
            prop_oneof![
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge),
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
            ],
            0u8..200
        )
            .prop_map(|(src, cmp, k)| Step::Branch { src, cmp, k }),
        (0..NUM_REGS_USED, 0..NUM_LOCS as u8).prop_map(|(src, loc)| Step::Store { src, loc }),
    ]
}

/// Word address of symbolic location `i` (each in its own block).
fn loc_addr(i: u8) -> Addr {
    Addr(i as u64 * 8)
}

/// Oracle: directly executes the steps against `mem`, returning the final
/// registers, the memory updates in order, and the branch outcomes.
fn oracle(
    steps: &[Step],
    mem: &[u64; NUM_LOCS],
) -> ([u64; NUM_REGS_USED as usize], Vec<(u8, u64)>, Vec<bool>) {
    let mut mem = *mem;
    let mut regs = [0u64; NUM_REGS_USED as usize];
    let mut stores = Vec::new();
    let mut branches = Vec::new();
    for s in steps {
        match *s {
            Step::Load { dst, loc } => regs[dst as usize] = mem[loc as usize],
            Step::Alu { dst, op, k } => regs[dst as usize] = op.apply(regs[dst as usize], k as u64),
            Step::Branch { src, cmp, k } => branches.push(cmp.apply(regs[src as usize], k as u64)),
            Step::Store { src, loc } => {
                mem[loc as usize] = regs[src as usize];
                stores.push((loc, regs[src as usize]));
            }
        }
    }
    (regs, stores, branches)
}

/// Runs the steps through the RETCON engine against `initial`, then
/// attempts repair against `fin`. Returns `Some((regs, final_mem))` if the
/// engine committed, `None` if it aborted.
fn engine_run(
    steps: &[Step],
    initial: &[u64; NUM_LOCS],
    fin: &[u64; NUM_LOCS],
) -> Option<([u64; NUM_REGS_USED as usize], [u64; NUM_LOCS])> {
    let cfg = RetconConfig {
        initial_threshold: 0, // track everything
        ..RetconConfig::default()
    };
    let mut eng = Engine::new(cfg);
    eng.begin();
    let mut regs = [0u64; NUM_REGS_USED as usize];
    for s in steps {
        match *s {
            Step::Load { dst, loc } => {
                let addr = loc_addr(loc);
                let value = match eng.load_path(addr) {
                    LoadPath::StoreForward { .. } => eng.finish_forwarded_load(Reg(dst), addr),
                    LoadPath::InitialValue { .. } => eng.finish_tracked_load(Reg(dst), addr),
                    LoadPath::Memory => {
                        assert!(eng.begin_tracking(addr.block(), |_| initial[loc as usize]));
                        eng.finish_tracked_load(Reg(dst), addr)
                    }
                };
                regs[dst as usize] = value;
            }
            Step::Alu { dst, op, k } => {
                regs[dst as usize] =
                    eng.on_alu(op, Reg(dst), Reg(dst), None, regs[dst as usize], k as u64);
            }
            Step::Branch { src, cmp, k } => {
                let _ = eng.on_branch(cmp, Reg(src), None, regs[src as usize], k as u64);
            }
            Step::Store { src, loc } => {
                let addr = loc_addr(loc);
                // Store-initiated tracking (as the protocol does for blind
                // writes): a store can precede any load of the block.
                if !eng.is_tracking(addr.block()) {
                    assert!(eng.begin_tracking(addr.block(), |_| initial[loc as usize]));
                }
                match eng.on_store(addr, Some(Reg(src)), regs[src as usize]) {
                    StorePath::Buffered => {}
                    StorePath::Normal => unreachable!("all locations are tracked"),
                    StorePath::Overflow => return None,
                }
            }
        }
    }
    // Steal every block, then repair against the final values.
    for i in 0..NUM_LOCS as u8 {
        eng.on_steal(loc_addr(i).block());
    }
    let repair = eng
        .validate_and_repair(|w| {
            let loc = (w.0 / 8) as usize;
            if w.offset_in_block() == 0 && loc < NUM_LOCS {
                fin[loc]
            } else {
                0
            }
        })
        .ok()?;
    // Apply the repair.
    let mut mem = *fin;
    for (addr, value) in repair.stores {
        mem[(addr.0 / 8) as usize] = value;
    }
    for (reg, value) in repair.registers {
        regs[reg.index()] = value;
    }
    Some((regs, mem))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// If RETCON commits, its outputs equal direct execution against the
    /// final values; if the final values would change control flow, RETCON
    /// must abort.
    #[test]
    fn repair_equals_replay(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        initial in proptest::array::uniform4(100u64..200),
        fin in proptest::array::uniform4(100u64..200),
    ) {
        let (_, _, branches_initial) = oracle(&steps, &initial);
        let (oracle_regs, _, branches_final) = oracle(&steps, &fin);
        let mut oracle_mem = fin;
        let (_, oracle_stores, _) = oracle(&steps, &fin);
        for (loc, v) in oracle_stores {
            oracle_mem[loc as usize] = v;
        }

        match engine_run(&steps, &initial, &fin) {
            Some((regs, mem)) => {
                // The engine committed: control flow must genuinely be
                // unchanged, and outputs must match the replay oracle.
                prop_assert_eq!(
                    &branches_initial, &branches_final,
                    "engine committed across a control-flow change"
                );
                // Registers never written by the program are 0 in both.
                prop_assert_eq!(regs, oracle_regs, "register repair mismatch");
                prop_assert_eq!(mem, oracle_mem, "memory repair mismatch");
            }
            None => {
                // The engine aborted. That is always sound; it must happen
                // whenever control flow changed (completeness may also lose
                // to conservative equality pins, so we only check soundness
                // in the other direction).
            }
        }
    }

    /// With identical initial and final values, the engine must always
    /// commit (nothing changed, so nothing can violate a constraint) and
    /// reproduce direct execution exactly.
    #[test]
    fn unchanged_values_always_commit(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        initial in proptest::array::uniform4(100u64..200),
    ) {
        let (oracle_regs, oracle_stores, _) = oracle(&steps, &initial);
        let mut oracle_mem = initial;
        for (loc, v) in oracle_stores {
            oracle_mem[loc as usize] = v;
        }
        let result = engine_run(&steps, &initial, &initial);
        prop_assert!(result.is_some(), "abort despite unchanged inputs");
        let (regs, mem) = result.expect("checked");
        prop_assert_eq!(regs, oracle_regs);
        prop_assert_eq!(mem, oracle_mem);
    }
}
