//! The resizable-hashtable bottleneck (`genome-sz`), built by hand from the
//! public APIs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hashtable_resize
//! ```
//!
//! This example does not use a canned workload: it assembles its own
//! programs with [`ProgramBuilder`] and the [`HashTable`] emitter, wires
//! them into a [`Machine`] with the protocol of its choice, and inspects
//! final memory — the workflow a user extending this library would follow.
//! Every transaction inserts a distinct key (no semantic conflicts), yet
//! with a size field each insert increments one shared word; the example
//! shows eager collapsing and RETCON not caring, and verifies the size
//! field is exact either way.

use retcon_isa::{Addr, BinOp, CmpOp, Operand, ProgramBuilder, Reg};
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::{HashTable, SplitMix64, System};

const CORES: usize = 16;
const INSERTS_PER_CORE: u64 = 64;
const BUCKETS: u64 = 512;

fn build_program(table: &HashTable, iters: u64) -> retcon_isa::Program {
    let mut b = ProgramBuilder::new();
    let body = b.block();
    let after_insert = b.block();
    let done = b.block();
    b.imm(Reg(0), iters);
    b.jump(body);
    b.select(body);
    b.input(Reg(10)); // the key
    b.tx_begin();
    b.work(500); // the rest of the transaction
    table.emit_insert(&mut b, Reg(10), [Reg(1), Reg(2), Reg(3)], after_insert);
    b.select(after_insert);
    b.tx_commit();
    b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
    b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
    b.select(done);
    b.halt();
    b.build().expect("program is well-formed")
}

fn run(system: System, resizable: bool) -> (u64, u64, u64) {
    // Layout: word 0 = size field (own block), buckets after it.
    let size_addr = Addr(0);
    let table = HashTable::new(Addr(8), BUCKETS, resizable.then_some(size_addr), 1_000_000);
    let mut machine = Machine::new(
        SimConfig::with_cores(CORES),
        system.protocol(CORES),
        (0..CORES)
            .map(|_| build_program(&table, INSERTS_PER_CORE))
            .collect(),
    );
    let mut rng = SplitMix64::new(99);
    for core in 0..CORES {
        let keys: Vec<u64> = (0..INSERTS_PER_CORE).map(|_| rng.next_u64() >> 8).collect();
        machine.set_tape(core, keys);
    }
    let report = machine.run().expect("run completes");
    (
        report.cycles,
        report.protocol.aborts() + report.protocol.stalls,
        machine.mem().read_word(size_addr),
    )
}

fn main() {
    println!("hand-built hashtable inserts, {CORES} cores x {INSERTS_PER_CORE} inserts\n");
    println!(
        "{:<10} {:<10} {:>10} {:>16} {:>11}",
        "table", "system", "cycles", "aborts+stalls", "size field"
    );
    for resizable in [false, true] {
        for system in [System::Eager, System::Retcon] {
            let (cycles, trouble, size) = run(system, resizable);
            println!(
                "{:<10} {:<10} {:>10} {:>16} {:>11}",
                if resizable { "resizable" } else { "fixed" },
                system.label(),
                cycles,
                trouble,
                size
            );
            let expected = if resizable {
                CORES as u64 * INSERTS_PER_CORE
            } else {
                0
            };
            assert_eq!(size, expected, "size field must count every insert exactly");
        }
    }
    println!("\nWith the size field, eager pays for every insert's increment;");
    println!("RETCON repairs the increments and is insensitive to resizability —");
    println!("and the final size is exact under both, because repair is not approximation.");
}
