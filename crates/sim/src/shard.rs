//! Deterministic sharded execution: run disjoint groups of cores on host
//! threads and merge their reports into the exact bytes a serial run
//! produces.
//!
//! # Partition rule
//!
//! Cores are split into `shards` contiguous index ranges
//! ([`shard_ranges`]), each simulated by its own [`Machine`] — private
//! memory system, private protocol instance, private scheduler. Shard `s`
//! simulates global cores `lo..hi` as its local cores `0..hi-lo`; the
//! merge concatenates per-core reports in shard order, which restores the
//! global core numbering without any renumbering step.
//!
//! # Merge contract
//!
//! The serial simulator advances the runnable core with the smallest
//! `(clock, id)` key. If the shards' block footprints are pairwise
//! disjoint, cores in different shards never interact — no directory
//! entry, conflict mask, predictor, or storm certificate is ever shared —
//! so each core's trajectory (its clock, breakdown, instruction count and
//! protocol counters) is a function of its own shard's cores alone. The
//! serial interleaving of two non-interacting shards differs from the
//! shard-local interleaving only in how instruction batches are cut, and
//! batching is observationally invariant (see `Machine::run_core`). Hence:
//!
//! * `per_core` — concatenation in shard order equals the serial vector;
//! * `cycles` — `max` over cores commutes with the partition;
//! * `protocol` / `retcon` — per-core counters summed with the same
//!   commutative, associative merges the serial reporter uses.
//!
//! # Determinism invariants re-checked at merge time
//!
//! The disjointness premise is *verified, never assumed*: every shard
//! machine records the blocks its cores actually touched
//! ([`Machine::set_track_footprint`]), and [`run_sharded`] compares the
//! footprints pairwise after the runs complete. Any overlap yields
//! [`ShardedOutcome::Overlap`] and the caller must fall back to a serial
//! run — the sharded path never returns a report whose premise it could
//! not prove. Two further conditions are the *caller's* contract (checked
//! in `retcon-workloads::run_spec_sized` because the spec lives there):
//! no [`SimConfig::schedule_seed`] (a fuzzed schedule draws from a global
//! sequence whose consumption order spans shards) and no `Barrier`
//! instruction (barrier release synchronizes globally across all cores).
//!
//! [`SimConfig::schedule_seed`]: crate::SimConfig::schedule_seed

use std::ops::Range;

use crate::machine::{Machine, SimError};
use crate::report::SimReport;

/// Splits `num_cores` into `shards` contiguous, near-equal, non-empty
/// ranges. The first `num_cores % shards` ranges are one core larger.
///
/// # Panics
///
/// Panics if `shards` is zero or exceeds `num_cores`.
pub fn shard_ranges(num_cores: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    assert!(
        shards <= num_cores,
        "cannot split {num_cores} cores into {shards} non-empty shards"
    );
    let base = num_cores / shards;
    let extra = num_cores % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(lo..lo + len);
        lo += len;
    }
    debug_assert_eq!(lo, num_cores);
    ranges
}

/// What a traced sharded run produced (see [`run_sharded_traced`]).
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // constructed once per run, never stored
pub enum TracedShardedOutcome {
    /// Footprints disjoint: the merged report (byte-identical to serial)
    /// plus the merged event stream — shard-local core ids renumbered to
    /// global, with one `ShardMerge` event appended per shard.
    Merged(SimReport, retcon_obs::RingTracer),
    /// Two shards touched a common block; no merged trace exists (the
    /// caller falls back to a serial traced run). Carries one witness
    /// block id.
    Overlap {
        /// A block id present in at least two shard footprints.
        block: u64,
    },
}

/// What a sharded run produced.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // constructed once per run, never stored
pub enum ShardedOutcome {
    /// The shards' footprints were pairwise disjoint; the merged report is
    /// byte-identical to a serial run's.
    Merged(SimReport),
    /// Two shards touched a common block: the independence premise fails
    /// and the caller must run serially. Carries one witness block id.
    Overlap {
        /// A block id present in at least two shard footprints.
        block: u64,
    },
}

/// Runs `shards` contiguous core ranges on host threads and merges their
/// reports (see the module docs for the partition rule and merge
/// contract).
///
/// `build` receives each shard's global core range and must return a
/// machine simulating exactly those cores (locally numbered from zero)
/// with footprint tracking left to this function — it is switched on
/// here so the disjointness check can never be forgotten.
///
/// # Errors
///
/// Propagates the first [`SimError`] any shard reports (by shard order).
pub fn run_sharded<const N: usize, F>(
    num_cores: usize,
    shards: usize,
    build: F,
) -> Result<ShardedOutcome, SimError>
where
    F: Fn(Range<usize>) -> Machine<N> + Sync,
{
    let ranges = shard_ranges(num_cores, shards);
    let mut outcomes: Vec<Option<Result<_, SimError>>> = Vec::new();
    outcomes.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (range, slot) in ranges.iter().zip(outcomes.iter_mut()) {
            let build = &build;
            scope.spawn(move || {
                let mut machine = build(range.clone());
                machine.set_track_footprint(true);
                *slot = Some(machine.run().map(|report| {
                    let footprint = machine
                        .footprint()
                        .expect("footprint tracking enabled above")
                        .clone();
                    (report, footprint)
                }));
            });
        }
    });
    let mut reports = Vec::with_capacity(ranges.len());
    let mut footprints = Vec::with_capacity(ranges.len());
    for slot in outcomes {
        let (report, footprint) = slot.expect("every shard thread ran")?;
        reports.push(report);
        footprints.push(footprint);
    }
    // Pairwise disjointness, verified against what the cores actually did.
    // Probe each block against a running union so the check is linear in
    // the total footprint, not quadratic in shards.
    let mut seen = retcon_mem::FxHashSet::default();
    for fp in &footprints {
        for &block in fp {
            if !seen.insert(block) {
                return Ok(ShardedOutcome::Overlap { block });
            }
        }
    }
    Ok(ShardedOutcome::Merged(merge_reports(reports)))
}

/// [`run_sharded`] with per-shard event tracing: each shard machine
/// records its events into a private ring (capacity split evenly across
/// shards), and on a successful merge the streams are concatenated in
/// shard order with core ids shifted back to global numbering, followed
/// by one [`ShardMerge`](retcon_obs::EventKind::ShardMerge) event per
/// shard (`core` = shard index, `at` = that shard's cycle count,
/// `arg` = 0 for merged).
///
/// Tracing never perturbs: the report returned is byte-identical to
/// [`run_sharded`]'s (and therefore to a serial run's).
///
/// # Errors
///
/// Propagates the first [`SimError`] any shard reports (by shard order).
pub fn run_sharded_traced<const N: usize, F>(
    num_cores: usize,
    shards: usize,
    capacity: usize,
    build: F,
) -> Result<TracedShardedOutcome, SimError>
where
    F: Fn(Range<usize>) -> Machine<N> + Sync,
{
    let ranges = shard_ranges(num_cores, shards);
    let per_shard = capacity.div_ceil(shards).max(1);
    let mut outcomes: Vec<Option<Result<_, SimError>>> = Vec::new();
    outcomes.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (range, slot) in ranges.iter().zip(outcomes.iter_mut()) {
            let build = &build;
            scope.spawn(move || {
                let mut machine = build(range.clone());
                machine.set_track_footprint(true);
                machine.set_tracer(retcon_obs::RingTracer::with_capacity(per_shard));
                *slot = Some(machine.run().map(|report| {
                    let footprint = machine
                        .footprint()
                        .expect("footprint tracking enabled above")
                        .clone();
                    let tracer = machine.take_tracer().expect("tracer attached above");
                    (report, footprint, tracer)
                }));
            });
        }
    });
    let mut reports = Vec::with_capacity(ranges.len());
    let mut footprints = Vec::with_capacity(ranges.len());
    let mut tracers = Vec::with_capacity(ranges.len());
    for slot in outcomes {
        let (report, footprint, tracer) = slot.expect("every shard thread ran")?;
        reports.push(report);
        footprints.push(footprint);
        tracers.push(tracer);
    }
    let mut seen = retcon_mem::FxHashSet::default();
    for fp in &footprints {
        for &block in fp {
            if !seen.insert(block) {
                return Ok(TracedShardedOutcome::Overlap { block });
            }
        }
    }
    use retcon_obs::Tracer as _;
    let mut merged_trace = retcon_obs::RingTracer::with_capacity(capacity.max(1) + shards);
    for (s, ((tracer, range), report)) in tracers.iter().zip(&ranges).zip(&reports).enumerate() {
        merged_trace.extend_offset(tracer, range.start);
        merged_trace.record(s, retcon_obs::EventKind::ShardMerge, report.cycles, 0);
    }
    Ok(TracedShardedOutcome::Merged(
        merge_reports(reports),
        merged_trace,
    ))
}

/// Merges shard reports (in shard order) into the serial-equivalent
/// report: per-core vectors concatenate, the cycle count is the maximum,
/// and the protocol accumulators combine with their own commutative
/// merges.
fn merge_reports(reports: Vec<SimReport>) -> SimReport {
    let mut iter = reports.into_iter();
    let mut merged = iter.next().expect("at least one shard");
    for r in iter {
        debug_assert_eq!(merged.protocol_name, r.protocol_name);
        merged.cycles = merged.cycles.max(r.cycles);
        merged.per_core.extend(r.per_core);
        merged.protocol.merge(&r.protocol);
        merged.retcon = match (merged.retcon.take(), r.retcon) {
            (Some(mut a), Some(b)) => {
                a.merge(&b);
                Some(a)
            }
            (a, b) => a.or(b),
        };
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_contiguously() {
        for (cores, shards) in [(8, 2), (10, 3), (1024, 16), (7, 7), (5, 1)] {
            let ranges = shard_ranges(cores, shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, cores);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[0].is_empty() && !w[1].is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn more_shards_than_cores_rejected() {
        let _ = shard_ranges(2, 3);
    }
}
