//! Offline shim for the `criterion` crate.
//!
//! The build container has no crates.io access, so this workspace vendors a
//! minimal, API-compatible subset of criterion sufficient for
//! `crates/bench/benches/criterion.rs`: benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed batches, and reports the mean and minimum
//! nanoseconds per iteration on stdout. No statistics, plots, or baselines —
//! enough to keep the harness honest about relative cost.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; drop would also do).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot code.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Total nanoseconds across timed samples.
    total_nanos: u128,
    /// Fastest single-iteration time seen, in nanoseconds.
    min_nanos: u128,
    /// Total iterations across timed samples.
    iterations: u64,
    /// Samples (outer timing batches) remaining.
    samples_left: usize,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, and a quick calibration of iterations-per-sample so one
        // sample takes roughly a millisecond.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        let per_sample = (1_000_000 / once).clamp(1, 100_000) as u64;

        while self.samples_left > 0 {
            self.samples_left -= 1;
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos();
            self.total_nanos += nanos;
            self.iterations += per_sample;
            let per_iter = nanos / u128::from(per_sample).max(1);
            if self.min_nanos == 0 || per_iter < self.min_nanos {
                self.min_nanos = per_iter;
            }
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples_left: sample_size,
        ..Bencher::default()
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let mean = bencher.total_nanos / u128::from(bencher.iterations);
    println!(
        "{name:<40} mean {mean:>10} ns/iter   min {:>10} ns/iter   ({} iters)",
        bencher.min_nanos, bencher.iterations
    );
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
