//! Figure 4: runtime breakdown of the baseline system.
//!
//! Buckets per the paper: busy (useful work), conflict (stalled by another
//! processor or work in ultimately-aborted transactions), barrier (load
//! imbalance), other (commit processing).
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Fig4)
}
