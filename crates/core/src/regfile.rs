//! The symbolic register file.
//!
//! Figure 5: *"The Symbolic register file records the current symbolic value
//! (if any) for each register. The value recorded in the traditional
//! register file is the concrete value of each register, which is used to
//! guide execution."* The concrete register file lives in the simulator's
//! core model; this structure shadows it with symbolic tags.

use retcon_isa::{Reg, NUM_REGS};

use crate::sym::SymValue;

/// Per-register symbolic tags.
#[derive(Debug, Clone)]
pub struct SymRegFile {
    tags: [Option<SymValue>; NUM_REGS],
}

impl Default for SymRegFile {
    fn default() -> Self {
        SymRegFile {
            tags: [None; NUM_REGS],
        }
    }
}

impl SymRegFile {
    /// Creates a register file with no symbolic tags.
    pub fn new() -> Self {
        Self::default()
    }

    /// The symbolic value of `reg`, if any.
    #[inline]
    pub fn get(&self, reg: Reg) -> Option<SymValue> {
        self.tags[reg.index()]
    }

    /// Tags `reg` with `sym` (or clears the tag with `None`).
    #[inline]
    pub fn set(&mut self, reg: Reg, sym: Option<SymValue>) {
        self.tags[reg.index()] = sym;
    }

    /// Clears the tag of `reg` (the register now holds a plain concrete
    /// value).
    #[inline]
    pub fn clear(&mut self, reg: Reg) {
        self.tags[reg.index()] = None;
    }

    /// Clears every tag (transaction end).
    pub fn clear_all(&mut self) {
        self.tags = [None; NUM_REGS];
    }

    /// Number of registers currently carrying symbolic tags (Table 3's
    /// "symbolic registers" column counts these at commit).
    pub fn count_symbolic(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    /// Iterates over `(register, symbolic value)` pairs for tagged
    /// registers.
    pub fn iter_symbolic(&self) -> impl Iterator<Item = (Reg, SymValue)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|s| (Reg(i as u8), s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_isa::Addr;

    #[test]
    fn starts_untagged() {
        let rf = SymRegFile::new();
        for r in Reg::all() {
            assert_eq!(rf.get(r), None);
        }
        assert_eq!(rf.count_symbolic(), 0);
    }

    #[test]
    fn set_get_clear() {
        let mut rf = SymRegFile::new();
        let s = SymValue::root(Addr(4)).add(1);
        rf.set(Reg(3), Some(s));
        assert_eq!(rf.get(Reg(3)), Some(s));
        assert_eq!(rf.count_symbolic(), 1);
        rf.clear(Reg(3));
        assert_eq!(rf.get(Reg(3)), None);
    }

    #[test]
    fn clear_all_wipes() {
        let mut rf = SymRegFile::new();
        rf.set(Reg(0), Some(SymValue::root(Addr(1))));
        rf.set(Reg(5), Some(SymValue::root(Addr(2))));
        rf.clear_all();
        assert_eq!(rf.count_symbolic(), 0);
    }

    #[test]
    fn iter_symbolic_lists_tagged() {
        let mut rf = SymRegFile::new();
        let a = SymValue::root(Addr(1));
        let b = SymValue::root(Addr(2)).add(5);
        rf.set(Reg(1), Some(a));
        rf.set(Reg(7), Some(b));
        let pairs: Vec<_> = rf.iter_symbolic().collect();
        assert_eq!(pairs, vec![(Reg(1), a), (Reg(7), b)]);
    }
}
