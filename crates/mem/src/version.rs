//! Version management: eager undo logging and lazy write buffering.
//!
//! The paper's baseline uses *eager version management* — speculative stores
//! update memory in place and an undo log restores pre-speculative values on
//! abort (§2, "the baseline is configured to use eager version management and
//! model a zero-cycle rollback penalty"). The LazyTM variant of Figure 2 and
//! the value-based `lazy-vb` configuration instead buffer stores locally
//! until commit. Both mechanisms live here so every protocol in
//! `retcon-htm` shares one tested implementation.

use retcon_isa::table::EpochMap;
use retcon_isa::Addr;

use crate::memory::GlobalMemory;

/// An eager-version-management undo log.
///
/// The log records the *first* pre-speculative value of each word written by
/// the current transaction. [`rollback`](UndoLog::rollback) restores them;
/// per the paper's baseline the restoration itself costs zero cycles.
///
/// # Example
///
/// ```
/// use retcon_mem::{GlobalMemory, UndoLog};
/// use retcon_isa::Addr;
///
/// let mut mem = GlobalMemory::new();
/// let mut log = UndoLog::new();
/// mem.write(Addr(1), 10);
///
/// log.record(&mem, Addr(1));
/// mem.write(Addr(1), 99);
/// log.rollback(&mut mem);
/// assert_eq!(mem.read(Addr(1)), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    /// (address, pre-speculative value), in first-write order.
    entries: Vec<(Addr, u64)>,
    /// Word → index into `entries`; the epoch stamping makes membership one
    /// array probe per write and the per-transaction clear O(1).
    seen: EpochMap<u32>,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current value of `addr` if this is the first speculative
    /// write to it in the current transaction.
    #[inline]
    pub fn record(&mut self, mem: &GlobalMemory, addr: Addr) {
        if self
            .seen
            .insert_if_absent(addr.0, self.entries.len() as u32)
        {
            self.entries.push((addr, mem.read(addr)));
        }
    }

    /// Restores every logged word to its pre-speculative value and clears the
    /// log. Restoration happens in reverse order, though with first-write-only
    /// logging the order is immaterial.
    pub fn rollback(&mut self, mem: &mut GlobalMemory) {
        for &(addr, value) in self.entries.iter().rev() {
            mem.write(addr, value);
        }
        self.clear();
    }

    /// Discards the log without restoring (used at commit).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.seen.clear();
    }

    /// Number of distinct words logged.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pre-speculative value recorded for `addr`, if any.
    pub fn old_value(&self, addr: Addr) -> Option<u64> {
        self.seen.get(addr.0).map(|i| self.entries[i as usize].1)
    }
}

/// A lazy-version-management store buffer.
///
/// Speculative stores are collected here and only drained to
/// [`GlobalMemory`] at commit; loads must consult the buffer first to see
/// the transaction's own stores.
///
/// # Example
///
/// ```
/// use retcon_mem::{GlobalMemory, WriteBuffer};
/// use retcon_isa::Addr;
///
/// let mut mem = GlobalMemory::new();
/// let mut wb = WriteBuffer::new();
/// wb.write(Addr(4), 5);
/// assert_eq!(wb.read(Addr(4)), Some(5));
/// assert_eq!(mem.read(Addr(4)), 0); // not yet visible
/// wb.drain(&mut mem);
/// assert_eq!(mem.read(Addr(4)), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    words: EpochMap<u64>,
    order: Vec<u64>,
}

impl WriteBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers a store of `value` to `addr`.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) {
        if self.words.insert(addr.0, value) {
            self.order.push(addr.0);
        }
    }

    /// The buffered value for `addr`, if the transaction has stored to it.
    #[inline]
    pub fn read(&self, addr: Addr) -> Option<u64> {
        self.words.get(addr.0)
    }

    /// Writes every buffered store to memory (in first-store order) and
    /// clears the buffer.
    pub fn drain(&mut self, mem: &mut GlobalMemory) {
        for &a in &self.order {
            mem.write(Addr(a), self.words.get(a).expect("ordered word present"));
        }
        self.discard();
    }

    /// Clears the buffer without writing (abort).
    pub fn discard(&mut self) {
        self.words.clear();
        self.order.clear();
    }

    /// Number of distinct words buffered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates over buffered `(address, value)` pairs in first-store order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.order
            .iter()
            .map(|&a| (Addr(a), self.words.get(a).expect("ordered word present")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undo_log_restores_first_values() {
        let mut mem = GlobalMemory::new();
        let mut log = UndoLog::new();
        mem.write(Addr(1), 10);

        log.record(&mem, Addr(1));
        mem.write(Addr(1), 20);
        log.record(&mem, Addr(1)); // second record is a no-op
        mem.write(Addr(1), 30);
        log.record(&mem, Addr(2));
        mem.write(Addr(2), 5);

        assert_eq!(log.len(), 2);
        assert_eq!(log.old_value(Addr(1)), Some(10));
        log.rollback(&mut mem);
        assert_eq!(mem.read(Addr(1)), 10);
        assert_eq!(mem.read(Addr(2)), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn undo_log_clear_commits() {
        let mut mem = GlobalMemory::new();
        let mut log = UndoLog::new();
        log.record(&mem, Addr(3));
        mem.write(Addr(3), 7);
        log.clear();
        log.rollback(&mut mem); // nothing to roll back
        assert_eq!(mem.read(Addr(3)), 7);
    }

    #[test]
    fn write_buffer_forwards_to_own_reads() {
        let mut wb = WriteBuffer::new();
        assert_eq!(wb.read(Addr(9)), None);
        wb.write(Addr(9), 1);
        wb.write(Addr(9), 2);
        assert_eq!(wb.read(Addr(9)), Some(2));
        assert_eq!(wb.len(), 1);
    }

    #[test]
    fn write_buffer_drain_publishes_in_order() {
        let mut mem = GlobalMemory::new();
        let mut wb = WriteBuffer::new();
        wb.write(Addr(1), 11);
        wb.write(Addr(2), 22);
        wb.write(Addr(1), 111); // overwrite keeps original order slot
        let pairs: Vec<_> = wb.iter().collect();
        assert_eq!(pairs, vec![(Addr(1), 111), (Addr(2), 22)]);
        wb.drain(&mut mem);
        assert_eq!(mem.read(Addr(1)), 111);
        assert_eq!(mem.read(Addr(2)), 22);
        assert!(wb.is_empty());
    }

    #[test]
    fn write_buffer_discard_drops_stores() {
        let mut mem = GlobalMemory::new();
        let mut wb = WriteBuffer::new();
        wb.write(Addr(1), 11);
        wb.discard();
        wb.drain(&mut mem);
        assert_eq!(mem.read(Addr(1)), 0);
    }
}
