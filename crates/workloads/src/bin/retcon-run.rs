//! Command-line workload runner.
//!
//! ```text
//! cargo run --release -p retcon-workloads --bin retcon-run -- \
//!     --workload genome-sz --system RetCon --cores 16 --seed 42
//! ```
//!
//! Runs one workload under one hardware configuration and prints the
//! simulator's report: cycles, speedup over the sequential baseline,
//! commit/abort/stall counts, the time breakdown, and — under RETCON — the
//! Table 3 structure-utilization statistics.
//!
//! `--json` instead emits the run as a machine-readable record in exactly
//! the `retcon-lab` `RunRecord` JSON shape (workload/system/cores/seed
//! context plus the full [`retcon_sim::SimReport`] serialization), so ad-hoc
//! runs can be concatenated with harness-generated result sets.

use std::process::ExitCode;

use retcon_sim::json::Json;
use retcon_sim::SimConfig;
use retcon_workloads::{
    run_spec_configured_sized, run_spec_sized, run_spec_traced_sized, sequential_baseline, System,
    Workload, MAX_SIM_CORES,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: retcon-run --workload <name> [--system <name>] [--cores <n>] [--seed <n>] \
         [--shards <n>] [--schedule-seed <n>] [--trace <path>] [--json]"
    );
    eprintln!();
    let mut names: Vec<&str> = Workload::all().iter().map(|w| w.label()).collect();
    names.push(Workload::ScalingXl.label());
    eprintln!("workloads: {}", names.join(", "));
    eprintln!("systems:   eager, eager-abort, lazy, lazy-vb, RetCon, RetCon-ideal, datm");
    eprintln!();
    eprintln!("--schedule-seed fuzzes the instruction interleaving (seeded, reproducible);");
    eprintln!("omitting it keeps the deterministic min-heap schedule");
    eprintln!();
    eprintln!("--cores up to 1024 (CoreSet size classes: 64/128/256/512/1024)");
    eprintln!("--shards N runs disjoint core ranges on host threads; the report is");
    eprintln!("byte-identical to the serial run (ignored under --schedule-seed)");
    eprintln!();
    eprintln!("--trace PATH records transaction events (begin/conflict/stall/repair/");
    eprintln!("abort/commit, storm fast-forwards, shard merges) and writes them as");
    eprintln!("Chrome trace-event JSON, loadable in chrome://tracing or Perfetto.");
    eprintln!("Tracing never changes the report (ignored under --schedule-seed)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut workload = None;
    let mut system = System::Retcon;
    let mut cores = 32usize;
    let mut seed = 42u64;
    let mut shards = 1usize;
    let mut schedule_seed = None;
    let mut trace: Option<String> = None;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--workload" | "-w" => match value(i).and_then(|v| Workload::parse(v)) {
                Some(w) => workload = Some(w),
                None => return usage(),
            },
            "--system" | "-s" => match value(i).and_then(|v| System::parse(v)) {
                Some(s) => system = s,
                None => return usage(),
            },
            "--cores" | "-c" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cores = n,
                _ => return usage(),
            },
            "--seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--shards" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => return usage(),
            },
            "--schedule-seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(n) => schedule_seed = Some(n),
                None => return usage(),
            },
            "--trace" => match value(i) {
                Some(path) => trace = Some(path.clone()),
                None => return usage(),
            },
            "--json" => {
                json = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 2;
    }
    let Some(workload) = workload else {
        return usage();
    };

    let seq = match sequential_baseline(workload, seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sequential baseline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cores > MAX_SIM_CORES {
        eprintln!("--cores {cores} exceeds the widest CoreSet size class ({MAX_SIM_CORES} cores)");
        return ExitCode::FAILURE;
    }
    let spec = workload.build(cores, seed);
    let result = match (schedule_seed, &trace) {
        // Fuzzed schedules are serial-only: the seed drives one global
        // draw sequence that sharding cannot split (and tracing is
        // declined rather than silently shape-shifted).
        (Some(_), _) => {
            let mut cfg = SimConfig::with_cores(cores);
            cfg.schedule_seed = schedule_seed;
            run_spec_configured_sized(&spec, system, cfg)
        }
        (None, Some(path)) => {
            let traced = run_spec_traced_sized(
                &spec,
                system,
                cores,
                shards,
                retcon_obs::ring::DEFAULT_CAPACITY,
            );
            match traced {
                Ok((report, tracer)) => {
                    match std::fs::write(path, retcon_obs::chrome::to_chrome_json(&tracer)) {
                        Ok(()) => {
                            eprintln!(
                                "trace: {} events ({} dropped) -> {path}",
                                tracer.len(),
                                tracer.dropped()
                            );
                            Ok(report)
                        }
                        Err(e) => {
                            eprintln!("trace write failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                Err(e) => Err(e),
            }
        }
        (None, None) => run_spec_sized(&spec, system, cores, shards),
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        // The `retcon-lab` RunRecord shape; a fuzzed schedule is recorded
        // as a knob so the run stays replayable from its record alone.
        let knobs = match schedule_seed {
            Some(s) => vec![Json::Arr(vec![
                Json::str("schedule-seed"),
                Json::str(&s.to_string()),
            ])],
            None => Vec::new(),
        };
        let record = Json::obj(vec![
            ("workload", Json::str(workload.label())),
            ("system", Json::str(system.label())),
            ("cores", Json::UInt(cores as u64)),
            ("seed", Json::UInt(seed)),
            // Execution-strategy envelope, deliberately *not* a knob: a
            // sharded run's report is byte-identical to serial, so the
            // record's content hash must not depend on it.
            ("shards", Json::UInt(shards as u64)),
            ("knobs", Json::Arr(knobs)),
            ("seq_cycles", Json::UInt(seq)),
            ("report", report.to_json()),
        ]);
        print!("{}", record.to_pretty_string());
        return ExitCode::SUCCESS;
    }

    println!("workload   {}", workload.label());
    println!("system     {}", system.label());
    println!("cores      {cores}");
    println!("seed       {seed}");
    if shards > 1 {
        println!("shards     {shards}");
    }
    if let Some(s) = schedule_seed {
        println!("schedule   fuzzed (seed {s})");
    }
    println!();
    println!("cycles     {} (sequential: {seq})", report.cycles);
    println!("speedup    {:.2}x", report.speedup_over(seq));
    println!(
        "txs        {} commits, {} aborts ({} conflict / {} validation / {} overflow / {} cycle), {} stalls",
        report.protocol.commits,
        report.protocol.aborts(),
        report.protocol.aborts_conflict,
        report.protocol.aborts_validation,
        report.protocol.aborts_overflow,
        report.protocol.aborts_cycle,
        report.protocol.stalls,
    );
    let b = report.breakdown();
    let (busy, conflict, barrier, other) = b.fractions();
    println!(
        "breakdown  busy {:.1}% | conflict {:.1}% | barrier {:.1}% | other {:.1}%",
        100.0 * busy,
        100.0 * conflict,
        100.0 * barrier,
        100.0 * other
    );
    if let Some(rs) = &report.retcon {
        println!();
        println!("RETCON structures (avg / max per committed tx):");
        println!(
            "  blocks lost        {:.1} / {}",
            rs.avg_blocks_lost(),
            rs.max.blocks_lost
        );
        println!(
            "  blocks tracked     {:.1} / {}",
            rs.avg_blocks_tracked(),
            rs.max.blocks_tracked
        );
        println!(
            "  symbolic registers {:.1} / {}",
            rs.avg_symbolic_registers(),
            rs.max.symbolic_registers
        );
        println!(
            "  private stores     {:.1} / {}",
            rs.avg_private_stores(),
            rs.max.private_stores
        );
        println!(
            "  constraint addrs   {:.1} / {}",
            rs.avg_constraint_addrs(),
            rs.max.constraint_addrs
        );
        println!(
            "  commit cycles      {:.1} / {} ({:.2}% of tx lifetime); {} violations",
            rs.avg_commit_cycles(),
            rs.max.commit_cycles,
            rs.commit_stall_percent(),
            rs.violations
        );
    }
    ExitCode::SUCCESS
}
