//! Corner cases of the RETCON pre-commit process (Figure 7): stalls during
//! reacquisition, steals while a commit is pending, and recovery from
//! structure overflow.

use retcon::RetconConfig;
use retcon_htm::{CommitResult, MemResult, Protocol, RetconTm};
use retcon_isa::{Addr, BinOp, Reg};
use retcon_mem::{CoreId, MemConfig, MemorySystem};

const C0: CoreId = CoreId(0);
const C1: CoreId = CoreId(1);
const A: Addr = Addr(0);

fn setup() -> (MemorySystem, RetconTm) {
    let cfg = RetconConfig {
        initial_threshold: 0,
        ..RetconConfig::default()
    };
    (
        MemorySystem::new(MemConfig::default(), 2),
        RetconTm::new(2, cfg),
    )
}

fn value(r: MemResult) -> u64 {
    match r {
        MemResult::Value { value, .. } => value,
        other => panic!("expected value, got {other:?}"),
    }
}

/// Track a counter and buffer an increment on `core`.
fn tracked_increment(tm: &mut RetconTm, mem: &mut MemorySystem, core: CoreId, now: u64) {
    let v = value(tm.read(core, Reg(1), A, None, mem, now));
    let nv = Protocol::<1>::on_alu(tm, core, BinOp::Add, Reg(1), Reg(1), None, v, 1);
    assert!(matches!(
        tm.write(core, Some(Reg(1)), nv, A, None, mem, now),
        MemResult::Value { .. }
    ));
}

#[test]
fn commit_stalls_behind_older_writer_then_succeeds() {
    // Tracking disabled on both cores so every speculative write is a hard
    // (non-stealable) conflict, exercising the oldest-wins stall path.
    let cfg = RetconConfig {
        initial_threshold: u32::MAX,
        ..RetconConfig::default()
    };
    let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
    let mut tm = RetconTm::new(2, cfg);
    Protocol::<1>::tx_begin(&mut tm, C0, 0);
    let _ = tm.write(C0, None, 7, A, None, &mut mem, 1);

    Protocol::<1>::tx_begin(&mut tm, C1, 10);
    // C1 writes a different word of the same block: hard conflict with
    // C0's speculative write; younger C1 stalls.
    assert_eq!(
        tm.write(C1, None, 9, Addr(1), None, &mut mem, 11),
        MemResult::Stall
    );
    // After C0 commits, C1 proceeds and commits.
    assert!(matches!(
        tm.commit(C0, &mut mem, 12),
        CommitResult::Committed { .. }
    ));
    assert!(matches!(
        tm.write(C1, None, 9, Addr(1), None, &mut mem, 13),
        MemResult::Value { .. }
    ));
    assert!(matches!(
        tm.commit(C1, &mut mem, 14),
        CommitResult::Committed { .. }
    ));
    assert_eq!(mem.read_word(A), 7);
    assert_eq!(mem.read_word(Addr(1)), 9);
}

#[test]
fn pending_commit_survives_steal_between_retries() {
    let (mut mem, mut tm) = setup();
    // C1 (younger) tracks A and buffers an increment.
    Protocol::<1>::tx_begin(&mut tm, C0, 0); // older, will hold a hard conflict later
    Protocol::<1>::tx_begin(&mut tm, C1, 5);
    tracked_increment(&mut tm, &mut mem, C1, 6);
    // C0 non-tracked hard write to a *different* block that C1 also needs:
    // give C1 a second tracked block with a buffered store.
    let b = Addr(64);
    let v = value(tm.read(C1, Reg(2), b, None, &mut mem, 7));
    let nv = Protocol::<1>::on_alu(&mut tm, C1, BinOp::Add, Reg(2), Reg(2), None, v, 1);
    let _ = tm.write(C1, Some(Reg(2)), nv, b, None, &mut mem, 8);
    // Older C0 writes block B hard (plain path: B was never read by C0, but
    // C0's engine would track it at threshold 0 — force plain by reading it
    // first so the write is... reading also tracks. Use the hard path via
    // the *read bit*: C0 plainly loads B? That tracks too. So instead C0
    // writes B *after* its block is in C0's plain set via the sticky rule:
    // C0 reads B while C0's IVB is full.
    // Simpler: fill C0's IVB to capacity-0 via a config with ivb_capacity 0.
    // That is a separate protocol; here we accept C0's write tracks B and
    // steals from C1 — which is exactly the steal-while-commit-pending path
    // we want to exercise.
    let _ = tm.write(C0, None, 42, b, None, &mut mem, 9);
    // C1's tracked copy of B was stolen, not aborted.
    assert!(!Protocol::<1>::take_aborted(&mut tm, C1));
    // C0 commits its blind write (it was buffered symbolically).
    assert!(matches!(
        tm.commit(C0, &mut mem, 10),
        CommitResult::Committed { .. }
    ));
    assert_eq!(mem.read_word(b), 42);
    // C1 commits: reacquires both blocks and repairs both increments.
    match tm.commit(C1, &mut mem, 11) {
        CommitResult::Committed { .. } => {}
        other => panic!("expected commit, got {other:?}"),
    }
    assert_eq!(mem.read_word(A), 1);
    assert_eq!(
        mem.read_word(b),
        43,
        "increment repaired on top of the blind write"
    );
}

#[test]
fn overflow_abort_recovers_and_makes_progress() {
    // SSB of 2 entries; a transaction with 3 buffered stores overflows,
    // aborts, trains the predictor down, and the retry succeeds untracked.
    let cfg = RetconConfig {
        initial_threshold: 0,
        ssb_capacity: 2,
        ..RetconConfig::default()
    };
    let mut mem: MemorySystem = MemorySystem::new(MemConfig::default(), 1);
    let mut tm = RetconTm::new(1, cfg);

    Protocol::<1>::tx_begin(&mut tm, C0, 0);
    let _ = tm.read(C0, Reg(1), Addr(0), None, &mut mem, 1); // tracks block 0
    let _ = tm.write(C0, None, 1, Addr(0), None, &mut mem, 2);
    let _ = tm.write(C0, None, 2, Addr(1), None, &mut mem, 3);
    // Third store to the tracked block overflows the 2-entry SSB.
    assert_eq!(
        tm.write(C0, None, 3, Addr(2), None, &mut mem, 4),
        MemResult::Abort
    );
    assert_eq!(Protocol::<1>::stats(&tm, C0).aborts_overflow, 1);
    // Retry: the predictor was trained down, the block is no longer
    // tracked, all three stores take the plain path, and the tx commits.
    Protocol::<1>::tx_begin(&mut tm, C0, 5);
    assert!(!tm.engine(C0).predictor().should_track(Addr(0).block()));
    for (i, addr) in [Addr(0), Addr(1), Addr(2)].into_iter().enumerate() {
        assert!(matches!(
            tm.write(C0, None, (i + 1) as u64, addr, None, &mut mem, 6),
            MemResult::Value { .. }
        ));
    }
    assert!(matches!(
        tm.commit(C0, &mut mem, 7),
        CommitResult::Committed { .. }
    ));
    assert_eq!(mem.read_word(Addr(0)), 1);
    assert_eq!(mem.read_word(Addr(1)), 2);
    assert_eq!(mem.read_word(Addr(2)), 3);
}

#[test]
fn steal_preserves_constraints_across_multiple_writers() {
    // Three rounds of remote writes against one pending reader: each steal
    // updates nothing in the victim; the final repair sees only the last
    // committed value.
    let (mut mem, mut tm) = setup();
    mem.write_word(A, 100);
    Protocol::<1>::tx_begin(&mut tm, C0, 0);
    let v = value(tm.read(C0, Reg(1), A, None, &mut mem, 1));
    assert_eq!(v, 100);
    // Branch: value < 1000 (taken) -> constraint A < 1000.
    assert!(Protocol::<1>::on_branch(
        &mut tm,
        C0,
        retcon_isa::CmpOp::Lt,
        Reg(1),
        None,
        v,
        1000
    ));
    for (i, remote) in [200u64, 300, 400].into_iter().enumerate() {
        let _ = tm.write(C1, None, remote, A, None, &mut mem, 2 + i as u64);
        assert!(
            !Protocol::<1>::take_aborted(&mut tm, C0),
            "steal #{i} must not abort"
        );
    }
    // 400 < 1000: constraint holds, commit succeeds, register repairs.
    match tm.commit(C0, &mut mem, 10) {
        CommitResult::Committed { reg_updates, .. } => {
            assert_eq!(reg_updates.as_slice(), &[(Reg(1), 400)]);
        }
        other => panic!("expected commit, got {other:?}"),
    }

    // Same setup, but the final remote value violates the constraint.
    Protocol::<1>::tx_begin(&mut tm, C0, 20);
    let v = value(tm.read(C0, Reg(1), A, None, &mut mem, 21));
    assert!(Protocol::<1>::on_branch(
        &mut tm,
        C0,
        retcon_isa::CmpOp::Lt,
        Reg(1),
        None,
        v,
        1000
    ));
    let _ = tm.write(C1, None, 5000, A, None, &mut mem, 22);
    assert_eq!(tm.commit(C0, &mut mem, 23), CommitResult::Abort);
    assert_eq!(Protocol::<1>::stats(&tm, C0).aborts_validation, 1);
}
