//! Table 3: RETCON structure utilization and pre-commit runtime overhead.
//!
//! Columns per the paper: average (maximum) per committed transaction of
//! 64-byte blocks stolen away, initial-value-buffer entries, symbolic
//! registers repaired, symbolic stores performed ("private stores"),
//! symbolic constraints checked; plus average pre-commit stall cycles and
//! the percentage of transaction lifetime spent in pre-commit repair.
//!
//! Paper expectations: structures stay small (≤16 IVB entries even for
//! python), commit stall under 1% for all but two workloads and under 4%
//! everywhere.

use retcon_bench::{print_header, run_at_scale};
use retcon_workloads::{System, Workload};

fn main() {
    print_header(
        "Table 3: RETCON structure utilization and pre-commit overhead (32 cores)",
        "avg (max) per committed transaction",
    );
    println!(
        "{:<18} {:>11} {:>11} {:>10} {:>11} {:>11} {:>8} {:>7}",
        "workload",
        "blocks lost",
        "blk tracked",
        "sym regs",
        "priv stores",
        "constr addr",
        "commit",
        "stall%"
    );
    let mut all = Workload::fig9();
    all.insert(0, Workload::Counter);
    for w in all {
        let r = run_at_scale(w, System::Retcon);
        let rs = r.retcon.expect("RETCON stats present");
        println!(
            "{:<18} {:>5.1} ({:>3}) {:>5.1} ({:>3}) {:>4.1} ({:>3}) {:>5.1} ({:>3}) {:>5.1} ({:>3}) {:>8.1} {:>6.2}",
            w.label(),
            rs.avg_blocks_lost(),
            rs.max.blocks_lost,
            rs.avg_blocks_tracked(),
            rs.max.blocks_tracked,
            rs.avg_symbolic_registers(),
            rs.max.symbolic_registers,
            rs.avg_private_stores(),
            rs.max.private_stores,
            rs.avg_constraint_addrs(),
            rs.max.constraint_addrs,
            rs.avg_commit_cycles(),
            rs.commit_stall_percent(),
        );
    }
    println!(
        "\n(violations are counted separately; a violation aborts and trains the predictor down)"
    );
}
