//! Quickstart: RETCON repairs a contended shared counter.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Eight simulated cores each run transactions that increment a single
//! shared counter twice (the schedule of the paper's Figure 2). Under the
//! eager HTM baseline every pair of concurrent transactions conflicts;
//! under RETCON the counter's cache block is tracked symbolically, stolen
//! blocks are repaired at commit, and the conflicts vanish.

use retcon_workloads::{run_spec, System, Workload};

fn main() {
    const CORES: usize = 8;
    let spec = Workload::Counter.build(CORES, 1);
    println!("counter micro-benchmark, {CORES} cores, two increments per transaction\n");
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9}",
        "system", "cycles", "commits", "aborts", "stalls"
    );
    let mut eager_cycles = 0;
    for system in [System::Eager, System::LazyVb, System::Retcon] {
        let report = run_spec(&spec, system, CORES).expect("counter runs");
        if system == System::Eager {
            eager_cycles = report.cycles;
        }
        println!(
            "{:<12} {:>10} {:>9} {:>9} {:>9}",
            system.label(),
            report.cycles,
            report.protocol.commits,
            report.protocol.aborts(),
            report.protocol.stalls
        );
        if system == System::Retcon {
            println!(
                "\nRETCON is {:.1}x faster than the eager baseline on this schedule,",
                eager_cycles as f64 / report.cycles as f64
            );
            println!(
                "with {} aborts (the eager baseline's conflicts are repaired at commit).",
                report.protocol.aborts()
            );
            let rs = report.retcon.expect("RETCON stats");
            println!(
                "Per transaction it tracked {:.1} block(s) and lost {:.2} to steals.",
                rs.avg_blocks_tracked(),
                rs.avg_blocks_lost()
            );
        }
    }
}
