//! A tiny deterministic RNG for workload generation.

/// SplitMix64: a fast, high-quality 64-bit mixing generator. Used for all
//  workload randomization so runs are reproducible from a single seed with
/// no external dependencies.
///
/// # Example
///
/// ```
/// use retcon_workloads::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// `true` with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Derives an independent stream (e.g. per core).
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forks_are_independent() {
        let mut root = SplitMix64::new(5);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(6);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }
}
