//! `retcon-obs`: the repo's observability layer — transaction event
//! tracing, daemon metrics, phase profiling, and a minimal leveled
//! logger — built under one hard invariant: **observation never changes
//! simulation output**.
//!
//! The crate is a leaf (no dependencies, not even on the simulator) so
//! every other crate can thread it through without cycles. Its pieces:
//!
//! * [`event`] — the fixed-width [`TraceEvent`] schema, the [`Tracer`]
//!   seam contract, and the [`NoTrace`] no-op (monomorphizes away).
//! * [`ring`] — [`RingTracer`], the enabled implementation: one
//!   preallocated ring buffer of events, drop-oldest on overflow, with a
//!   deterministic stream hash for pinning event streams in tests.
//! * [`chrome`] — export to Chrome trace-event JSON (cores as threads),
//!   loadable in `chrome://tracing` and Perfetto.
//! * [`metrics`] — integer-only counters, gauges, and log2 histograms
//!   with Prometheus text exposition.
//! * [`logger`] — a leveled stderr logger ([`info!`]/[`warn!`] and
//!   friends) with hand-rolled UTC timestamps.
//! * [`phase`] — process-global phase accumulators (simulate vs
//!   serialize vs spill I/O) for the lab runner's profiling spans.
//!
//! ## The never-perturbs contract
//!
//! Tracing is attached *beside* the simulation, never inside its state:
//! a tracer records what happened at times the simulator already
//! computed, and nothing downstream reads it back. The disabled path is
//! an untaken `Option` branch (no allocation — pinned by the repo's
//! `no_alloc_machine` tests); the enabled path writes into memory
//! preallocated before the run starts. Either way the record bytes a
//! run produces are identical.

pub mod chrome;
pub mod event;
pub mod logger;
pub mod metrics;
pub mod phase;
pub mod ring;

pub use event::{EventKind, NoTrace, TraceEvent, Tracer};
pub use metrics::{validate_exposition, Counter, Gauge, Log2Hist, Registry};
pub use ring::RingTracer;
