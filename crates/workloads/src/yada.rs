//! The yada model: Delaunay mesh refinement.
//!
//! STAMP's yada refines a shared mesh by expanding "cavities" of elements
//! reached through pointer traversal. The paper is explicit that these
//! conflicts resist both restructuring ("we have not found a way to reduce
//! these conflicts short of restructuring the algorithm") and RETCON
//! (§5.4: "the values on which there is contention are used to index into
//! memory" and "the data elements being operated on are central to the
//! dataflow of the entire transaction"). The model reproduces that
//! structure: each transaction pointer-chases through a shared node table
//! (every loaded value feeds the next address) and rewrites the visited
//! nodes.

use retcon_isa::{Addr, BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total cavity refinements across all cores.
const TOTAL_TXS: u64 = 4096;
/// Mesh nodes (one word each; the region is small enough that concurrent
/// cavities overlap regularly, as real mesh neighborhoods do).
const NODES: u64 = 2048;
/// Nodes visited per cavity.
const CAVITY: usize = 4;
/// Per-node geometric work.
const WORK: u32 = 20;

/// Builds the yada model.
pub fn build(num_cores: usize, seed: u64) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let mesh = alloc.alloc_words(NODES);
    let iters = (TOTAL_TXS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x7961_6461); // "yada"

    // The mesh is pre-linked with pseudo-random successor indices.
    let mut init = Vec::new();
    let mut link = rng.fork(4242);
    for i in 0..NODES {
        init.push((Addr(mesh.0 + i), link.below(NODES)));
    }

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        let tape: Vec<u64> = (0..iters).map(|_| core_rng.below(NODES)).collect();
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_node = Reg(10);
        let r_addr = Reg(4);
        let r_val = Reg(5);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        b.input(r_node);
        b.tx_begin();
        // Chase CAVITY nodes: each loaded value picks the next node, and
        // each visited node is rewritten (re-linked).
        for _ in 0..CAVITY {
            b.work(WORK);
            b.mov(r_addr, r_node);
            b.bin(BinOp::And, r_addr, r_addr, Operand::Imm((NODES - 1) as i64));
            b.bin(BinOp::Add, r_addr, r_addr, Operand::Imm(mesh.0 as i64));
            b.load(r_val, r_addr, 0);
            // Re-link: successor rotated by one (stays within the mesh).
            b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
            b.bin(BinOp::And, r_val, r_val, Operand::Imm((NODES - 1) as i64));
            b.store(Operand::Reg(r_val), r_addr, 0);
            // The loaded (pre-increment) successor is the next node.
            b.bin(BinOp::Sub, r_node, r_val, Operand::Imm(1));
        }
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("yada program is well-formed"));
    }

    WorkloadSpec {
        name: "yada",
        programs,
        tapes,
        init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn programs_validate() {
        let spec = build(4, 7);
        for p in &spec.programs {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn conflicts_are_heavy() {
        let report = run_spec(&build(8, 7), System::Eager, 8).unwrap();
        assert!(
            report.breakdown().conflict > 0,
            "yada is abort-bound by construction"
        );
    }

    #[test]
    fn retcon_cannot_help_yada() {
        // Address-feeding loads force equality constraints that remote
        // writes violate; RETCON stays within noise of eager.
        let spec = build(8, 7);
        let eager = run_spec(&spec, System::Eager, 8).unwrap();
        let retcon = run_spec(&spec, System::Retcon, 8).unwrap();
        let ratio = retcon.cycles as f64 / eager.cycles as f64;
        assert!(ratio > 0.55, "unexpected large RETCON win on yada: {ratio}");
    }
}
