//! Architectural memory state.

use retcon_isa::Addr;

use crate::fx::FxHashMap;

/// Words per page: 512 × 8-byte words = 4 KiB pages.
const PAGE_WORDS: usize = 512;
/// log2(PAGE_WORDS), for shift/mask addressing.
const PAGE_SHIFT: u32 = PAGE_WORDS.trailing_zeros();
const PAGE_MASK: u64 = PAGE_WORDS as u64 - 1;

/// Highest page number served by the dense direct-indexed table; pages
/// above it live in the sparse fallback map. 4096 pages × 4 KiB = a 16 MiB
/// simulated address space before any access ever hashes.
const DENSE_PAGES: u64 = 4096;

/// The architectural memory of the simulated machine: 64-bit words, unwritten
/// words read as zero, like zero-initialized physical memory.
///
/// Storage is a paged flat store with a two-level index. Workloads allocate
/// addresses densely from zero (see `retcon_workloads::Alloc`), so the
/// first [`DENSE_PAGES`] page slots are a plain `Vec` — the hot-path word
/// load/store is two array indexes, no hashing at all. Pages beyond the
/// dense window (sparse test patterns, adversarial addresses) fall back to
/// a small [`FxHashMap`]. Either way there are no per-word map entries and
/// no allocation after the working set's pages exist.
///
/// `GlobalMemory` holds *values only*; which core may access a word, at what
/// latency, and whether doing so conflicts with a speculative region is the
/// business of [`MemorySystem`](crate::MemorySystem). Version management
/// (undo logs, write buffers) layers on top via
/// [`UndoLog`](crate::UndoLog) / [`WriteBuffer`](crate::WriteBuffer).
///
/// # Example
///
/// ```
/// use retcon_mem::GlobalMemory;
/// use retcon_isa::Addr;
///
/// let mut mem = GlobalMemory::new();
/// assert_eq!(mem.read(Addr(10)), 0);
/// mem.write(Addr(10), 99);
/// assert_eq!(mem.read(Addr(10)), 99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalMemory {
    /// Dense page table for page numbers below [`DENSE_PAGES`], grown on
    /// first write; `None` slots read as zero.
    dense: Vec<Option<Box<[u64; PAGE_WORDS]>>>,
    /// Sparse fallback for page numbers at or above [`DENSE_PAGES`].
    sparse: FxHashMap<u64, Box<[u64; PAGE_WORDS]>>,
    /// Number of words currently holding a nonzero value.
    nonzero: usize,
}

impl GlobalMemory {
    /// Creates an all-zero memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr` (zero if never written).
    #[inline]
    pub fn read(&self, addr: Addr) -> u64 {
        let pno = addr.0 >> PAGE_SHIFT;
        let idx = (addr.0 & PAGE_MASK) as usize;
        if pno < DENSE_PAGES {
            match self.dense.get(pno as usize) {
                Some(Some(page)) => page[idx],
                _ => 0,
            }
        } else {
            match self.sparse.get(&pno) {
                Some(page) => page[idx],
                None => 0,
            }
        }
    }

    /// Writes `value` to the word at `addr`.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) {
        let pno = addr.0 >> PAGE_SHIFT;
        let idx = (addr.0 & PAGE_MASK) as usize;
        if value == 0 {
            // Zero is the default: only touch pages that already exist.
            let page = if pno < DENSE_PAGES {
                self.dense.get_mut(pno as usize).and_then(Option::as_mut)
            } else {
                self.sparse.get_mut(&pno)
            };
            if let Some(page) = page {
                if page[idx] != 0 {
                    page[idx] = 0;
                    self.nonzero -= 1;
                }
            }
        } else {
            let page = if pno < DENSE_PAGES {
                if self.dense.len() <= pno as usize {
                    self.dense.resize(pno as usize + 1, None);
                }
                self.dense[pno as usize].get_or_insert_with(|| Box::new([0u64; PAGE_WORDS]))
            } else {
                self.sparse
                    .entry(pno)
                    .or_insert_with(|| Box::new([0u64; PAGE_WORDS]))
            };
            if page[idx] == 0 {
                self.nonzero += 1;
            }
            page[idx] = value;
        }
    }

    /// Number of words holding a nonzero value.
    pub fn nonzero_words(&self) -> usize {
        self.nonzero
    }

    /// The populated `(page number, page)` pairs, in arbitrary order.
    fn pages(&self) -> impl Iterator<Item = (u64, &[u64; PAGE_WORDS])> {
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(pno, p)| Some((pno as u64, &**p.as_ref()?)))
            .chain(self.sparse.iter().map(|(&pno, p)| (pno, &**p)))
    }

    /// Iterates over `(address, value)` pairs of nonzero words in arbitrary
    /// order. Intended for test assertions and debugging dumps; use
    /// [`iter_sorted`](Self::iter_sorted) when a stable order matters.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.pages()
            .flat_map(|(pno, page)| nonzero_words_of(pno, page))
    }

    /// Iterates over `(address, value)` pairs of nonzero words in ascending
    /// address order. Only the page *index* is sorted (one small allocation);
    /// words within a page are already stored in address order — the
    /// sorted-dump helper workload final-state verification shares.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        let mut pages: Vec<(u64, &[u64; PAGE_WORDS])> = self.pages().collect();
        pages.sort_unstable_by_key(|&(pno, _)| pno);
        pages
            .into_iter()
            .flat_map(|(pno, page)| nonzero_words_of(pno, page))
    }
}

/// The nonzero `(address, value)` pairs of one page, in address order.
fn nonzero_words_of(pno: u64, page: &[u64; PAGE_WORDS]) -> impl Iterator<Item = (Addr, u64)> + '_ {
    page.iter().enumerate().filter_map(move |(i, &v)| {
        if v != 0 {
            Some((Addr((pno << PAGE_SHIFT) | i as u64), v))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = GlobalMemory::new();
        assert_eq!(mem.read(Addr(0)), 0);
        assert_eq!(mem.read(Addr(u64::MAX)), 0);
    }

    #[test]
    fn write_then_read() {
        let mut mem = GlobalMemory::new();
        mem.write(Addr(5), 42);
        mem.write(Addr(6), 43);
        assert_eq!(mem.read(Addr(5)), 42);
        assert_eq!(mem.read(Addr(6)), 43);
        assert_eq!(mem.nonzero_words(), 2);
    }

    #[test]
    fn overwrite_with_zero_stays_sparse() {
        let mut mem = GlobalMemory::new();
        mem.write(Addr(5), 42);
        mem.write(Addr(5), 0);
        assert_eq!(mem.read(Addr(5)), 0);
        assert_eq!(mem.nonzero_words(), 0);
        // Writing zero to a never-written word allocates nothing.
        mem.write(Addr(1 << 40), 0);
        assert_eq!(mem.read(Addr(1 << 40)), 0);
    }

    #[test]
    fn iter_covers_written_words() {
        let mut mem = GlobalMemory::new();
        mem.write(Addr(1), 10);
        mem.write(Addr(2), 20);
        let mut pairs: Vec<(Addr, u64)> = mem.iter().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(Addr(1), 10), (Addr(2), 20)]);
    }

    #[test]
    fn iter_sorted_is_ascending_across_pages() {
        let mut mem = GlobalMemory::new();
        // Spread across three pages, written out of order.
        for &(a, v) in &[(5000u64, 3u64), (1, 1), (600, 2), (5001, 4)] {
            mem.write(Addr(a), v);
        }
        let pairs: Vec<(Addr, u64)> = mem.iter_sorted().collect();
        assert_eq!(
            pairs,
            vec![
                (Addr(1), 1),
                (Addr(600), 2),
                (Addr(5000), 3),
                (Addr(5001), 4)
            ]
        );
    }

    #[test]
    fn cross_page_boundary_addressing() {
        let mut mem = GlobalMemory::new();
        let boundary = PAGE_WORDS as u64;
        mem.write(Addr(boundary - 1), 7);
        mem.write(Addr(boundary), 8);
        assert_eq!(mem.read(Addr(boundary - 1)), 7);
        assert_eq!(mem.read(Addr(boundary)), 8);
        assert_eq!(mem.nonzero_words(), 2);
    }

    #[test]
    fn overwrite_nonzero_keeps_count() {
        let mut mem = GlobalMemory::new();
        mem.write(Addr(3), 1);
        mem.write(Addr(3), 2);
        assert_eq!(mem.nonzero_words(), 1);
        assert_eq!(mem.read(Addr(3)), 2);
    }
}
