//! Set-associative tag arrays with speculative access bits.

use retcon_isa::BlockAddr;

/// The speculative-access bits attached to a cached block (§2: a
/// "speculatively-read" and a "speculatively-written" bit per L1 block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpecBits {
    /// Block was read within the current speculative region.
    pub read: bool,
    /// Block was written within the current speculative region.
    pub written: bool,
}

impl SpecBits {
    /// Neither bit set.
    pub const NONE: SpecBits = SpecBits {
        read: false,
        written: false,
    };

    /// `true` if either bit is set.
    #[inline]
    pub fn any(self) -> bool {
        self.read || self.written
    }

    /// Merges another set of bits into this one.
    #[inline]
    pub fn merge(&mut self, other: SpecBits) {
        self.read |= other.read;
        self.written |= other.written;
    }
}

/// Geometry of a set-associative cache with 64-byte blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Derives geometry from a capacity in bytes and an associativity,
    /// assuming 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways * 64`.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        let blocks = capacity_bytes / 64;
        assert!(
            blocks % ways == 0 && blocks > 0,
            "capacity {capacity_bytes} not divisible into {ways}-way sets of 64B blocks"
        );
        CacheGeometry {
            sets: blocks / ways,
            ways,
        }
    }

    /// The set index for `block`.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) % self.sets
    }

    /// Total number of blocks the cache can hold.
    #[inline]
    pub fn capacity_blocks(&self) -> usize {
        self.sets * self.ways
    }
}

/// One way of one set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    block: BlockAddr,
    spec: SpecBits,
    /// Larger = more recently used.
    lru: u64,
}

/// A set-associative tag array.
///
/// The array tracks *presence* and speculative bits only; block data lives in
/// [`GlobalMemory`](crate::GlobalMemory) and coherence permissions live in
/// the directory. Replacement is LRU, preferring non-speculative victims so
/// speculative state stays resident as long as possible (evicted speculative
/// permissions are retained by the memory system's permissions-only cache).
#[derive(Debug, Clone)]
pub struct CacheArray {
    geometry: CacheGeometry,
    sets: Vec<Vec<Line>>,
    tick: u64,
}

impl CacheArray {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        CacheArray {
            geometry,
            sets: vec![Vec::new(); geometry.sets],
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// `true` if `block` is present.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.sets[self.geometry.set_of(block)]
            .iter()
            .any(|l| l.block == block)
    }

    /// Returns the speculative bits of `block`, if present.
    pub fn spec_bits(&self, block: BlockAddr) -> Option<SpecBits> {
        self.sets[self.geometry.set_of(block)]
            .iter()
            .find(|l| l.block == block)
            .map(|l| l.spec)
    }

    /// Marks `block` most-recently-used and returns whether it was present.
    pub fn touch(&mut self, block: BlockAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.geometry.set_of(block);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.block == block) {
            line.lru = tick;
            true
        } else {
            false
        }
    }

    /// Inserts `block` (MRU position), evicting the LRU line if the set is
    /// full. Returns the evicted block and its speculative bits, if any.
    ///
    /// Victim selection prefers lines without speculative bits; if every line
    /// in the set is speculative, the LRU speculative line is evicted and its
    /// bits are returned so the caller can preserve them in the
    /// permissions-only cache.
    pub fn insert(&mut self, block: BlockAddr) -> Option<(BlockAddr, SpecBits)> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.geometry.set_of(block);
        let ways = self.geometry.ways;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.block == block) {
            line.lru = tick;
            return None;
        }
        let mut evicted = None;
        if set.len() >= ways {
            // Prefer the LRU non-speculative line; fall back to the LRU line.
            let victim_idx = set
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.spec.any())
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .unwrap_or_else(|| {
                    set.iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.lru)
                        .map(|(i, _)| i)
                        .expect("full set has lines")
                });
            let victim = set.swap_remove(victim_idx);
            evicted = Some((victim.block, victim.spec));
        }
        set.push(Line {
            block,
            spec: SpecBits::NONE,
            lru: tick,
        });
        evicted
    }

    /// Removes `block` if present, returning its speculative bits.
    pub fn remove(&mut self, block: BlockAddr) -> Option<SpecBits> {
        let set = self.geometry.set_of(block);
        let lines = &mut self.sets[set];
        let idx = lines.iter().position(|l| l.block == block)?;
        Some(lines.swap_remove(idx).spec)
    }

    /// ORs `bits` into the speculative bits of `block`. Returns `false` if
    /// the block is not present.
    pub fn mark_spec(&mut self, block: BlockAddr, bits: SpecBits) -> bool {
        let set = self.geometry.set_of(block);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.block == block) {
            line.spec.merge(bits);
            true
        } else {
            false
        }
    }

    /// Clears the speculative bits of `block` if it is resident. Returns
    /// `true` if the block was present with at least one bit set. Unlike
    /// [`clear_all_spec`](Self::clear_all_spec) this touches one set only,
    /// so a commit clearing N tracked blocks costs O(N), not O(cache).
    pub fn clear_spec(&mut self, block: BlockAddr) -> bool {
        let set = self.geometry.set_of(block);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.block == block) {
            let had = line.spec.any();
            line.spec = SpecBits::NONE;
            had
        } else {
            false
        }
    }

    /// Clears the speculative bits of every resident block, returning how
    /// many blocks had any bit set.
    pub fn clear_all_spec(&mut self) -> usize {
        let mut cleared = 0;
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.spec.any() {
                    cleared += 1;
                    line.spec = SpecBits::NONE;
                }
            }
        }
        cleared
    }

    /// Iterates over resident blocks with at least one speculative bit set.
    pub fn spec_blocks(&self) -> impl Iterator<Item = (BlockAddr, SpecBits)> + '_ {
        self.sets
            .iter()
            .flat_map(|set| set.iter())
            .filter(|l| l.spec.any())
            .map(|l| (l.block, l.spec))
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// `true` if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets, 2 ways.
        CacheArray::new(CacheGeometry { sets: 2, ways: 2 })
    }

    #[test]
    fn geometry_from_capacity() {
        let g = CacheGeometry::new(64 * 1024, 4);
        assert_eq!(g.sets, 256);
        assert_eq!(g.capacity_blocks(), 1024);
        let g2 = CacheGeometry::new(1024 * 1024, 4);
        assert_eq!(g2.sets, 4096);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        let _ = CacheGeometry::new(100, 3);
    }

    #[test]
    fn insert_and_contains() {
        let mut c = tiny();
        assert!(c.insert(BlockAddr(0)).is_none());
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (even block numbers, 2 sets).
        c.insert(BlockAddr(0));
        c.insert(BlockAddr(2));
        c.touch(BlockAddr(0)); // 2 is now LRU
        let evicted = c.insert(BlockAddr(4)).expect("eviction");
        assert_eq!(evicted.0, BlockAddr(2));
        assert!(c.contains(BlockAddr(0)));
        assert!(c.contains(BlockAddr(4)));
    }

    #[test]
    fn eviction_prefers_non_speculative_victims() {
        let mut c = tiny();
        c.insert(BlockAddr(0));
        c.insert(BlockAddr(2));
        c.mark_spec(
            BlockAddr(0),
            SpecBits {
                read: true,
                written: false,
            },
        );
        // Block 0 is LRU but speculative; block 2 should be evicted instead.
        let evicted = c.insert(BlockAddr(4)).expect("eviction");
        assert_eq!(evicted.0, BlockAddr(2));
        assert!(c.contains(BlockAddr(0)));
    }

    #[test]
    fn evicting_speculative_line_returns_bits() {
        let mut c = tiny();
        c.insert(BlockAddr(0));
        c.insert(BlockAddr(2));
        c.mark_spec(
            BlockAddr(0),
            SpecBits {
                read: true,
                written: false,
            },
        );
        c.mark_spec(
            BlockAddr(2),
            SpecBits {
                read: false,
                written: true,
            },
        );
        let (block, bits) = c.insert(BlockAddr(4)).expect("eviction");
        assert_eq!(block, BlockAddr(0)); // LRU among speculative lines
        assert!(bits.read);
    }

    #[test]
    fn reinsert_refreshes_lru_without_eviction() {
        let mut c = tiny();
        c.insert(BlockAddr(0));
        c.insert(BlockAddr(2));
        assert!(c.insert(BlockAddr(0)).is_none());
        // Now 2 is LRU.
        let evicted = c.insert(BlockAddr(4)).unwrap();
        assert_eq!(evicted.0, BlockAddr(2));
    }

    #[test]
    fn spec_bit_lifecycle() {
        let mut c = tiny();
        c.insert(BlockAddr(1));
        assert!(c.mark_spec(
            BlockAddr(1),
            SpecBits {
                read: true,
                written: false
            }
        ));
        assert!(c.mark_spec(
            BlockAddr(1),
            SpecBits {
                read: false,
                written: true
            }
        ));
        let bits = c.spec_bits(BlockAddr(1)).unwrap();
        assert!(bits.read && bits.written);
        assert_eq!(c.spec_blocks().count(), 1);
        assert_eq!(c.clear_all_spec(), 1);
        assert_eq!(c.spec_blocks().count(), 0);
        assert!(!c.mark_spec(
            BlockAddr(9),
            SpecBits {
                read: true,
                written: false
            }
        ));
    }

    #[test]
    fn remove_returns_bits() {
        let mut c = tiny();
        c.insert(BlockAddr(3));
        c.mark_spec(
            BlockAddr(3),
            SpecBits {
                read: true,
                written: true,
            },
        );
        let bits = c.remove(BlockAddr(3)).unwrap();
        assert!(bits.read && bits.written);
        assert!(!c.contains(BlockAddr(3)));
        assert!(c.remove(BlockAddr(3)).is_none());
    }

    #[test]
    fn spec_bits_merge() {
        let mut b = SpecBits::NONE;
        assert!(!b.any());
        b.merge(SpecBits {
            read: true,
            written: false,
        });
        assert!(b.any() && b.read && !b.written);
        b.merge(SpecBits {
            read: false,
            written: true,
        });
        assert!(b.read && b.written);
    }
}
