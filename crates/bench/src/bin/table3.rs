//! Table 3: RETCON structure utilization and pre-commit runtime overhead.
//!
//! Columns per the paper: average (maximum) per committed transaction of
//! 64-byte blocks stolen away, initial-value-buffer entries, symbolic
//! registers repaired, symbolic stores performed ("private stores"),
//! symbolic constraints checked; plus average pre-commit stall cycles and
//! the percentage of transaction lifetime spent in pre-commit repair.
//!
//! Paper expectations: structures stay small (≤16 IVB entries even for
//! python), commit stall under 1% for all but two workloads and under 4%
//! everywhere.
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Table3)
}
