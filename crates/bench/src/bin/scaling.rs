//! Core-count scaling sweep (supplementary): speedup at 1–32 cores for the
//! workloads whose scaling curves the paper discusses qualitatively
//! (python_opt's "near-linear scaling on 32 cores" being the headline).

use retcon_bench::{print_header, seq_cycles, SEED};
use retcon_workloads::{run, System, Workload};

fn main() {
    print_header("Scaling sweep: speedup vs cores (eager | RetCon)", "");
    let workloads = [
        Workload::Counter,
        Workload::Genome { resizable: true },
        Workload::Python { optimized: true },
    ];
    let cores = [1usize, 2, 4, 8, 16, 32];
    for w in workloads {
        let seq = seq_cycles(w);
        println!("\n{}:", w.label());
        println!("{:>7} {:>9} {:>9}", "cores", "eager", "RetCon");
        for &n in &cores {
            let eager = run(w, System::Eager, n, SEED)
                .expect("runs")
                .speedup_over(seq);
            let retcon = run(w, System::Retcon, n, SEED)
                .expect("runs")
                .speedup_over(seq);
            println!("{n:>7} {eager:>9.1} {retcon:>9.1}");
        }
    }
    println!("\nExpected: RetCon tracks ideal scaling on auxiliary-data workloads;");
    println!("eager flattens (or degrades) as contention on the hot words grows.");
}
