//! Table 1: the simulated machine configuration.

use retcon::RetconConfig;
use retcon_bench::print_header;
use retcon_sim::SimConfig;

fn main() {
    print_header("Table 1: simulated machine configuration", "");
    let cfg = SimConfig::default();
    let rc = RetconConfig::default();
    let lat = cfg.mem.latency;
    println!(
        "Processor             {} in-order cores, 1 IPC",
        cfg.num_cores
    );
    println!(
        "L1 cache              {} KB, {}-way set associative, 64B blocks ({} sets)",
        cfg.mem.l1.capacity_blocks() * 64 / 1024,
        cfg.mem.l1.ways,
        cfg.mem.l1.sets
    );
    println!(
        "L2 cache              Private, {} MB, {}-way, 64B blocks, {}-cycle hit latency",
        cfg.mem.l2.capacity_blocks() * 64 / 1024 / 1024,
        cfg.mem.l2.ways,
        lat.l2_hit
    );
    println!(
        "Memory                {} cycles DRAM lookup latency",
        lat.dram
    );
    println!("Permissions-only      unbounded overflow map (capacity aborts impossible)");
    println!(
        "Coherence             directory-based, {}-cycle hop latency",
        lat.hop
    );
    println!(
        "RETCON structures     {}-entry initial value buffer, {}-entry constraint buffer, {}-entry symbolic store buffer",
        rc.ivb_capacity, rc.constraint_capacity, rc.ssb_capacity
    );
    println!(
        "Predictor             track after {} conflict(s); back off {} conflicts on violation",
        rc.initial_threshold, rc.violation_backoff
    );
}
