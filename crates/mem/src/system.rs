//! The memory-system façade: caches + directory + latency + speculative bits.

use std::collections::HashMap;
use std::fmt;

use retcon_isa::{Addr, BlockAddr};

use crate::cache::{CacheArray, SpecBits};
use crate::config::MemConfig;
use crate::directory::Directory;
use crate::memory::GlobalMemory;
use crate::stats::MemStats;

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The two kinds of memory access, as seen by coherence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Requires a readable copy.
    Read,
    /// Requires an exclusive copy.
    Write,
}

/// A conflict detected by snooping another core's speculative bits (§2: "a
/// conflict is defined as an external write request to a block that has been
/// speculatively read or any external request to a speculatively-written
/// block").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The core whose speculative state conflicts with the request.
    pub core: CoreId,
    /// That core's speculative bits on the requested block.
    pub bits: SpecBits,
}

/// Result of [`MemorySystem::probe`]: what an access *would* cost and whom it
/// would conflict with, without changing any state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// Cycles the access will take.
    pub latency: u64,
    /// Cores with conflicting speculative permissions on the block.
    pub conflicts: Vec<Conflict>,
}

/// Where an access was serviced (used for latency and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    L1Hit,
    L1Upgrade,
    L2Hit,
    L2HitUpgrade,
    Miss { forwarded: bool },
}

/// The complete simulated memory system: architectural memory, per-core
/// L1/L2 tag arrays, a directory, per-core permissions-only overflow caches,
/// and latency/statistics accounting.
///
/// # Protocol contract
///
/// Concurrency-control protocols drive the system with a two-phase pattern:
///
/// 1. [`probe`](Self::probe) — returns the latency and any conflicting cores
///    without changing state;
/// 2. the protocol resolves each conflict (abort the victim and clear its
///    speculative bits via [`clear_spec`](Self::clear_spec), steal the block
///    via [`invalidate_block`](Self::invalidate_block), or stall the
///    requester);
/// 3. [`access`](Self::access) — performs the coherence transitions, cache
///    fills/evictions and speculative-bit updates, and returns the latency.
///
/// Calling `access` while another core still holds conflicting speculative
/// bits is a protocol bug; debug builds panic on it.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    mem: GlobalMemory,
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    dir: Directory,
    /// Per-core permissions-only cache: speculative bits for blocks evicted
    /// from the core's caches mid-transaction (OneTM-style overflow safety).
    po: Vec<HashMap<u64, SpecBits>>,
    cfg: MemConfig,
    stats: Vec<MemStats>,
}

impl MemorySystem {
    /// Creates a memory system for `num_cores` cores.
    pub fn new(cfg: MemConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        MemorySystem {
            mem: GlobalMemory::new(),
            l1: (0..num_cores).map(|_| CacheArray::new(cfg.l1)).collect(),
            l2: (0..num_cores).map(|_| CacheArray::new(cfg.l2)).collect(),
            dir: Directory::new(),
            po: vec![HashMap::new(); num_cores],
            cfg,
            stats: vec![MemStats::default(); num_cores],
        }
    }

    /// Number of cores sharing this memory system.
    pub fn num_cores(&self) -> usize {
        self.l1.len()
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Reads the architectural value of a word (no timing, no coherence).
    #[inline]
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.mem.read(addr)
    }

    /// Writes the architectural value of a word (no timing, no coherence).
    /// Used for workload initialization, undo-log rollback and commit-time
    /// repair, whose coherence actions are modelled separately.
    #[inline]
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.mem.write(addr, value);
    }

    /// Direct access to the architectural memory (for integration tests and
    /// version-management helpers).
    pub fn memory(&self) -> &GlobalMemory {
        &self.mem
    }

    /// Mutable access to the architectural memory.
    pub fn memory_mut(&mut self) -> &mut GlobalMemory {
        &mut self.mem
    }

    fn classify(&self, core: CoreId, block: BlockAddr, kind: AccessKind) -> Service {
        let needs_exclusive = kind == AccessKind::Write;
        let has_exclusive = self.dir.state(block).holds_modified(core);
        if self.l1[core.0].contains(block) {
            if needs_exclusive && !has_exclusive {
                Service::L1Upgrade
            } else {
                Service::L1Hit
            }
        } else if self.l2[core.0].contains(block) {
            if needs_exclusive && !has_exclusive {
                Service::L2HitUpgrade
            } else {
                Service::L2Hit
            }
        } else {
            Service::Miss {
                forwarded: self.dir.forwarded_from_owner(core, block),
            }
        }
    }

    fn latency_of(&self, service: Service) -> u64 {
        let lat = &self.cfg.latency;
        match service {
            Service::L1Hit => lat.l1_hit,
            Service::L1Upgrade => lat.l1_hit + lat.upgrade(),
            Service::L2Hit => lat.l2_hit,
            Service::L2HitUpgrade => lat.l2_hit + lat.upgrade(),
            Service::Miss { forwarded } => lat.l2_miss(forwarded),
        }
    }

    /// The speculative bits `core` holds on `block`, whether resident in its
    /// L1 or overflowed into its permissions-only cache.
    pub fn spec_bits(&self, core: CoreId, block: BlockAddr) -> SpecBits {
        let mut bits = self.l1[core.0].spec_bits(block).unwrap_or(SpecBits::NONE);
        if let Some(over) = self.po[core.0].get(&block.0) {
            bits.merge(*over);
        }
        bits
    }

    /// Computes the latency and conflict set of an access without performing
    /// it.
    pub fn probe(&self, core: CoreId, addr: Addr, kind: AccessKind) -> Probe {
        let block = addr.block();
        let latency = self.latency_of(self.classify(core, block, kind));
        Probe {
            latency,
            conflicts: self.conflicts(core, addr, kind),
        }
    }

    /// The cores whose speculative bits conflict with `core` performing
    /// `kind` on `addr`'s block.
    pub fn conflicts(&self, core: CoreId, addr: Addr, kind: AccessKind) -> Vec<Conflict> {
        let block = addr.block();
        let mut out = Vec::new();
        for other in 0..self.num_cores() {
            if other == core.0 {
                continue;
            }
            let bits = self.spec_bits(CoreId(other), block);
            let conflicting = match kind {
                AccessKind::Read => bits.written,
                AccessKind::Write => bits.read || bits.written,
            };
            if conflicting {
                out.push(Conflict {
                    core: CoreId(other),
                    bits,
                });
            }
        }
        out
    }

    /// Performs the access: directory transition, cache fills (with
    /// inclusion-maintaining evictions), invalidation of remote copies, and —
    /// when `speculative` — setting this core's speculative bit for the
    /// block. Returns the access latency in cycles.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if another core still holds conflicting
    /// speculative bits (the protocol must resolve conflicts first).
    pub fn access(&mut self, core: CoreId, addr: Addr, kind: AccessKind, speculative: bool) -> u64 {
        let block = addr.block();
        debug_assert!(
            self.conflicts(core, addr, kind).is_empty(),
            "access by {core} to {addr:?} with unresolved conflicts: {:?}",
            self.conflicts(core, addr, kind)
        );
        let service = self.classify(core, block, kind);
        let latency = self.latency_of(service);

        // Directory transition + remote copy removal.
        let victims = match kind {
            AccessKind::Read => {
                // A remote modified owner is downgraded but keeps its copy.
                self.dir.grant_read(core, block);
                Vec::new()
            }
            AccessKind::Write => self.dir.grant_write(core, block),
        };
        let n_victims = victims.len() as u64;
        for v in victims {
            self.drop_copy(v, block);
            self.stats[v.0].invalidations_received += 1;
        }
        self.stats[core.0].invalidations_sent += n_victims;

        // Fill local caches (L2 then L1, maintaining inclusion).
        self.fill(core, block);

        // Speculative bit update.
        if speculative {
            let bits = match kind {
                AccessKind::Read => SpecBits {
                    read: true,
                    written: false,
                },
                AccessKind::Write => SpecBits {
                    read: false,
                    written: true,
                },
            };
            self.mark_spec(core, block, bits);
        }

        // Statistics.
        let st = &mut self.stats[core.0];
        st.accesses += 1;
        match service {
            Service::L1Hit => st.l1_hits += 1,
            Service::L1Upgrade | Service::L2HitUpgrade => st.upgrades += 1,
            Service::L2Hit => st.l2_hits += 1,
            Service::Miss { .. } => st.misses += 1,
        }
        latency
    }

    /// Sets speculative bits on a block the core already caches (or tracks in
    /// its permissions-only cache).
    pub fn mark_spec(&mut self, core: CoreId, block: BlockAddr, bits: SpecBits) {
        if !self.l1[core.0].mark_spec(block, bits) {
            let entry = self.po[core.0].entry(block.0).or_insert(SpecBits::NONE);
            entry.merge(bits);
        }
    }

    /// Removes `block` from `core`'s caches and directory entry, returning
    /// any speculative bits it carried (cache + permissions-only cache).
    /// This is the "steal" primitive used by RETCON and by protocols
    /// resolving conflicts in favour of a remote requester.
    pub fn invalidate_block(&mut self, core: CoreId, block: BlockAddr) -> SpecBits {
        let mut bits = SpecBits::NONE;
        if let Some(b) = self.l1[core.0].remove(block) {
            bits.merge(b);
        }
        self.l2[core.0].remove(block);
        if let Some(b) = self.po[core.0].remove(&block.0) {
            bits.merge(b);
        }
        self.dir.drop_holder(core, block);
        bits
    }

    /// Clears every speculative bit held by `core` (transaction commit or
    /// abort). Returns the number of blocks that had bits set.
    pub fn clear_spec(&mut self, core: CoreId) -> usize {
        let cleared = self.l1[core.0].clear_all_spec();
        let overflowed = self.po[core.0].len();
        self.po[core.0].clear();
        cleared + overflowed
    }

    /// Blocks on which `core` currently holds speculative bits.
    pub fn spec_blocks(&self, core: CoreId) -> Vec<(BlockAddr, SpecBits)> {
        let mut blocks: Vec<(BlockAddr, SpecBits)> = self.l1[core.0].spec_blocks().collect();
        for (&b, &bits) in &self.po[core.0] {
            blocks.push((BlockAddr(b), bits));
        }
        blocks.sort_by_key(|(b, _)| b.0);
        blocks.dedup_by(|(b1, bits1), (b2, bits2)| {
            if b1 == b2 {
                bits2.merge(*bits1);
                true
            } else {
                false
            }
        });
        blocks
    }

    /// `true` if `core` currently caches `block` (L1 or L2).
    pub fn caches_block(&self, core: CoreId, block: BlockAddr) -> bool {
        self.l1[core.0].contains(block) || self.l2[core.0].contains(block)
    }

    /// This core's accumulated statistics.
    pub fn stats(&self, core: CoreId) -> &MemStats {
        &self.stats[core.0]
    }

    /// Resets all statistics counters.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = MemStats::default();
        }
    }

    /// The directory (read-only), for tests asserting coherence state.
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    fn drop_copy(&mut self, core: CoreId, block: BlockAddr) {
        // Invalidation from a remote write: remove the copy everywhere. Any
        // speculative bits still present here are a protocol error (debug
        // asserted in `access`), except bits the protocol deliberately left
        // to be discarded after a steal; merge them into the permissions-only
        // cache would *re-create* the conflict, so they are dropped.
        self.l1[core.0].remove(block);
        self.l2[core.0].remove(block);
        self.dir.drop_holder(core, block);
    }

    fn fill(&mut self, core: CoreId, block: BlockAddr) {
        // L2 fill with inclusion: evicting an L2 block removes it from L1 too
        // and gives up its directory holding.
        if let Some((victim, _)) = self.l2[core.0].insert(block) {
            if let Some(bits) = self.l1[core.0].remove(victim) {
                if bits.any() {
                    self.overflow_spec(core, victim, bits);
                }
            }
            // The block leaves this core entirely.
            self.dir.drop_holder(core, victim);
        }
        // L1 fill.
        if let Some((victim, bits)) = self.l1[core.0].insert(block) {
            if bits.any() {
                self.overflow_spec(core, victim, bits);
            }
            // Victim may still be in L2; only drop the directory holding if
            // it is gone from both levels.
            if !self.l2[core.0].contains(victim) {
                self.dir.drop_holder(core, victim);
            }
        }
    }

    fn overflow_spec(&mut self, core: CoreId, block: BlockAddr, bits: SpecBits) {
        self.stats[core.0].spec_overflows += 1;
        let entry = self.po[core.0].entry(block.0).or_insert(SpecBits::NONE);
        entry.merge(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheGeometry;
    use crate::config::LatencyModel;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    fn ms(cores: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::default(), cores)
    }

    #[test]
    fn cold_miss_then_hits() {
        let mut m = ms(1);
        let a = Addr(0);
        // Cold: directory miss to DRAM.
        assert_eq!(m.access(C0, a, AccessKind::Read, false), 140);
        // Warm: L1 hit.
        assert_eq!(m.access(C0, a, AccessKind::Read, false), 1);
        // Same block, different word: still a hit.
        assert_eq!(m.access(C0, Addr(5), AccessKind::Read, false), 1);
        let st = m.stats(C0);
        assert_eq!(st.accesses, 3);
        assert_eq!(st.misses, 1);
        assert_eq!(st.l1_hits, 2);
    }

    #[test]
    fn upgrade_miss_costs_directory_roundtrip() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, false);
        m.access(C1, a, AccessKind::Read, false);
        // C0 holds Shared; write needs upgrade: 1 (L1) + 40 (2 hops).
        assert_eq!(m.access(C0, a, AccessKind::Write, false), 41);
        assert_eq!(m.stats(C0).upgrades, 1);
        // C1's copy was invalidated.
        assert!(!m.caches_block(C1, a.block()));
        assert_eq!(m.stats(C1).invalidations_received, 1);
    }

    #[test]
    fn dirty_forward_cheaper_than_dram() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, false); // C0 Modified
                                                   // C1 read: forwarded from owner = 2*20 + 20 = 60.
        assert_eq!(m.access(C1, a, AccessKind::Read, false), 60);
        // Both now share.
        assert!(m.directory().state(a.block()).holds(C0));
        assert!(m.directory().state(a.block()).holds(C1));
    }

    #[test]
    fn write_after_owner_write_invalidates() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, false);
        m.access(C1, a, AccessKind::Write, false);
        assert!(m.directory().state(a.block()).holds_modified(C1));
        assert!(!m.caches_block(C0, a.block()));
    }

    #[test]
    fn speculative_bits_set_and_conflict() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, true);
        let bits = m.spec_bits(C0, a.block());
        assert!(bits.read && !bits.written);

        // Remote read does not conflict with a spec-read block.
        assert!(m.probe(C1, a, AccessKind::Read).conflicts.is_empty());
        // Remote write does.
        let p = m.probe(C1, a, AccessKind::Write);
        assert_eq!(p.conflicts.len(), 1);
        assert_eq!(p.conflicts[0].core, C0);
    }

    #[test]
    fn spec_written_conflicts_with_remote_read() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, true);
        let p = m.probe(C1, a, AccessKind::Read);
        assert_eq!(p.conflicts.len(), 1);
        assert!(p.conflicts[0].bits.written);
    }

    #[test]
    fn clear_spec_resolves_conflicts() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, true);
        assert_eq!(m.clear_spec(C0), 1);
        assert!(m.probe(C1, a, AccessKind::Read).conflicts.is_empty());
        // Second clear is a no-op.
        assert_eq!(m.clear_spec(C0), 0);
    }

    #[test]
    fn invalidate_block_steals_and_returns_bits() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, true);
        let bits = m.invalidate_block(C0, a.block());
        assert!(bits.read);
        assert!(!m.caches_block(C0, a.block()));
        assert!(m.probe(C1, a, AccessKind::Write).conflicts.is_empty());
        // After the steal, C1 can write at DRAM cost (block now uncached).
        assert_eq!(m.access(C1, a, AccessKind::Write, false), 140);
    }

    #[test]
    fn spec_bits_survive_capacity_eviction_via_po_cache() {
        // Tiny caches force evictions: 1-set 1-way L1, 1-set 1-way L2.
        let cfg = MemConfig {
            l1: CacheGeometry { sets: 1, ways: 1 },
            l2: CacheGeometry { sets: 1, ways: 1 },
            latency: LatencyModel::default(),
        };
        let mut m = MemorySystem::new(cfg, 2);
        let a = Addr(0);
        let b = Addr(8); // different block, same set
        m.access(C0, a, AccessKind::Read, true);
        m.access(C0, b, AccessKind::Read, true); // evicts block of `a`
        assert!(!m.caches_block(C0, a.block()));
        // Permissions survive: a remote write still conflicts.
        let p = m.probe(C1, a, AccessKind::Write);
        assert_eq!(p.conflicts.len(), 1);
        assert!(m.stats(C0).spec_overflows >= 1);
        // And spec_blocks reports both.
        let blocks = m.spec_blocks(C0);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn spec_blocks_merges_cache_and_overflow() {
        let mut m = ms(1);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Read, true);
        m.mark_spec(
            C0,
            a.block(),
            SpecBits {
                read: false,
                written: true,
            },
        );
        let blocks = m.spec_blocks(C0);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].1.read && blocks[0].1.written);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unresolved conflicts")]
    fn unresolved_conflict_panics_in_debug() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, true);
        let _ = m.access(C1, a, AccessKind::Read, false);
    }

    #[test]
    fn architectural_rw_bypasses_timing() {
        let mut m = ms(1);
        m.write_word(Addr(3), 9);
        assert_eq!(m.read_word(Addr(3)), 9);
        assert_eq!(m.stats(C0).accesses, 0);
    }

    #[test]
    fn downgrade_keeps_owner_copy() {
        let mut m = ms(2);
        let a = Addr(0);
        m.access(C0, a, AccessKind::Write, false);
        m.access(C1, a, AccessKind::Read, false);
        assert!(m.caches_block(C0, a.block()));
        assert!(m.caches_block(C1, a.block()));
        // C0 writing again needs an upgrade (it was downgraded to Shared).
        assert_eq!(m.access(C0, a, AccessKind::Write, false), 41);
    }
}
