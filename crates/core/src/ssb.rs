//! The symbolic store buffer (SSB).
//!
//! Figure 5 of the paper: *"The Symbolic store buffer records
//! symbolically-tracked stores. It is indexed by data address and accessed
//! like a conventional cache-like unordered store buffer. Each entry contains
//! the address tag bits, the store's concrete value, and the store's symbolic
//! value (if any)."*
//!
//! An entry exists for a word when the transaction has stored either a
//! symbolic value to it, or *any* value to a word of a symbolically tracked
//! block (§4.2's store flowchart). Later loads forward from the buffer —
//! copying the symbolic value rather than chaining through it, which is what
//! flattens store-load dependences and lets commit repair every entry
//! independently (§4.3).

use retcon_isa::Addr;

use crate::sym::SymValue;

/// One word-granularity symbolic store buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbEntry {
    /// Target word of the store.
    pub addr: Addr,
    /// The concrete value stored (the best-guess value as of execution).
    pub value: u64,
    /// The symbolic value stored, if the source register carried one.
    pub sym: Option<SymValue>,
}

/// The symbolic store buffer.
///
/// Entries are kept in first-store order (so commit-time draining is
/// deterministic); a store to a word that already has an entry overwrites
/// the entry in place.
#[derive(Debug, Clone, Default)]
pub struct Ssb {
    entries: Vec<SsbEntry>,
    capacity: usize,
    /// Presence filter: bit `addr % 64` set for every buffered word.
    /// `invalidate` leaves bits stale (a stale bit only costs a scan,
    /// never a wrong answer); `clear` resets it. A clear bit
    /// short-circuits the store-forward miss path — the common case for
    /// every load not covered by this transaction's stores.
    filter: u64,
}

impl Ssb {
    #[inline]
    fn filter_bit(addr: Addr) -> u64 {
        1u64 << (addr.0 & 63)
    }
}

/// Error returned when the buffer is full (the transaction must fall back to
/// an abort; Table 3 shows 32 entries suffice for virtually all
/// transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbOverflow;

impl Ssb {
    /// Creates an empty buffer holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Ssb {
            entries: Vec::new(),
            capacity,
            filter: 0,
        }
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a store. Overwrites in place if `addr` already has an entry;
    /// otherwise appends.
    ///
    /// # Errors
    ///
    /// Returns [`SsbOverflow`] if a new entry is needed and the buffer is
    /// full.
    pub fn insert(
        &mut self,
        addr: Addr,
        value: u64,
        sym: Option<SymValue>,
    ) -> Result<(), SsbOverflow> {
        if self.filter & Self::filter_bit(addr) != 0 {
            if let Some(e) = self.entries.iter_mut().find(|e| e.addr == addr) {
                e.value = value;
                e.sym = sym;
                return Ok(());
            }
        }
        if self.entries.len() >= self.capacity {
            return Err(SsbOverflow);
        }
        self.entries.push(SsbEntry { addr, value, sym });
        self.filter |= Self::filter_bit(addr);
        Ok(())
    }

    /// The buffered store to `addr`, if any (store-to-load forwarding).
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<&SsbEntry> {
        if self.filter & Self::filter_bit(addr) == 0 {
            return None;
        }
        self.entries.iter().find(|e| e.addr == addr)
    }

    /// Removes the entry for `addr` (a non-symbolic store overwrote it).
    /// Returns `true` if an entry was removed.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        if self.filter & Self::filter_bit(addr) == 0 {
            return false;
        }
        match self.entries.iter().position(|e| e.addr == addr) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Iterates over entries in first-store order.
    pub fn iter(&self) -> impl Iterator<Item = &SsbEntry> {
        self.entries.iter()
    }

    /// Forgets all entries (transaction end).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.filter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_forward() {
        let mut ssb = Ssb::new(4);
        ssb.insert(Addr(1), 10, None).unwrap();
        let sym = SymValue::root(Addr(8)).add(2);
        ssb.insert(Addr(2), 20, Some(sym)).unwrap();
        assert_eq!(ssb.len(), 2);
        assert_eq!(ssb.lookup(Addr(1)).unwrap().value, 10);
        assert_eq!(ssb.lookup(Addr(2)).unwrap().sym, Some(sym));
        assert!(ssb.lookup(Addr(3)).is_none());
    }

    #[test]
    fn overwrite_in_place_keeps_order_and_capacity() {
        let mut ssb = Ssb::new(2);
        ssb.insert(Addr(1), 10, None).unwrap();
        ssb.insert(Addr(2), 20, None).unwrap();
        // Overwriting does not need a new slot even when full.
        ssb.insert(Addr(1), 11, None).unwrap();
        let order: Vec<Addr> = ssb.iter().map(|e| e.addr).collect();
        assert_eq!(order, vec![Addr(1), Addr(2)]);
        assert_eq!(ssb.lookup(Addr(1)).unwrap().value, 11);
    }

    #[test]
    fn overflow_reported() {
        let mut ssb = Ssb::new(1);
        ssb.insert(Addr(1), 10, None).unwrap();
        assert_eq!(ssb.insert(Addr(2), 20, None), Err(SsbOverflow));
        assert_eq!(ssb.len(), 1);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut ssb = Ssb::new(4);
        ssb.insert(Addr(1), 10, None).unwrap();
        assert!(ssb.invalidate(Addr(1)));
        assert!(!ssb.invalidate(Addr(1)));
        assert!(ssb.lookup(Addr(1)).is_none());
        assert!(ssb.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut ssb = Ssb::new(4);
        ssb.insert(Addr(1), 10, None).unwrap();
        ssb.clear();
        assert!(ssb.is_empty());
    }
}
