//! Bounded DFS over scheduling choice points (DPOR-lite).
//!
//! The search replays the scenario with a [`TraceSchedule`]: a prescribed
//! prefix of choices, default-deterministic beyond it. After each run, the
//! recorded choice-point log tells the search where alternatives existed;
//! it enqueues each unexplored alternative as `log[0..p] + [j]` — the
//! standard stateless-model-checking replay scheme (cf. the bounded
//! exploration harnesses in the kani-adjacent tooling this subsystem
//! follows).
//!
//! # Pruning (the "-lite" in DPOR-lite)
//!
//! At a choice point, an alternative core is only worth branching to when
//! its *immediate next action* conflicts with another eligible core's next
//! action ([`CoreAction::conflicts_with`](retcon_sim::CoreAction)):
//! reordering cores whose next actions are pairwise independent commutes
//! at this point, so only the default order is explored through it. This
//! is a per-point persistent-set approximation — it inspects one
//! instruction of lookahead, not whole-execution happens-before relations,
//! so it prunes less than full DPOR but never needs a dependency log. The
//! search stays a *bounded heuristic*: completeness within the budget is
//! claimed only relative to this equivalence, and the budget itself
//! (schedule count, branch depth) truncates deep interleavings.

use std::collections::HashSet;

use retcon_sim::SimConfig;
use retcon_workloads::machine_for;

use crate::scenario::{Scenario, SystemUnderTest, Violation};
use crate::trace::{ChoiceTrace, TraceSchedule};

/// Exploration limits for one [`bounded_search`] campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum schedules to execute.
    pub max_schedules: u64,
    /// Only choice points with index below this branch (depth bound);
    /// later points always take the default.
    pub max_branch_points: usize,
    /// Eligibility window in cycles (`0` = exact clock ties only).
    pub window: u64,
}

impl SearchBudget {
    /// A CI-sized budget: enough to flag the mutation shim in well under a
    /// second, small enough to run inside tier-1 tests.
    pub fn quick() -> Self {
        SearchBudget {
            max_schedules: 400,
            max_branch_points: 40,
            window: 1,
        }
    }
}

/// A violation found by the search, replayable by rerunning the scenario
/// under `TraceSchedule::new(&trace, window)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundViolation {
    /// The complete choice trace of the failing schedule.
    pub trace: ChoiceTrace,
    /// The failed check.
    pub violation: Violation,
}

/// Search totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct interleavings among them (decision-fingerprint count).
    pub distinct: u64,
    /// Choice points passed across all runs (prescribed and
    /// freshly-decided alike).
    pub choice_points: u64,
    /// Alternatives enqueued for exploration.
    pub branched: u64,
    /// Alternatives skipped by the independence pruning.
    pub pruned: u64,
    /// First violation found, if any (the search stops on it).
    pub violation: Option<FoundViolation>,
    /// `true` when the frontier drained before the budget ran out: every
    /// alternative reachable under the pruning and depth bound was run.
    pub exhausted: bool,
}

/// Runs the bounded DFS. Deterministic: same inputs, same outcome.
///
/// # Panics
///
/// Panics if a run exceeds the simulator cycle cap — explore scenarios
/// are sized orders of magnitude below it, so a cap hit is a harness bug.
pub fn bounded_search(
    scenario: &Scenario,
    system: SystemUnderTest,
    budget: &SearchBudget,
) -> SearchOutcome {
    let cfg = SimConfig::with_cores(scenario.cores);
    let mut out = SearchOutcome {
        schedules: 0,
        distinct: 0,
        choice_points: 0,
        branched: 0,
        pruned: 0,
        violation: None,
        exhausted: false,
    };
    let mut fingerprints = HashSet::new();
    let mut stack = vec![ChoiceTrace::empty()];
    while let Some(trace) = stack.pop() {
        if out.schedules >= budget.max_schedules {
            return out; // frontier non-empty: not exhausted
        }
        let mut machine = machine_for(&scenario.spec, system.protocol(scenario.cores), cfg);
        let mut sched = TraceSchedule::new(&trace, budget.window);
        let report = machine
            .run_with(&mut sched)
            .expect("explore scenario stays under the cycle cap");
        out.schedules += 1;
        if fingerprints.insert(sched.trace_hash()) {
            out.distinct += 1;
        }
        if let Err(violation) = scenario.check(&machine, &report) {
            out.violation = Some(FoundViolation {
                trace: sched.full_trace(),
                violation,
            });
            return out;
        }
        // Expand alternatives, but only at choice points this run decided
        // freshly (p >= the prescribed prefix — earlier points were
        // expanded when an ancestor first passed them), below the depth
        // bound, and only where the next actions actually conflict.
        let log = sched.log();
        out.choice_points += log.len() as u64;
        for p in (trace.choices.len()..log.len().min(budget.max_branch_points)).rev() {
            let point = log[p];
            debug_assert_eq!(point.taken, 0, "un-prescribed points take the default");
            for j in (1..point.eligible.min(64)).rev() {
                if point.branchable & (1u64 << j) == 0 {
                    out.pruned += 1;
                    continue;
                }
                let mut next = ChoiceTrace {
                    choices: log[..p].iter().map(|q| q.taken).collect(),
                };
                next.choices.push(j);
                stack.push(next);
                out.branched += 1;
            }
        }
    }
    out.exhausted = true;
    out
}

/// Replays one explicit trace and checks the oracle — the verification
/// path for a [`FoundViolation`] shipped in a record.
///
/// # Errors
///
/// Returns the violation the replayed schedule produces (a confirmed
/// failing trace reproduces its violation exactly).
///
/// # Panics
///
/// Panics when the trace does not fit the scenario (a prescribed choice
/// index out of range, or more choices than the run has choice points):
/// the executed schedule would not be the one the trace describes, so a
/// clean oracle pass would falsely suggest the recorded violation is
/// irreproducible.
pub fn replay(
    scenario: &Scenario,
    system: SystemUnderTest,
    trace: &ChoiceTrace,
    window: u64,
) -> Result<(), Violation> {
    let cfg = SimConfig::with_cores(scenario.cores);
    let mut machine = machine_for(&scenario.spec, system.protocol(scenario.cores), cfg);
    let mut sched = TraceSchedule::new(trace, window);
    let report = machine
        .run_with(&mut sched)
        .expect("explore scenario stays under the cycle cap");
    assert!(
        !sched.diverged(),
        "trace `{trace}` does not fit scenario {} under {} (corrupted trace or wrong \
         scenario/window pairing)",
        scenario.name,
        system.label()
    );
    scenario.check(&machine, &report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_workloads::System;

    #[test]
    fn search_explores_without_false_positives_on_correct_protocols() {
        let scenario = Scenario::counter(2, 2);
        let budget = SearchBudget {
            max_schedules: 200,
            max_branch_points: 30,
            window: 1,
        };
        for system in [System::Eager, System::Retcon, System::Datm] {
            let out = bounded_search(&scenario, SystemUnderTest::Builtin(system), &budget);
            assert!(
                out.violation.is_none(),
                "false positive under {}: {:?}",
                system.label(),
                out.violation
            );
            assert!(out.schedules > 1, "no branching under {}", system.label());
            assert_eq!(out.schedules, out.distinct, "duplicate interleavings");
        }
    }

    #[test]
    fn search_flags_the_mutation_with_a_replayable_trace() {
        let scenario = Scenario::counter(2, 2);
        let budget = SearchBudget::quick();
        let out = bounded_search(&scenario, SystemUnderTest::LostUpdate, &budget);
        let found = out.violation.expect("lost-update must be flagged");
        // The trace is self-contained: replaying it reproduces the exact
        // violation.
        let replayed = replay(
            &scenario,
            SystemUnderTest::LostUpdate,
            &found.trace,
            budget.window,
        )
        .expect_err("replay must reproduce the violation");
        assert_eq!(replayed, found.violation);
        // And the same trace under a correct protocol passes.
        replay(
            &scenario,
            SystemUnderTest::Builtin(System::Eager),
            &found.trace,
            budget.window,
        )
        .expect("eager must serialize the failing schedule");
    }

    #[test]
    fn pruning_skips_independent_alternatives() {
        let scenario = Scenario::pool(3, 3, 2, 1, 5);
        let budget = SearchBudget {
            max_schedules: 300,
            max_branch_points: 30,
            window: 1,
        };
        let out = bounded_search(&scenario, SystemUnderTest::Builtin(System::Eager), &budget);
        assert!(out.violation.is_none());
        assert!(
            out.pruned > 0,
            "pool transactions on distinct counters must yield independent \
             alternatives to prune"
        );
    }
}
