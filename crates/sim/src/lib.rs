//! Deterministic cycle-driven multicore simulator for the RETCON
//! reproduction.
//!
//! The paper evaluates RETCON on a simulated 32-core machine (Table 1: 32
//! in-order x86 cores at 1 IPC). This crate provides the equivalent
//! execution substrate: each core interprets a [`Program`] in the
//! `retcon-isa` IR, every memory operation is routed through a
//! concurrency-control [`Protocol`] (crate `retcon-htm`) over the shared
//! [`MemorySystem`] (crate `retcon-mem`), and a global scheduler advances
//! whichever core has the smallest local clock — making every run exactly
//! reproducible.
//!
//! The simulator owns the paper's *measurement* machinery:
//!
//! * per-core cycle accounting into the **busy / conflict / barrier /
//!   other** buckets of Figures 4 and 10 ("conflict" is time stalled by
//!   another processor plus work in transactions that ultimately abort;
//!   "other" here is commit processing such as RETCON's pre-commit repair);
//! * transaction restart with register/input-tape checkpointing and the
//!   paper's zero-cycle rollback;
//! * barrier synchronization (barrier wait time indicates load imbalance,
//!   the labyrinth bottleneck);
//! * aggregation into a [`SimReport`] from which every figure and table is
//!   printed.
//!
//! # Example
//!
//! Two cores atomically increment a shared counter 100 times each:
//!
//! ```
//! use retcon_isa::{ProgramBuilder, Reg, Operand, BinOp, CmpOp};
//! use retcon_sim::{Machine, SimConfig};
//! use retcon_htm::{EagerTm, ConflictPolicy};
//!
//! fn counter_program(iters: u64) -> retcon_isa::Program {
//!     let mut b = ProgramBuilder::new();
//!     let body = b.block();
//!     let done = b.block();
//!     b.imm(Reg(0), iters);
//!     b.imm(Reg(1), 0); // counter address
//!     b.jump(body);
//!     b.select(body);
//!     b.tx_begin();
//!     b.load(Reg(2), Reg(1), 0);
//!     b.bin(BinOp::Add, Reg(2), Reg(2), Operand::Imm(1));
//!     b.store(Operand::Reg(Reg(2)), Reg(1), 0);
//!     b.tx_commit();
//!     b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
//!     b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
//!     b.select(done);
//!     b.halt();
//!     b.build().unwrap()
//! }
//!
//! let cfg = SimConfig::with_cores(2);
//! let protocol = EagerTm::new(2, ConflictPolicy::OldestWins);
//! let programs = vec![counter_program(100), counter_program(100)];
//! let mut machine: Machine = Machine::new(cfg, protocol, programs);
//! let report = machine.run()?;
//! assert_eq!(machine.mem().read_word(retcon_isa::Addr(0)), 200);
//! assert_eq!(report.protocol.commits, 200);
//! # Ok::<(), retcon_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canon;
mod config;
pub mod json;
mod machine;
mod report;
pub mod schedule;
pub mod shard;
mod tape;

pub use canon::{content_hash128, Canon};
pub use config::SimConfig;
pub use machine::{Machine, SimError};
pub use report::{CoreReport, SimReport, TimeBreakdown};
pub use schedule::{
    Bound, CoreAction, Decision, DeterministicMinHeap, Schedule, SchedulePeek, SeededFuzz,
    TraceHash,
};
pub use shard::{
    run_sharded, run_sharded_traced, shard_ranges, ShardedOutcome, TracedShardedOutcome,
};
pub use tape::InputTape;

// Re-exports so workload crates need only depend on `retcon-sim`.
pub use retcon_htm::{
    AbortCause, AnyProtocol, CommitResult, ConflictPolicy, DatmLite, EagerTm, LazyTm, LazyVbTm,
    MemResult, Protocol, ProtocolStats, RegUpdates, RetconTm,
};
pub use retcon_isa::Program;
pub use retcon_mem::{MemConfig, MemorySystem};
