//! CSV emission and parsing for experiment records.
//!
//! The CSV form is a **flat projection** for spreadsheets and plotting
//! scripts: one row per run, per-core detail aggregated into the four
//! breakdown buckets (the lossless form is the JSON emitter in
//! [`crate::record`]). The projection is *stable*: parsing a CSV and
//! re-emitting it reproduces the bytes exactly — the `emit ∘ parse ∘ emit
//! = emit` property the test suite pins.
//!
//! Layout:
//!
//! ```text
//! # experiment=fig9
//! # seed=42
//! # meta <key>=<value>          (one line per metadata entry)
//! workload,system,protocol,cores,seed,knobs,...   (header)
//! genome,eager,eager,32,42,,123,...               (one row per run)
//! ```
//!
//! Knobs are packed `key=value;key=value`. Cells never need quoting: every
//! label in this workspace is comma-free, and the emitter rejects rather
//! than quietly corrupts if that ever changes.

use crate::record::{ExperimentRecord, RunRecord};
use retcon::{RetconStats, TxSnapshot};
use retcon_htm::ProtocolStats;
use retcon_sim::{CoreReport, SimReport, TimeBreakdown};

/// The fixed column set, in emission order.
pub fn columns() -> &'static [&'static str] {
    static COLUMNS: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    COLUMNS.get_or_init(|| {
        let mut cols = vec![
            "workload",
            "system",
            "protocol",
            "cores",
            "seed",
            "knobs",
            "seq_cycles",
            "cycles",
        ];
        cols.extend(TimeBreakdown::FIELDS);
        cols.push("instructions");
        cols.extend(ProtocolStats::FIELDS);
        cols.push("retcon");
        cols.extend(["transactions", "tx_cycles", "violations"]);
        for f in TxSnapshot::FIELDS {
            cols.push(&*Box::leak(format!("sum_{f}").into_boxed_str()));
        }
        for f in TxSnapshot::FIELDS {
            cols.push(&*Box::leak(format!("max_{f}").into_boxed_str()));
        }
        cols
    })
}

fn check_cell(kind: &str, value: &str) -> Result<(), String> {
    if value.contains(',') || value.contains('\n') || value.contains('\r') {
        Err(format!("{kind} `{value}` contains a CSV delimiter"))
    } else {
        Ok(())
    }
}

fn knobs_cell(knobs: &[(String, String)]) -> Result<String, String> {
    let mut parts = Vec::with_capacity(knobs.len());
    for (k, v) in knobs {
        check_cell("knob key", k)?;
        check_cell("knob value", v)?;
        if k.contains('=') || k.contains(';') || v.contains('=') || v.contains(';') {
            return Err(format!("knob `{k}={v}` contains a knob delimiter"));
        }
        parts.push(format!("{k}={v}"));
    }
    Ok(parts.join(";"))
}

fn parse_knobs(cell: &str) -> Result<Vec<(String, String)>, String> {
    if cell.is_empty() {
        return Ok(Vec::new());
    }
    cell.split(';')
        .map(|part| {
            part.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| format!("malformed knob `{part}`"))
        })
        .collect()
}

/// Emits the experiment as CSV (see the module docs for the layout).
///
/// # Errors
///
/// Rejects labels or metadata containing CSV delimiters instead of
/// emitting a corrupt file.
pub fn to_csv(exp: &ExperimentRecord) -> Result<String, String> {
    let mut out = String::new();
    check_cell("experiment name", &exp.name)?;
    out.push_str(&format!("# experiment={}\n", exp.name));
    out.push_str(&format!("# seed={}\n", exp.seed));
    for (k, v) in &exp.meta {
        // '\r' matters too: `lines()` strips a trailing CR on parse, which
        // would silently corrupt the round trip instead of failing loudly.
        if k.contains('=') || k.contains('\n') || k.contains('\r') {
            return Err(format!("meta key `{k}` contains a delimiter"));
        }
        if v.contains('\n') || v.contains('\r') {
            return Err(format!("meta `{k}` value contains a line break"));
        }
        out.push_str(&format!("# meta {k}={v}\n"));
    }
    out.push_str(&columns().join(","));
    out.push('\n');
    for run in &exp.runs {
        check_cell("workload", &run.workload)?;
        check_cell("system", &run.system)?;
        check_cell("protocol", &run.report.protocol_name)?;
        let breakdown = run.report.breakdown();
        let mut cells: Vec<String> = vec![
            run.workload.clone(),
            run.system.clone(),
            run.report.protocol_name.clone(),
            run.cores.to_string(),
            run.seed.to_string(),
            knobs_cell(&run.knobs)?,
            run.seq_cycles.to_string(),
            run.report.cycles.to_string(),
        ];
        cells.extend(breakdown.as_array().iter().map(u64::to_string));
        cells.push(run.report.total_instructions().to_string());
        cells.extend(run.report.protocol.as_array().iter().map(u64::to_string));
        match &run.report.retcon {
            None => {
                cells.push("0".to_string());
                cells.extend((0..15).map(|_| String::new()));
            }
            Some(rs) => {
                cells.push("1".to_string());
                cells.push(rs.transactions.to_string());
                cells.push(rs.tx_cycles.to_string());
                cells.push(rs.violations.to_string());
                cells.extend(rs.sum.as_array().iter().map(u64::to_string));
                cells.extend(rs.max.as_array().iter().map(u64::to_string));
            }
        }
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    Ok(out)
}

fn parse_u64(cell: &str, line: usize, col: &str) -> Result<u64, String> {
    cell.parse()
        .map_err(|_| format!("line {line}: column `{col}` is not an integer: `{cell}`"))
}

/// Parses the [`to_csv`] form back into an experiment record.
///
/// The reconstruction carries the flat projection: per-core detail is
/// collapsed into a single aggregate [`CoreReport`] whose `finished_at`
/// is the run's total cycles. Re-emitting the result reproduces the input
/// bytes.
///
/// # Errors
///
/// Reports the first malformed line, with its line number.
pub fn from_csv(text: &str) -> Result<ExperimentRecord, String> {
    let mut name = None;
    let mut seed = None;
    let mut meta = Vec::new();
    let mut runs = Vec::new();
    let mut saw_header = false;
    let expected = columns();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if let Some(comment) = line.strip_prefix("# ") {
            if let Some(v) = comment.strip_prefix("experiment=") {
                name = Some(v.to_string());
            } else if let Some(v) = comment.strip_prefix("seed=") {
                seed = Some(parse_u64(v, lineno, "seed")?);
            } else if let Some(entry) = comment.strip_prefix("meta ") {
                let (k, v) = entry
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: malformed meta line"))?;
                meta.push((k.to_string(), v.to_string()));
            } else {
                return Err(format!("line {lineno}: unknown comment `{comment}`"));
            }
            continue;
        }
        if !saw_header {
            if line != expected.join(",") {
                return Err(format!("line {lineno}: unexpected header"));
            }
            saw_header = true;
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != expected.len() {
            return Err(format!(
                "line {lineno}: {} cells, expected {}",
                cells.len(),
                expected.len()
            ));
        }
        let cell = |col: &str| -> &str {
            let i = expected
                .iter()
                .position(|c| *c == col)
                .expect("known column");
            cells[i]
        };
        let cycles = parse_u64(cell("cycles"), lineno, "cycles")?;
        let mut buckets = [0u64; 4];
        for (slot, field) in buckets.iter_mut().zip(TimeBreakdown::FIELDS) {
            *slot = parse_u64(cell(field), lineno, field)?;
        }
        let mut stats = [0u64; 6];
        for (slot, field) in stats.iter_mut().zip(ProtocolStats::FIELDS) {
            *slot = parse_u64(cell(field), lineno, field)?;
        }
        let retcon = match cell("retcon") {
            "0" => None,
            "1" => {
                let snapshot = |prefix: &str| -> Result<TxSnapshot, String> {
                    let mut values = [0u64; 6];
                    for (slot, field) in values.iter_mut().zip(TxSnapshot::FIELDS) {
                        let col = format!("{prefix}_{field}");
                        *slot = parse_u64(cell(&col), lineno, &col)?;
                    }
                    Ok(TxSnapshot::from_array(values))
                };
                Some(RetconStats {
                    transactions: parse_u64(cell("transactions"), lineno, "transactions")?,
                    tx_cycles: parse_u64(cell("tx_cycles"), lineno, "tx_cycles")?,
                    violations: parse_u64(cell("violations"), lineno, "violations")?,
                    sum: snapshot("sum")?,
                    max: snapshot("max")?,
                })
            }
            other => return Err(format!("line {lineno}: bad retcon flag `{other}`")),
        };
        runs.push(RunRecord {
            workload: cell("workload").to_string(),
            system: cell("system").to_string(),
            cores: parse_u64(cell("cores"), lineno, "cores")?,
            seed: parse_u64(cell("seed"), lineno, "seed")?,
            knobs: parse_knobs(cell("knobs")).map_err(|e| format!("line {lineno}: {e}"))?,
            seq_cycles: parse_u64(cell("seq_cycles"), lineno, "seq_cycles")?,
            report: SimReport {
                protocol_name: cell("protocol").to_string(),
                cycles,
                per_core: vec![CoreReport {
                    breakdown: TimeBreakdown::from_array(buckets),
                    instructions: parse_u64(cell("instructions"), lineno, "instructions")?,
                    finished_at: cycles,
                }],
                protocol: ProtocolStats::from_array(stats),
                retcon,
            },
        });
    }
    if !saw_header {
        return Err("missing CSV header".to_string());
    }
    Ok(ExperimentRecord {
        name: name.ok_or("missing `# experiment=` line")?,
        seed: seed.ok_or("missing `# seed=` line")?,
        meta,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentRecord {
        let mut report = SimReport {
            protocol_name: "RetCon".to_string(),
            cycles: 500,
            ..Default::default()
        };
        report.per_core.push(CoreReport {
            breakdown: TimeBreakdown {
                busy: 100,
                conflict: 200,
                barrier: 0,
                other: 50,
            },
            instructions: 90,
            finished_at: 400,
        });
        report.per_core.push(CoreReport {
            breakdown: TimeBreakdown {
                busy: 150,
                conflict: 0,
                barrier: 0,
                other: 0,
            },
            instructions: 10,
            finished_at: 500,
        });
        report.protocol = ProtocolStats::from_array([5, 1, 0, 0, 0, 2]);
        let mut rs = RetconStats::new();
        rs.record_commit(TxSnapshot::from_array([1, 2, 3, 4, 5, 6]), 60);
        report.retcon = Some(rs);
        ExperimentRecord {
            name: "sample".to_string(),
            seed: 42,
            meta: vec![("k".to_string(), "v with = sign".to_string())],
            runs: vec![
                RunRecord {
                    workload: "counter".to_string(),
                    system: "RetCon".to_string(),
                    cores: 2,
                    seed: 42,
                    knobs: vec![("ivb".to_string(), "4".to_string())],
                    seq_cycles: 900,
                    report,
                },
                RunRecord {
                    workload: "counter".to_string(),
                    system: "eager".to_string(),
                    cores: 1,
                    seed: 42,
                    knobs: vec![],
                    seq_cycles: 0,
                    report: SimReport {
                        protocol_name: "eager".to_string(),
                        cycles: 900,
                        ..Default::default()
                    },
                },
            ],
        }
    }

    #[test]
    fn csv_projection_is_stable() {
        let exp = sample();
        let csv = to_csv(&exp).unwrap();
        let parsed = from_csv(&csv).unwrap();
        // The projection collapses per-core detail...
        assert_eq!(parsed.runs[0].report.per_core.len(), 1);
        // ...but preserves aggregates and context exactly...
        assert_eq!(
            parsed.runs[0].report.breakdown(),
            exp.runs[0].report.breakdown()
        );
        assert_eq!(parsed.runs[0].report.protocol, exp.runs[0].report.protocol);
        assert_eq!(parsed.runs[0].report.retcon, exp.runs[0].report.retcon);
        assert_eq!(parsed.runs[0].knobs, exp.runs[0].knobs);
        assert_eq!(parsed.meta, exp.meta);
        // ...and is byte-stable under re-emission.
        assert_eq!(to_csv(&parsed).unwrap(), csv);
    }

    #[test]
    fn csv_rejects_delimiter_labels() {
        let mut exp = sample();
        exp.runs[0].workload = "a,b".to_string();
        assert!(to_csv(&exp).is_err());
    }

    #[test]
    fn csv_rejects_line_breaks_in_meta() {
        // A trailing '\r' would survive emission but be stripped by the
        // parser's `lines()`, corrupting the round trip — reject it.
        let mut exp = sample();
        exp.meta = vec![("k".to_string(), "v\r".to_string())];
        assert!(to_csv(&exp).is_err());
        exp.meta = vec![("k\r".to_string(), "v".to_string())];
        assert!(to_csv(&exp).is_err());
        exp.meta = vec![("k".to_string(), "v\nx".to_string())];
        assert!(to_csv(&exp).is_err());
    }

    #[test]
    fn csv_parse_reports_line_numbers() {
        let exp = sample();
        let mut csv = to_csv(&exp).unwrap();
        csv.push_str("short,row\n");
        let err = from_csv(&csv).unwrap_err();
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn csv_requires_header_and_name() {
        assert!(from_csv("").is_err());
        assert!(from_csv(&columns().join(",")).is_err());
    }
}
