//! Memory-system substrate for the RETCON transactional-memory simulator.
//!
//! The RETCON paper evaluates its mechanism on a 32-core machine with private
//! L1/L2 caches kept coherent by a directory protocol (Table 1). Conflict
//! detection for the baseline HTM piggybacks on that protocol: each L1 block
//! carries a *speculatively-read* and a *speculatively-written* bit, and
//! external requests snoop those bits (§2). This crate reproduces that
//! substrate at the fidelity the mechanism needs:
//!
//! * [`GlobalMemory`] — the architectural state, a sparse map of 64-bit words;
//! * [`CacheArray`] — set-associative tag arrays (no data; data lives in
//!   [`GlobalMemory`]) with LRU replacement and per-block speculative bits;
//! * a directory tracking, per 64-byte block, which cores cache it and which
//!   (if any) holds it modified;
//! * [`MemorySystem`] — the façade gluing caches, directory and latency model
//!   together, with a two-phase API (`probe` then `access`) so concurrency
//!   -control protocols can consult the contention manager between conflict
//!   *detection* and conflict *resolution*;
//! * [`UndoLog`] / [`WriteBuffer`] — eager and lazy version management;
//! * a *permissions-only cache* in the spirit of OneTM (§2): speculative
//!   read/write permissions survive cache eviction, so capacity never forces
//!   an abort (the paper reports that this configuration "essentially
//!   eliminates cache overflows entirely").
//!
//! Latencies follow Table 1: L1 hit 1 cycle, private L2 hit 10 cycles,
//! directory hop 20 cycles, DRAM lookup 100 cycles.
//!
//! # Example
//!
//! ```
//! use retcon_mem::{MemorySystem, MemConfig, CoreId, AccessKind};
//! use retcon_isa::Addr;
//!
//! let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
//! let a = Addr(0x40);
//!
//! // Core 0 writes 7 into `a` speculatively.
//! ms.write_word(a, 7);
//! let lat = ms.access(CoreId(0), a, AccessKind::Write, true);
//! assert!(lat >= 1);
//!
//! // Core 1 probing a read of the same block sees the conflict.
//! let probe = ms.probe(CoreId(1), a, AccessKind::Read);
//! assert_eq!(probe.conflicts.len(), 1);
//! assert_eq!(probe.conflicts[0].core, CoreId(0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod directory;
mod memory;
mod stats;
mod system;
mod version;

pub use cache::{CacheArray, CacheGeometry, SpecBits};
pub use config::{LatencyModel, MemConfig};
pub use directory::{DirState, Directory, MAX_CORES};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use memory::GlobalMemory;
pub use retcon_isa::fx;
pub use retcon_isa::table::{BlockTable, EpochMap, EpochSet};
pub use stats::MemStats;
pub use system::{AccessKind, AccessPlan, Conflict, ConflictSet, CoreId, MemorySystem, Probe};
pub use version::{UndoLog, WriteBuffer};
