//! Trace determinism: the observability layer's hard invariant is that
//! **observation never changes simulation output**, and its own output
//! is reproducible.
//!
//! * Traced and untraced runs produce byte-identical reports, across
//!   every hardware configuration.
//! * The same `(config, seed)` produces the identical event stream
//!   (pinned by the ring's deterministic stream hash), run after run.
//! * The Chrome trace-event export parses with the repo's own JSON
//!   parser and each core's timestamps are monotone.
//! * Commit events in the trace agree with the report's commit count —
//!   the trace is an account of the run, not a side story.

use retcon_obs::{EventKind, RingTracer};
use retcon_sim::json::Json;
use retcon_sim::SimReport;
use retcon_workloads::{run_spec_sized, run_spec_traced_sized, System, Workload};

const CAPACITY: usize = 1 << 20;

fn traced(
    workload: Workload,
    system: System,
    cores: usize,
    seed: u64,
    shards: usize,
) -> (SimReport, RingTracer) {
    let spec = workload.build(cores, seed);
    run_spec_traced_sized(&spec, system, cores, shards, CAPACITY).expect("traced run")
}

#[test]
fn tracing_never_changes_the_report_under_any_system() {
    for system in System::ALL {
        let spec = Workload::Counter.build(4, 42);
        let plain = run_spec_sized(&spec, system, 4, 1).expect("untraced run");
        let (with_trace, tracer) = traced(Workload::Counter, system, 4, 42, 1);
        assert_eq!(
            plain.to_json().to_string(),
            with_trace.to_json().to_string(),
            "report bytes changed under tracing ({})",
            system.label()
        );
        assert_eq!(tracer.dropped(), 0, "{}", system.label());
        assert!(!tracer.is_empty(), "{}", system.label());
    }
}

#[test]
fn same_config_and_seed_reproduces_the_event_stream() {
    for (system, shards) in [
        (System::Retcon, 1usize),
        (System::Eager, 1),
        (System::Retcon, 2),
    ] {
        let (_, a) = traced(Workload::Counter, system, 8, 7, shards);
        let (_, b) = traced(Workload::Counter, system, 8, 7, shards);
        assert_eq!(a.dropped(), 0);
        assert_eq!(
            a.stream_hash(),
            b.stream_hash(),
            "stream diverged ({} shards={shards})",
            system.label()
        );
        // A different configuration must *not* reproduce it (the hash
        // carries information). Counter's schedule is seed-insensitive,
        // so vary the core count instead.
        let (_, c) = traced(Workload::Counter, system, 4, 7, 1);
        assert_ne!(a.stream_hash(), c.stream_hash());
    }
}

#[test]
fn sharded_traced_report_matches_serial() {
    // Counter has a barrier, so sharding falls back to the serial path:
    // the report must still match serially, with no merge markers.
    let spec = Workload::Counter.build(8, 42);
    let serial = run_spec_sized(&spec, System::Retcon, 8, 1).expect("serial");
    let (sharded, tracer) = traced(Workload::Counter, System::Retcon, 8, 42, 2);
    assert_eq!(
        serial.to_json().to_string(),
        sharded.to_json().to_string(),
        "barrier fallback must stay byte-identical to serial"
    );
    assert_eq!(tracer.count(EventKind::ShardMerge), 0);

    // ScalingXl is group-local (shard-eligible at group multiples): the
    // sharded traced run must match serial byte-for-byte and record one
    // merge per shard. 16 cores = two disjoint groups of 8.
    let spec = Workload::ScalingXl.build(16, 42);
    let serial = run_spec_sized(&spec, System::Retcon, 16, 1).expect("serial");
    let (sharded, tracer) = traced(Workload::ScalingXl, System::Retcon, 16, 42, 2);
    assert_eq!(
        serial.to_json().to_string(),
        sharded.to_json().to_string(),
        "sharded traced run must stay byte-identical to serial"
    );
    assert_eq!(tracer.count(EventKind::ShardMerge), 2);
}

#[test]
fn chrome_export_parses_with_monotone_per_core_timestamps() {
    let (report, tracer) = traced(
        Workload::Python { optimized: false },
        System::Retcon,
        8,
        42,
        1,
    );
    assert_eq!(tracer.dropped(), 0);
    let text = retcon_obs::chrome::to_chrome_json(&tracer);
    let json = Json::parse(&text).expect("chrome JSON parses");
    let events = json.req_arr("traceEvents").expect("traceEvents array");
    assert_eq!(events.len(), tracer.len());

    let mut last_ts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut commits = 0u64;
    for e in events {
        let name = e.req_str("name").expect("name");
        let ts = e.req_u64("ts").expect("ts");
        let tid = e.req_u64("tid").expect("tid");
        let prev = last_ts.entry(tid).or_insert(0);
        assert!(
            ts >= *prev,
            "core {tid} went backwards: {ts} after {}",
            *prev
        );
        *prev = ts;
        if name == "commit" {
            commits += 1;
        }
    }
    assert_eq!(
        commits, report.protocol.commits,
        "trace commit events must equal reported commits"
    );
}
