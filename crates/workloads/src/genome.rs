//! The genome model: gene-segment deduplication by hashtable insert.
//!
//! STAMP's genome spends its conflict-prone phase inserting segments into a
//! shared hashtable. With a fixed-size table, distinct segments rarely
//! collide (different buckets) and the workload scales; with a *resizable*
//! table every insert also increments the table's size field — the paper's
//! canonical auxiliary-data bottleneck (`genome-sz`).

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::hashtable::HashTable;
use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total segment inserts across all cores.
const TOTAL_INSERTS: u64 = 4096;
/// Buckets in the segment table (power of two; many more buckets than
/// concurrent transactions keeps bucket collisions rare).
const BUCKETS: u64 = 1024;
/// Abstract per-transaction work (segment construction and comparison; real
/// genome transactions are long relative to the size-field update).
const WORK: u32 = 2000;

/// Builds the genome model. `resizable` enables the shared size field (the
/// `-sz` variant).
pub fn build(num_cores: usize, seed: u64, resizable: bool) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let size_addr = alloc.alloc_words(1);
    let table = HashTable::new(
        alloc.alloc_blocks(BUCKETS),
        BUCKETS,
        resizable.then_some(size_addr),
        TOTAL_INSERTS * 2, // resize never triggers
    );
    let iters = (TOTAL_INSERTS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x67_65_6e_6f_6d_65); // "genome"

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        let tape: Vec<u64> = (0..iters).map(|_| core_rng.next_u64() >> 8).collect();
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let after_insert = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_key = Reg(10);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        b.input(r_key);
        b.tx_begin();
        b.work(WORK);
        table.emit_insert(&mut b, r_key, [Reg(1), Reg(2), Reg(3)], after_insert);
        b.select(after_insert);
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("genome program is well-formed"));
    }
    WorkloadSpec {
        name: if resizable { "genome-sz" } else { "genome" },
        programs,
        tapes,
        init: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn programs_validate() {
        for resizable in [false, true] {
            let spec = build(4, 1, resizable);
            for p in &spec.programs {
                assert!(p.validate().is_ok());
            }
            assert_eq!(spec.tapes[0].len() as u64, TOTAL_INSERTS / 4);
        }
    }

    #[test]
    fn size_field_counts_inserts_exactly() {
        // The size field must equal the total number of inserts under every
        // system — the repair-correctness litmus test.
        for system in [System::Eager, System::LazyVb, System::Retcon] {
            let spec = build(4, 1, true);
            let cfg = retcon_sim::SimConfig::with_cores(4);
            let mut machine =
                retcon_sim::Machine::new(cfg, system.protocol(4), spec.programs.clone());
            for (i, tape) in spec.tapes.iter().enumerate() {
                machine.set_tape(i, tape.clone());
            }
            machine.run().expect("runs");
            assert_eq!(
                machine.mem().read_word(retcon_isa::Addr(0)),
                TOTAL_INSERTS,
                "size field wrong under {system:?}"
            );
        }
    }

    #[test]
    fn retcon_reduces_conflict_time_on_sz() {
        let spec = build(8, 1, true);
        let eager = run_spec(&spec, System::Eager, 8).unwrap();
        let retcon = run_spec(&spec, System::Retcon, 8).unwrap();
        assert!(
            retcon.cycles < eager.cycles,
            "RetCon {} !< eager {}",
            retcon.cycles,
            eager.cycles
        );
    }
}
