//! Schedule exploration for the RETCON reproduction.
//!
//! The simulator's default scheduler is deterministic: one interleaving
//! per configuration. Serializability is a property of *all*
//! interleavings, so this crate turns the repo's oracles into real
//! scenario coverage by driving the simulator's scheduling seam
//! ([`retcon_sim::Schedule`]) with two exploration engines:
//!
//! * **Seeded fuzzing** ([`fuzz`]) — thousands of splitmix-perturbed
//!   schedules per configuration, each reproducible from `(config,
//!   seed)`;
//! * **Bounded search** ([`search`]) — a DFS over scheduling choice
//!   points with next-action independence pruning (DPOR-lite) and a
//!   schedule/depth budget, producing *replayable choice traces* for any
//!   violation.
//!
//! Both engines check every run against schedule-independent oracles
//! ([`scenario`]): exactly-once commits, exact final state for
//! commutative workloads (which doubles as the cross-protocol agreement
//! oracle — every protocol is held to the same state), conservation for
//! transfers, and the protocols' own quiescence invariants
//! ([`retcon_htm::Protocol::check_quiescent`]). The [`mutation`] module
//! supplies an intentionally-broken protocol the engines must flag —
//! the standing mutation test for the oracles themselves.
//!
//! `retcon-lab -- explore` fans the campaign suite ([`campaign`]) across
//! worker threads and emits the standard experiment record shapes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod fuzz;
pub mod mutation;
pub mod scenario;
pub mod search;
pub mod trace;

pub use campaign::{
    run_campaign, run_campaigns, suite, Campaign, CampaignResult, Mode, ScenarioSpec, MATRIX,
};
pub use fuzz::{fuzz, FuzzBudget, FuzzOutcome, FuzzViolation};
pub use mutation::LostUpdateTm;
pub use scenario::{Scenario, SystemUnderTest, Violation};
pub use search::{bounded_search, replay, FoundViolation, SearchBudget, SearchOutcome};
pub use trace::{ChoicePoint, ChoiceTrace, TraceSchedule};
