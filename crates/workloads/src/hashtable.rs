//! A shared-memory hashtable emitter, the central data structure of the
//! STAMP-like workloads.
//!
//! Layout: `buckets` (a power of two) cache blocks, one bucket per block.
//! Word 0 of a bucket is its occupancy count; words 1–7 hold keys. An
//! optional *size field* — the paper's resizable-hashtable bottleneck —
//! lives in its own block and is incremented on every insert, with a
//! "should we resize?" branch that is essentially never taken in a
//! well-configured table (§4: "most hashtable inserts do not cause resizes").
//!
//! The emitted code has exactly the symbolic structure the paper describes:
//!
//! * the **size-field update** is a load / add-1 / store / compare-to-
//!   threshold idiom — RETCON's sweet spot (repairable);
//! * the **bucket-slot address** is computed from the loaded occupancy
//!   count, so if a bucket itself is contended, RETCON must pin the count
//!   with an equality constraint — bucket collisions remain true conflicts.

use retcon_isa::{Addr, BinOp, BlockId, CmpOp, Operand, ProgramBuilder, Reg};

/// A hashtable in simulated shared memory.
#[derive(Debug, Clone, Copy)]
pub struct HashTable {
    /// Base word address of the bucket array (block-aligned).
    pub base: Addr,
    /// Number of buckets; must be a power of two.
    pub buckets: u64,
    /// The shared size field of the `-sz` variants, if enabled.
    pub size_addr: Option<Addr>,
    /// Size beyond which the (modelled) resize path triggers.
    pub resize_threshold: u64,
}

impl HashTable {
    /// Creates a table descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two.
    pub fn new(base: Addr, buckets: u64, size_addr: Option<Addr>, resize_threshold: u64) -> Self {
        assert!(buckets.is_power_of_two(), "buckets must be a power of two");
        HashTable {
            base,
            buckets,
            size_addr,
            resize_threshold,
        }
    }

    /// Emits an insert of the key in `key` into the table, assuming an open
    /// transaction. Uses `s0..s2` as scratch.
    ///
    /// The emitted code starts in the builder's currently selected block
    /// (which it terminates) and finishes by jumping to `after`; the caller
    /// selects `after` to continue emitting.
    pub fn emit_insert(&self, b: &mut ProgramBuilder, key: Reg, scratch: [Reg; 3], after: BlockId) {
        let [s0, s1, s2] = scratch;
        let store_slot = b.block();
        let bump_size = b.block();

        // s0 = bucket address = base + (key & mask) * 8.
        b.mov(s0, key);
        b.bin(BinOp::And, s0, s0, Operand::Imm((self.buckets - 1) as i64));
        b.bin(BinOp::Shl, s0, s0, Operand::Imm(3));
        b.bin(BinOp::Add, s0, s0, Operand::Imm(self.base.0 as i64));
        // s1 = occupancy count.
        b.load(s1, s0, 0);
        // Full bucket: skip the slot store, go straight to the size field.
        b.branch(CmpOp::Lt, s1, Operand::Imm(7), store_slot, bump_size);

        // Store the key at [bucket + 1 + count]; the address depends on the
        // loaded count.
        b.select(store_slot);
        b.mov(s2, s0);
        b.bin(BinOp::Add, s2, s2, Operand::Reg(s1));
        b.store(Operand::Reg(key), s2, 1);
        // count += 1.
        b.bin(BinOp::Add, s1, s1, Operand::Imm(1));
        b.store(Operand::Reg(s1), s0, 0);
        b.jump(bump_size);

        // The shared size field (the -sz bottleneck).
        b.select(bump_size);
        match self.size_addr {
            Some(size) => {
                let resize = b.block();
                b.imm(s0, size.0);
                b.load(s1, s0, 0);
                b.bin(BinOp::Add, s1, s1, Operand::Imm(1));
                b.store(Operand::Reg(s1), s0, 0);
                b.branch(
                    CmpOp::Gt,
                    s1,
                    Operand::Imm(self.resize_threshold as i64),
                    resize,
                    after,
                );
                // The (practically unreachable) resize path: a burst of
                // work, then continue.
                b.select(resize);
                b.work(500);
                b.jump(after);
            }
            None => {
                b.jump(after);
            }
        }
    }

    /// Emits a read-only lookup probing the bucket of `key` (count plus the
    /// first two slots), assuming an open transaction. Scratch `s0..s1`;
    /// control continues at `after`.
    pub fn emit_lookup(&self, b: &mut ProgramBuilder, key: Reg, scratch: [Reg; 2], after: BlockId) {
        let [s0, s1] = scratch;
        b.mov(s0, key);
        b.bin(BinOp::And, s0, s0, Operand::Imm((self.buckets - 1) as i64));
        b.bin(BinOp::Shl, s0, s0, Operand::Imm(3));
        b.bin(BinOp::Add, s0, s0, Operand::Imm(self.base.0 as i64));
        b.load(s1, s0, 0);
        b.load(s1, s0, 1);
        b.load(s1, s0, 2);
        b.jump(after);
    }

    /// Words of memory this table occupies (for allocation assertions).
    pub fn footprint_words(&self) -> u64 {
        self.buckets * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_isa::Program;

    fn build_insert_program(table: &HashTable) -> Program {
        let mut b = ProgramBuilder::new();
        let after = b.block();
        b.imm(Reg(10), 0x1234); // key
        b.tx_begin();
        table.emit_insert(&mut b, Reg(10), [Reg(1), Reg(2), Reg(3)], after);
        b.select(after);
        b.tx_commit();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn insert_program_validates() {
        let t = HashTable::new(Addr(64), 16, None, 1000);
        let p = build_insert_program(&t);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn insert_with_size_field_validates() {
        let t = HashTable::new(Addr(64), 16, Some(Addr(0)), 1000);
        let p = build_insert_program(&t);
        assert!(p.validate().is_ok());
        // The size-field path must mention the size address as an immediate.
        let text = p.to_string();
        assert!(text.contains("imm r1, 0"));
    }

    #[test]
    fn lookup_program_validates() {
        let t = HashTable::new(Addr(64), 16, None, 1000);
        let mut b = ProgramBuilder::new();
        let after = b.block();
        b.imm(Reg(10), 7);
        b.tx_begin();
        t.emit_lookup(&mut b, Reg(10), [Reg(1), Reg(2)], after);
        b.select(after);
        b.tx_commit();
        b.halt();
        assert!(b.build().is_ok());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_buckets_rejected() {
        let _ = HashTable::new(Addr(0), 10, None, 100);
    }

    #[test]
    fn footprint() {
        let t = HashTable::new(Addr(0), 16, None, 100);
        assert_eq!(t.footprint_words(), 128);
    }
}
