//! Deterministic fault-injection suite for `retcon-serve`: under every
//! [`FaultPlan`] the daemon stays up, answers subsequent requests
//! correctly, and unaffected keys' records remain byte-identical to the
//! offline runner — repair, not abort (DESIGN.md § Serving → Fault
//! model).
//!
//! Faults are injected through the counter-indexed, seeded
//! [`retcon_lab::FaultPlan`] threaded into [`ServerConfig::faults`], so
//! every scenario replays exactly: worker panics (one-shot and
//! per-key), spill-write failure, spill corruption surfacing at warm
//! start, mid-stream connection drops, and slow-client stalls.

use retcon_lab::runner::{run_jobs, Job};
use retcon_lab::{FaultPlan, RunKey};
use retcon_serve::{Client, ClientConfig, Server, ServerConfig, SweepRequest};
use retcon_workloads::{System, Workload};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SEED: u64 = retcon_lab::SEED;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "retcon-serve-faults-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn(cfg: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(&addr.to_string()).expect("connect for shutdown");
    client.shutdown().expect("shutdown ack");
    handle.join().expect("server thread").expect("server run");
}

fn stat(addr: SocketAddr, name: &str) -> u64 {
    let mut client = Client::connect(&addr.to_string()).expect("connect for stats");
    let stats = client.stats().expect("stats");
    stats
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing stat `{name}`"))
}

fn sweep(id: u64, systems: &[System], cores: &[usize]) -> SweepRequest {
    SweepRequest {
        id,
        workloads: vec![Workload::Counter],
        systems: systems.to_vec(),
        cores: cores.to_vec(),
        seeds: vec![SEED],
    }
}

fn offline(req: &SweepRequest) -> Vec<String> {
    let jobs: Vec<Job> = req
        .explode()
        .into_iter()
        .map(|k| Job::new(k.workload, k.system, k.cores, k.seed))
        .collect();
    run_jobs(&jobs, 2)
        .expect("offline run")
        .iter()
        .map(|r| r.to_json().to_string())
        .collect()
}

fn to_lines(records: &[retcon_lab::RunRecord]) -> Vec<String> {
    records.iter().map(|r| r.to_json().to_string()).collect()
}

/// A one-shot worker panic is retried transparently: the sweep still
/// succeeds, its records are byte-identical to offline, and the panic is
/// visible only in the `worker_panics` counter.
#[test]
fn one_shot_worker_panic_is_retried_transparently() {
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        faults: Some(Arc::new(FaultPlan::new().panic_on_execution_n(0))),
        ..ServerConfig::default()
    });
    let req = sweep(1, &[System::Eager, System::Retcon], &[1]);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let result = client.sweep(&req).expect("sweep survives a worker panic");
    assert_eq!(to_lines(&result.records), offline(&req));
    assert_eq!(stat(addr, "worker_panics"), 1);
    assert_eq!(stat(addr, "executed"), 2);
    assert_eq!(stat(addr, "quarantined"), 0);
    shutdown(addr, handle);
}

/// A key that panics on every attempt exhausts its retries and is
/// quarantined: waiters get a structured error (not a hang), the daemon
/// keeps serving, unaffected keys stay byte-identical to offline, and a
/// repeat request for the bad key fails fast at classification time.
#[test]
fn persistent_panic_quarantines_key_and_daemon_survives() {
    let bad = RunKey::new(Workload::Counter, System::Retcon, 1, SEED).content_hash();
    let (addr, handle) = spawn(ServerConfig {
        workers: 2,
        panic_retries: 1,
        faults: Some(Arc::new(FaultPlan::new().panic_on_key_hash(bad))),
        ..ServerConfig::default()
    });

    let mixed = sweep(1, &[System::Eager, System::Retcon], &[1]);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let err = client.sweep(&mixed).expect_err("bad key must error");
    assert!(err.contains("quarantined"), "unexpected error: {err}");

    // The daemon is still up; the unaffected key serves byte-identically.
    let good = sweep(2, &[System::Eager], &[1]);
    let mut fresh = Client::connect(&addr.to_string()).expect("reconnect");
    let result = fresh.sweep(&good).expect("good key still serves");
    assert_eq!(to_lines(&result.records), offline(&good));

    // Quarantine is sticky and fast: no new execution, immediate error.
    let executed_before = stat(addr, "executed");
    let retry = sweep(3, &[System::Retcon], &[1]);
    let mut again = Client::connect(&addr.to_string()).expect("reconnect");
    let err = again.sweep(&retry).expect_err("quarantined key refused");
    assert!(err.contains("quarantined"), "unexpected error: {err}");
    assert_eq!(stat(addr, "executed"), executed_before);
    assert_eq!(stat(addr, "quarantined"), 1);
    assert_eq!(stat(addr, "worker_panics"), 2); // 1 attempt + 1 retry

    shutdown(addr, handle);
}

/// A failed spill write is survivable — the result stays memory-resident
/// and the sweep succeeds — but it is honestly lost to a restart: the
/// warm-started daemon recovers only the key that landed on disk and
/// re-executes the other.
#[test]
fn spill_write_failure_survives_and_restart_reexecutes_lost_key() {
    let dir = temp_dir("spillfail");
    let req = sweep(1, &[System::Eager, System::Retcon], &[1]);
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        spill: Some(dir.clone()),
        faults: Some(Arc::new(FaultPlan::new().fail_spill_write_on(0))),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let cold = client.sweep(&req).expect("sweep survives spill failure");
    assert_eq!(to_lines(&cold.records), offline(&req));
    assert_eq!(stat(addr, "spill_write_failures"), 1);
    // Still memory-resident: an identical sweep is all hits.
    let warm = client.sweep(&sweep(2, &[System::Eager, System::Retcon], &[1]));
    assert_eq!(warm.expect("warm sweep").hits, 2);
    shutdown(addr, handle);

    // Restart on the same spill dir: one key recovered, one re-executed.
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        spill: Some(dir.clone()),
        ..ServerConfig::default()
    });
    assert_eq!(stat(addr, "recovered_on_boot"), 1);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let result = client
        .sweep(&sweep(3, &[System::Eager, System::Retcon], &[1]))
        .expect("post-restart sweep");
    assert_eq!(to_lines(&result.records), offline(&req));
    assert_eq!((result.hits, result.misses), (1, 1));
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A spill entry corrupted on disk is caught by the warm-start scan:
/// quarantined to the sidecar dir, never served, and its key simply
/// re-executes — records stay byte-identical to offline.
#[test]
fn corrupt_spill_entry_is_quarantined_at_warm_start() {
    let dir = temp_dir("corrupt");
    let req = sweep(1, &[System::Eager, System::Retcon], &[1]);
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        spill: Some(dir.clone()),
        faults: Some(Arc::new(FaultPlan::new().corrupt_spill_write_on(0, 7))),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    client.sweep(&req).expect("sweep with corrupting spill");
    shutdown(addr, handle);

    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        spill: Some(dir.clone()),
        ..ServerConfig::default()
    });
    assert_eq!(stat(addr, "recovered_on_boot"), 1);
    assert_eq!(stat(addr, "quarantined"), 1);
    // The damaged entry sits in the sidecar, out of the serving path.
    let sidecar = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(sidecar, 1);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let result = client
        .sweep(&sweep(2, &[System::Eager, System::Retcon], &[1]))
        .expect("post-quarantine sweep");
    assert_eq!(to_lines(&result.records), offline(&req));
    assert_eq!((result.hits, result.misses), (1, 1));
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mid-stream connection drop is repaired by the resilient client:
/// reconnect + reissue succeeds, and because content-addressed keys are
/// idempotency keys the daemon executes each distinct key exactly once
/// no matter how many times the sweep is reissued.
#[test]
fn mid_stream_disconnect_reconnects_and_reissues_idempotently() {
    let (addr, handle) = spawn(ServerConfig {
        workers: 2,
        faults: Some(Arc::new(FaultPlan::new().drop_after_line_n(0))),
        ..ServerConfig::default()
    });
    let req = sweep(1, &[System::Eager, System::Retcon], &[1]);
    let cfg = ClientConfig {
        retries: 2,
        backoff: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(&addr.to_string(), cfg).expect("connect");
    let result = client
        .sweep(&req)
        .expect("retry repairs the dropped stream");
    assert_eq!(to_lines(&result.records), offline(&req));
    // Idempotent reissue: executions equal distinct keys, not attempts.
    assert_eq!(stat(addr, "executed"), 2);
    shutdown(addr, handle);
}

/// Without retries the same drop is a fail-fast transport error — the
/// daemon survives either way.
#[test]
fn mid_stream_disconnect_without_retries_fails_fast() {
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        faults: Some(Arc::new(FaultPlan::new().drop_after_line_n(0))),
        ..ServerConfig::default()
    });
    let req = sweep(1, &[System::Eager], &[1]);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let err = client.sweep(&req).expect_err("dropped stream fails fast");
    assert!(
        err.contains("closed") || err.contains("failed"),
        "unexpected error: {err}"
    );
    // Daemon is fine; a fresh connection serves the key.
    let mut fresh = Client::connect(&addr.to_string()).expect("reconnect");
    let result = fresh
        .sweep(&sweep(2, &[System::Eager], &[1]))
        .expect("serve");
    assert_eq!(to_lines(&result.records), offline(&req));
    shutdown(addr, handle);
}

/// A stalled (slow-reading) client delays only its own connection's
/// writer thread: another client's sweep completes while the stall is
/// in progress.
#[test]
fn slow_client_stall_does_not_block_other_connections() {
    const STALL_MS: u64 = 1500;
    let (addr, handle) = spawn(ServerConfig {
        workers: 2,
        faults: Some(Arc::new(FaultPlan::new().stall_line_n(0, STALL_MS))),
        ..ServerConfig::default()
    });

    // Victim: its first response line draws the stall.
    let victim = std::thread::spawn(move || {
        let mut c = Client::connect(&addr.to_string()).expect("connect victim");
        c.sweep(&sweep(1, &[System::Eager], &[1]))
            .expect("stalled sweep")
    });
    // Give the victim time to reach the stalled write.
    std::thread::sleep(Duration::from_millis(300));

    let t = Instant::now();
    let mut other = Client::connect(&addr.to_string()).expect("connect other");
    let result = other
        .sweep(&sweep(2, &[System::Retcon], &[1]))
        .expect("unstalled sweep");
    let elapsed = t.elapsed();
    assert_eq!(result.records.len(), 1);
    assert!(
        elapsed < Duration::from_millis(STALL_MS),
        "second connection blocked behind the stalled one ({elapsed:?})"
    );
    victim.join().expect("victim thread");
    shutdown(addr, handle);
}

/// Hostile input — an oversized line, truncated JSON, and an unknown
/// request type — each gets a structured error reply and the connection
/// stays alive for a well-formed request afterwards.
#[test]
fn hostile_input_gets_structured_errors_and_connection_survives() {
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        max_line_bytes: 1024,
        ..ServerConfig::default()
    });

    let stream = TcpStream::connect(addr).expect("raw connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut reply = |payload: &[u8]| -> String {
        writer.write_all(payload).expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        line
    };

    // Oversized line: discarded with an error naming the cap.
    let mut oversized = vec![b'x'; 4096];
    oversized.push(b'\n');
    let line = reply(&oversized);
    assert!(
        line.contains(r#""type":"error""#) && line.contains("1024"),
        "unexpected reply: {line}"
    );

    // Truncated JSON.
    let line = reply(b"{\"type\":\"swe\n");
    assert!(
        line.contains(r#""type":"error""#),
        "unexpected reply: {line}"
    );

    // Unknown request type.
    let line = reply(b"{\"type\":\"bogus\"}\n");
    assert!(
        line.contains(r#""type":"error""#),
        "unexpected reply: {line}"
    );

    // Invalid UTF-8 is survivable too.
    let line = reply(&[0xff, 0xfe, b'{', 0xff, b'\n']);
    assert!(
        line.contains(r#""type":"error""#),
        "unexpected reply: {line}"
    );

    // The same connection still serves a well-formed request.
    let line = reply(b"{\"type\":\"stats\"}\n");
    assert!(
        line.contains(r#""type":"stats""#) && line.contains("executed"),
        "connection did not survive hostile input: {line}"
    );

    shutdown(addr, handle);
}
