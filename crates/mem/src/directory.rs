//! Directory coherence state.
//!
//! Entries are stored compactly as a per-block *sharer bitset* plus an
//! optional owner index, so the hot-path questions — "who must be
//! invalidated", "can the data be forwarded", "does this core hold the block
//! modified" — are fixed-width bit operations instead of `BTreeSet`
//! traversals. The [`DirState`] enum remains as a read-only *view* for tests
//! and diagnostics.
//!
//! The sharer set is a [`CoreSet<N>`]: `N = 1` (the default everywhere the
//! paper matrix runs) keeps the historical one-`u64` entry layout and
//! codegen; wider size classes (`N` up to 16, 1024 cores) widen every
//! operation to an unrolled word loop with no code changes here.

use std::collections::BTreeSet;

use retcon_isa::{BlockAddr, CoreSet};

use crate::system::CoreId;
use retcon_isa::table::BlockTable;

/// The directory's default (`N = 1`) size class supports at most this many
/// cores; wider machines use `CoreSet<N>` entries supporting `64 * N`.
pub const MAX_CORES: usize = 64;

/// Sentinel for "no modified owner" (`u16` so owner indices cover the
/// 1024-core size class).
const NO_OWNER: u16 = u16::MAX;

/// Compact per-block directory entry: either one modified owner, or a
/// bitset of read-only sharers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry<const N: usize = 1> {
    /// Core `i` present: core `i` holds a read-only copy (only meaningful
    /// when `owner == NO_OWNER`).
    sharers: CoreSet<N>,
    /// Index of the modified owner, or [`NO_OWNER`].
    owner: u16,
}

/// The default entry is the uncached state: no sharers, no owner.
impl<const N: usize> Default for Entry<N> {
    fn default() -> Self {
        Entry {
            sharers: CoreSet::EMPTY,
            owner: NO_OWNER,
        }
    }
}

impl<const N: usize> Entry<N> {
    #[inline]
    fn modified(core: CoreId) -> Entry<N> {
        debug_assert!(core.0 < CoreSet::<N>::CAPACITY);
        Entry {
            sharers: CoreSet::EMPTY,
            owner: core.0 as u16,
        }
    }

    #[inline]
    fn shared(mask: CoreSet<N>) -> Entry<N> {
        Entry {
            sharers: mask,
            owner: NO_OWNER,
        }
    }

    #[inline]
    fn holder_mask(self) -> CoreSet<N> {
        if self.owner == NO_OWNER {
            self.sharers
        } else {
            CoreSet::solo(self.owner as usize)
        }
    }
}

/// Coherence state of one block as seen by the directory (a view assembled
/// on demand; the directory's storage is the compact [`Entry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No core caches the block.
    Uncached,
    /// One or more cores hold read-only copies.
    Shared(BTreeSet<CoreId>),
    /// Exactly one core holds the block with write permission.
    Modified(CoreId),
}

impl DirState {
    /// The set of cores currently holding any copy.
    pub fn holders(&self) -> Vec<CoreId> {
        match self {
            DirState::Uncached => Vec::new(),
            DirState::Shared(s) => s.iter().copied().collect(),
            DirState::Modified(c) => vec![*c],
        }
    }

    /// `true` if `core` holds a copy.
    pub fn holds(&self, core: CoreId) -> bool {
        match self {
            DirState::Uncached => false,
            DirState::Shared(s) => s.contains(&core),
            DirState::Modified(c) => *c == core,
        }
    }

    /// `true` if `core` holds the block with write permission.
    pub fn holds_modified(&self, core: CoreId) -> bool {
        matches!(self, DirState::Modified(c) if *c == core)
    }
}

/// The directory: authoritative coherence state for every block.
///
/// The directory answers two questions for the memory system: *who must be
/// invalidated/downgraded to grant this request* and *can the data be
/// forwarded from a remote owner instead of DRAM*. State transitions are
/// driven exclusively by [`grant_read`](Directory::grant_read),
/// [`grant_write`](Directory::grant_write) and
/// [`drop_holder`](Directory::drop_holder); the per-core tag arrays mirror
/// this state for latency and speculative-bit lookups.
#[derive(Debug, Clone, Default)]
pub struct Directory<const N: usize = 1> {
    /// Per-block entries; the dense-first table makes every hot-path
    /// question an array load for densely-allocated workloads.
    entries: BlockTable<Entry<N>>,
}

impl<const N: usize> Directory<N> {
    /// Creates an empty directory (all blocks [`DirState::Uncached`]).
    pub fn new() -> Self {
        Directory {
            entries: BlockTable::new(),
        }
    }

    /// The current state of `block`, as an assembled view (allocates for
    /// shared blocks; intended for tests and diagnostics, not the hot path).
    pub fn state(&self, block: BlockAddr) -> DirState {
        let e = self.entries.get(block.0);
        if e == Entry::default() {
            DirState::Uncached
        } else if e.owner != NO_OWNER {
            DirState::Modified(CoreId(e.owner as usize))
        } else {
            DirState::Shared(e.sharers.iter().map(CoreId).collect())
        }
    }

    /// Debug-asserts that `core` fits this size class's sharer sets. The
    /// `MemorySystem` constructor enforces this for protocol-driven use;
    /// this guard covers direct `Directory` users.
    #[inline]
    fn check_core(core: CoreId) {
        debug_assert!(
            core.0 < CoreSet::<N>::CAPACITY,
            "CoreId {core} exceeds this size class's capacity ({})",
            CoreSet::<N>::CAPACITY
        );
    }

    /// `true` if `core` holds any copy of `block`.
    #[inline]
    pub fn holds(&self, core: CoreId, block: BlockAddr) -> bool {
        Self::check_core(core);
        self.entries.get(block.0).holder_mask().contains(core.0)
    }

    /// `true` if `core` holds `block` with write permission.
    #[inline]
    pub fn holds_modified(&self, core: CoreId, block: BlockAddr) -> bool {
        Self::check_core(core);
        self.entries.get(block.0).owner == core.0 as u16
    }

    /// Set of cores whose copies must change state for `core` to perform
    /// the given access: for a write, every other holder; for a read, the
    /// remote modified owner (who must downgrade), if any.
    #[inline]
    pub fn victims_mask(&self, core: CoreId, block: BlockAddr, write: bool) -> CoreSet<N> {
        Self::check_core(core);
        let e = self.entries.get(block.0);
        if e.owner != NO_OWNER {
            e.holder_mask().without(core.0)
        } else if write {
            e.sharers.without(core.0)
        } else {
            CoreSet::EMPTY
        }
    }

    /// [`victims_mask`](Self::victims_mask) as a `Vec` (tests and
    /// diagnostics).
    pub fn victims(&self, core: CoreId, block: BlockAddr, write: bool) -> Vec<CoreId> {
        self.victims_mask(core, block, write)
            .iter()
            .map(CoreId)
            .collect()
    }

    /// `true` if a miss by `core` would be serviced by a remote owner's cache
    /// (dirty forward) rather than DRAM.
    #[inline]
    pub fn forwarded_from_owner(&self, core: CoreId, block: BlockAddr) -> bool {
        Self::check_core(core);
        let owner = self.entries.get(block.0).owner;
        owner != NO_OWNER && owner != core.0 as u16
    }

    /// Records that `core` has been granted a read-only copy, downgrading a
    /// remote modified owner to shared. Returns the downgraded owner, if any.
    pub fn grant_read(&mut self, core: CoreId, block: BlockAddr) -> Option<CoreId> {
        Self::check_core(core);
        let e = self.entries.entry(block.0);
        if e.owner == NO_OWNER {
            // Uncached or shared: join the sharer set.
            e.sharers.insert(core.0);
            None
        } else if e.owner == core.0 as u16 {
            None
        } else {
            let owner = CoreId(e.owner as usize);
            let mut sharers = CoreSet::solo(core.0);
            sharers.insert(owner.0);
            *e = Entry::shared(sharers);
            Some(owner)
        }
    }

    /// Records that `core` has been granted an exclusive (writable) copy,
    /// invalidating all other holders. Returns the set of invalidated
    /// cores.
    pub fn grant_write(&mut self, core: CoreId, block: BlockAddr) -> CoreSet<N> {
        let victims = self.victims_mask(core, block, true);
        *self.entries.entry(block.0) = Entry::modified(core);
        victims
    }

    /// Records that `core` no longer caches `block` (eviction or
    /// invalidation acknowledged).
    pub fn drop_holder(&mut self, core: CoreId, block: BlockAddr) {
        Self::check_core(core);
        let mut e = self.entries.get(block.0);
        if e == Entry::default() {
            return;
        }
        if e.owner != NO_OWNER {
            if e.owner == core.0 as u16 {
                self.entries.clear_entry(block.0);
            }
        } else {
            e.sharers.remove(core.0);
            if e.sharers.is_empty() {
                self.entries.clear_entry(block.0);
            } else {
                *self.entries.entry(block.0) = e;
            }
        }
    }

    /// Number of blocks with a non-`Uncached` entry.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.occupied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const C2: CoreId = CoreId(2);
    const B: BlockAddr = BlockAddr(7);

    /// `CoreSet` with exactly the given members (expected-value helper).
    fn set<const N: usize>(cores: &[usize]) -> CoreSet<N> {
        let mut s = CoreSet::EMPTY;
        for &c in cores {
            s.insert(c);
        }
        s
    }

    #[test]
    fn starts_uncached() {
        let d: Directory = Directory::new();
        assert_eq!(d.state(B), DirState::Uncached);
        assert!(d.victims(C0, B, true).is_empty());
        assert_eq!(d.victims_mask(C0, B, true), CoreSet::EMPTY);
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn read_read_shares() {
        let mut d: Directory = Directory::new();
        assert_eq!(d.grant_read(C0, B), None);
        assert_eq!(d.grant_read(C1, B), None);
        let s = d.state(B);
        assert!(s.holds(C0) && s.holds(C1));
        assert!(!s.holds_modified(C0));
        assert!(d.holds(C0, B) && d.holds(C1, B));
        assert!(!d.holds_modified(C0, B));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d: Directory = Directory::new();
        d.grant_read(C0, B);
        d.grant_read(C1, B);
        let victims = d.grant_write(C2, B);
        assert_eq!(victims, set(&[0, 1]));
        assert!(d.state(B).holds_modified(C2));
        assert!(d.holds_modified(C2, B));
    }

    #[test]
    fn read_downgrades_modified_owner() {
        let mut d: Directory = Directory::new();
        d.grant_write(C0, B);
        assert!(d.forwarded_from_owner(C1, B));
        let downgraded = d.grant_read(C1, B);
        assert_eq!(downgraded, Some(C0));
        let s = d.state(B);
        assert!(s.holds(C0) && s.holds(C1));
        assert!(!s.holds_modified(C0));
    }

    #[test]
    fn owner_rereading_keeps_modified() {
        let mut d: Directory = Directory::new();
        d.grant_write(C0, B);
        assert_eq!(d.grant_read(C0, B), None);
        assert!(d.state(B).holds_modified(C0));
    }

    #[test]
    fn write_steals_from_owner() {
        let mut d: Directory = Directory::new();
        d.grant_write(C0, B);
        let victims = d.grant_write(C1, B);
        assert_eq!(victims, set(&[0]));
        assert!(d.state(B).holds_modified(C1));
    }

    #[test]
    fn drop_holder_transitions() {
        let mut d: Directory = Directory::new();
        d.grant_read(C0, B);
        d.grant_read(C1, B);
        d.drop_holder(C0, B);
        assert!(!d.state(B).holds(C0));
        assert!(d.state(B).holds(C1));
        d.drop_holder(C1, B);
        assert_eq!(d.state(B), DirState::Uncached);
        assert_eq!(d.tracked_blocks(), 0);

        d.grant_write(C2, B);
        d.drop_holder(C2, B);
        assert_eq!(d.state(B), DirState::Uncached);
    }

    #[test]
    fn victims_for_read_only_modified_owner() {
        let mut d: Directory = Directory::new();
        d.grant_read(C0, B);
        assert!(d.victims(C1, B, false).is_empty());
        d.grant_write(C0, B);
        assert_eq!(d.victims(C1, B, false), vec![C0]);
        assert_eq!(d.victims(C0, B, false), Vec::<CoreId>::new());
    }

    #[test]
    fn drop_of_non_holder_is_noop() {
        let mut d: Directory = Directory::new();
        d.grant_write(C0, B);
        d.drop_holder(C1, B);
        assert!(d.state(B).holds_modified(C0));
    }

    #[test]
    fn wide_size_class_tracks_high_cores() {
        // The 16-word size class handles cores past every narrower limit.
        let mut d: Directory<16> = Directory::new();
        let hi = CoreId(1000);
        let lo = CoreId(3);
        d.grant_read(hi, B);
        d.grant_read(lo, B);
        assert!(d.holds(hi, B) && d.holds(lo, B));
        let victims = d.grant_write(CoreId(512), B);
        assert_eq!(victims, set(&[3, 1000]));
        assert!(d.holds_modified(CoreId(512), B));
    }
}
