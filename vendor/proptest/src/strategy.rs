//! The [`Strategy`] trait and the combinators this repository uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A generator of test values. Object-safe; combinators require `Sized`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying (bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter({:?}) rejected 10000 candidates", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// A strategy choosing uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T` (the integer/bool subset).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        // Full 64-bit domain: the modular draw would wrap.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
