//! Simulation configuration (Table 1 of the paper).

use retcon_mem::MemConfig;

/// Full machine configuration for a simulation run.
///
/// Defaults reproduce Table 1: 32 in-order cores (1 IPC), 64 KB 4-way L1,
/// 1 MB private L2, directory coherence with 20-cycle hops and 100-cycle
/// DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of cores ("32 in-order x86 cores, 1 IPC").
    pub num_cores: usize,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Cycles a stalled access waits before retrying. Models the NACK/retry
    /// delay of directory protocols; one hop (20 cycles) by default.
    pub stall_retry: u64,
    /// Safety cap: a run exceeding this many cycles returns
    /// [`SimError::CycleLimit`](crate::SimError::CycleLimit) (forward
    /// progress is otherwise guaranteed by the oldest-wins policy, so the
    /// cap exists to catch workload bugs).
    pub max_cycles: u64,
    /// When set, [`Machine::run`](crate::Machine::run) drives the machine
    /// with a [`SeededFuzz`](crate::SeededFuzz) schedule under this seed
    /// (default window and jitter) instead of the deterministic min-heap —
    /// still exactly reproducible from `(config, seed)`. `None` (the
    /// default) preserves the historical byte-identical schedule.
    pub schedule_seed: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_cores: 32,
            mem: MemConfig::default(),
            stall_retry: 20,
            max_cycles: 2_000_000_000,
            schedule_seed: None,
        }
    }
}

impl SimConfig {
    /// The default configuration with a different core count (for
    /// sequential baselines and scalability sweeps).
    pub fn with_cores(num_cores: usize) -> Self {
        SimConfig {
            num_cores,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_32_cores() {
        let c = SimConfig::default();
        assert_eq!(c.num_cores, 32);
        assert_eq!(c.stall_retry, 20);
    }

    #[test]
    fn with_cores_overrides_count_only() {
        let c = SimConfig::with_cores(4);
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.mem, MemConfig::default());
    }
}
