//! Record serialization properties: the JSON emitters are lossless
//! inverses of the parsers over *arbitrary* records, the CSV projection is
//! byte-stable, and one known seed-42 run is pinned as a golden snapshot
//! so the on-disk schema cannot drift silently.

use proptest::collection::vec;
use proptest::prelude::*;

use retcon::{RetconStats, TxSnapshot};
use retcon_htm::ProtocolStats;
use retcon_lab::record::{ExperimentRecord, RunRecord};
use retcon_lab::runner::{execute, Job};
use retcon_lab::{csv, SEED};
use retcon_sim::{CoreReport, SimReport, TimeBreakdown};
use retcon_workloads::{System, Workload};

/// Labels drawn from a CSV-safe alphabet (the emitters reject delimiter
/// characters by design; that rejection has its own unit test).
fn label_strategy() -> impl Strategy<Value = String> {
    vec(
        prop_oneof![
            Just('a'),
            Just('B'),
            Just('z'),
            Just('0'),
            Just('9'),
            Just('-'),
            Just('_'),
            Just('.'),
        ],
        1..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn knob_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    vec((label_strategy(), label_strategy()), 0..3)
}

/// Counters bounded to 2^40: real fields are cycle/commit counts, and the
/// aggregate helpers (`TimeBreakdown::total`, `SimReport::breakdown`)
/// deliberately assume sums fit u64 — unbounded values would overflow in
/// debug builds without testing anything records care about.
fn counter_strategy() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|v| v & ((1u64 << 40) - 1))
}

fn core_report_strategy() -> impl Strategy<Value = CoreReport> {
    (
        proptest::array::uniform4(counter_strategy()),
        counter_strategy(),
        counter_strategy(),
    )
        .prop_map(|(buckets, instructions, finished_at)| CoreReport {
            breakdown: TimeBreakdown::from_array(buckets),
            instructions,
            finished_at,
        })
}

fn retcon_stats_strategy() -> impl Strategy<Value = RetconStats> {
    (
        counter_strategy(),
        counter_strategy(),
        counter_strategy(),
        proptest::array::uniform8(counter_strategy()),
        proptest::array::uniform4(counter_strategy()),
    )
        .prop_map(|(transactions, tx_cycles, violations, a, b)| RetconStats {
            transactions,
            tx_cycles,
            violations,
            sum: TxSnapshot::from_array([a[0], a[1], a[2], a[3], a[4], a[5]]),
            max: TxSnapshot::from_array([a[6], a[7], b[0], b[1], b[2], b[3]]),
        })
}

fn report_strategy() -> impl Strategy<Value = SimReport> {
    (
        label_strategy(),
        counter_strategy(),
        vec(core_report_strategy(), 0..4),
        proptest::array::uniform8(counter_strategy()),
        prop_oneof![Just(None), retcon_stats_strategy().prop_map(Some).boxed(),],
    )
        .prop_map(
            |(protocol_name, cycles, per_core, stats, retcon)| SimReport {
                protocol_name,
                cycles,
                per_core,
                protocol: ProtocolStats::from_array([
                    stats[0], stats[1], stats[2], stats[3], stats[4], stats[5],
                ]),
                retcon,
            },
        )
}

fn run_strategy() -> impl Strategy<Value = RunRecord> {
    (
        label_strategy(),
        label_strategy(),
        1u64..256,
        any::<u64>(),
        knob_strategy(),
        counter_strategy(),
        report_strategy(),
    )
        .prop_map(
            |(workload, system, cores, seed, knobs, seq_cycles, report)| RunRecord {
                workload,
                system,
                cores,
                seed,
                knobs,
                seq_cycles,
                report,
            },
        )
}

fn experiment_strategy() -> impl Strategy<Value = ExperimentRecord> {
    (
        label_strategy(),
        any::<u64>(),
        vec((label_strategy(), label_strategy()), 0..3),
        vec(run_strategy(), 0..4),
    )
        .prop_map(|(name, seed, meta, runs)| ExperimentRecord {
            name,
            seed,
            meta,
            runs,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// JSON is a lossless inverse: parse(emit(x)) == x for arbitrary
    /// records, through both the value tree and the pretty-printed text.
    #[test]
    fn json_roundtrip_is_lossless(exp in experiment_strategy()) {
        let reparsed = ExperimentRecord::from_json(&exp.to_json()).unwrap();
        prop_assert_eq!(&reparsed, &exp);
        let through_text = ExperimentRecord::from_json_str(&exp.to_json_string()).unwrap();
        prop_assert_eq!(&through_text, &exp);
    }

    /// The CSV projection is stable: emit ∘ parse ∘ emit == emit, and the
    /// parse preserves every aggregate the projection keeps.
    #[test]
    fn csv_projection_is_byte_stable(exp in experiment_strategy()) {
        let first = csv::to_csv(&exp).unwrap();
        let parsed = csv::from_csv(&first).unwrap();
        prop_assert_eq!(csv::to_csv(&parsed).unwrap(), first);
        prop_assert_eq!(&parsed.name, &exp.name);
        prop_assert_eq!(parsed.seed, exp.seed);
        prop_assert_eq!(&parsed.meta, &exp.meta);
        prop_assert_eq!(parsed.runs.len(), exp.runs.len());
        for (p, e) in parsed.runs.iter().zip(&exp.runs) {
            prop_assert_eq!(p.report.breakdown(), e.report.breakdown());
            prop_assert_eq!(&p.report.protocol, &e.report.protocol);
            prop_assert_eq!(&p.report.retcon, &e.report.retcon);
            prop_assert_eq!(p.report.total_instructions(), e.report.total_instructions());
            prop_assert_eq!(&p.knobs, &e.knobs);
            prop_assert_eq!(p.seq_cycles, e.seq_cycles);
        }
    }
}

/// The golden snapshot: a known seed-42 counter run under RETCON at 2
/// cores (with its 1-core eager baseline wired in), byte-compared against
/// the checked-in JSON. If this fails because the schema or the simulator
/// *intentionally* changed, regenerate via the instructions in the
/// assertion message.
#[test]
fn golden_counter_seed42_snapshot() {
    let mut run = execute(&Job::new(Workload::Counter, System::Retcon, 2, SEED)).unwrap();
    let baseline = execute(&Job::new(Workload::Counter, System::Eager, 1, SEED)).unwrap();
    run.seq_cycles = baseline.report.cycles;
    let exp = ExperimentRecord {
        name: "golden-counter".to_string(),
        seed: SEED,
        meta: vec![(
            "note".to_string(),
            "counter under RetCon, 2 cores, seed 42".to_string(),
        )],
        runs: vec![run],
    };
    let actual = exp.to_json_string();
    let expected = include_str!("golden/counter_seed42.json");
    if actual != expected {
        let out = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/counter_seed42.actual.json"
        );
        std::fs::write(out, &actual).expect("write actual snapshot");
        panic!(
            "golden snapshot drifted; inspect {out} and, if the change is \
             intentional, move it over tests/golden/counter_seed42.json"
        );
    }
    // And the golden text itself round-trips.
    assert_eq!(ExperimentRecord::from_json_str(expected).unwrap(), exp);
}
