//! Serializability property tests: under every protocol, committed
//! transactions must be equivalent to some serial order.
//!
//! For commutative counter increments this has a crisp check: the final
//! counter value equals the number of committed increments — no lost
//! updates, no phantom updates — regardless of protocol, core count or
//! contention level.

use proptest::prelude::*;

use retcon_isa::{Addr, BinOp, CmpOp, Operand, Program, ProgramBuilder, Reg};
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::System;

/// A program where each transaction picks a counter from a pool of
/// `pool` counters (tape-driven), increments it `incs` times, and spins
/// some work between increments.
fn pool_counter_program(pool: u64, iters: u64, incs: u32, work: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let body = b.block();
    let done = b.block();
    b.imm(Reg(0), iters);
    b.jump(body);
    b.select(body);
    b.input(Reg(1));
    b.bin(BinOp::Mod, Reg(1), Reg(1), Operand::Imm(pool as i64));
    b.bin(BinOp::Shl, Reg(1), Reg(1), Operand::Imm(3)); // one block per counter
    b.tx_begin();
    for i in 0..incs {
        b.load(Reg(2), Reg(1), 0);
        b.add_imm(Reg(2), 1);
        b.store(Operand::Reg(Reg(2)), Reg(1), 0);
        if i + 1 < incs && work > 0 {
            b.work(work);
        }
    }
    b.tx_commit();
    b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
    b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
    b.select(done);
    b.halt();
    b.build().expect("program is well-formed")
}

fn total_of_pool(machine: &Machine, pool: u64) -> u64 {
    (0..pool)
        .map(|i| machine.mem().read_word(Addr(i * 8)))
        .sum()
}

fn check_no_lost_updates(
    system: System,
    cores: usize,
    pool: u64,
    iters: u64,
    incs: u32,
    work: u32,
    seed: u64,
) {
    let cfg = SimConfig::with_cores(cores);
    let mut machine = Machine::new(
        cfg,
        system.protocol(cores),
        (0..cores)
            .map(|_| pool_counter_program(pool, iters, incs, work))
            .collect(),
    );
    let mut rng = retcon_workloads::SplitMix64::new(seed);
    for c in 0..cores {
        machine.set_tape(c, (0..iters).map(|_| rng.next_u64() >> 8).collect());
    }
    let report = machine.run().expect("run completes");
    let expected = report.protocol.commits * incs as u64;
    assert_eq!(
        total_of_pool(&machine, pool),
        expected,
        "lost/phantom updates under {} (cores={cores} pool={pool} incs={incs})",
        system.label()
    );
    // Every transaction eventually commits exactly once.
    assert_eq!(report.protocol.commits, cores as u64 * iters);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eager_counter_pool_serializable(
        cores in 1usize..6,
        pool in 1u64..5,
        incs in 1u32..4,
        work in 0u32..30,
        seed in any::<u64>(),
    ) {
        check_no_lost_updates(System::Eager, cores, pool, 16, incs, work, seed);
    }

    #[test]
    fn lazy_counter_pool_serializable(
        cores in 1usize..6,
        pool in 1u64..5,
        incs in 1u32..4,
        work in 0u32..30,
        seed in any::<u64>(),
    ) {
        check_no_lost_updates(System::Lazy, cores, pool, 16, incs, work, seed);
    }

    #[test]
    fn lazy_vb_counter_pool_serializable(
        cores in 1usize..6,
        pool in 1u64..5,
        incs in 1u32..4,
        work in 0u32..30,
        seed in any::<u64>(),
    ) {
        check_no_lost_updates(System::LazyVb, cores, pool, 16, incs, work, seed);
    }

    #[test]
    fn retcon_counter_pool_serializable(
        cores in 1usize..6,
        pool in 1u64..5,
        incs in 1u32..4,
        work in 0u32..30,
        seed in any::<u64>(),
    ) {
        check_no_lost_updates(System::Retcon, cores, pool, 16, incs, work, seed);
    }

    #[test]
    fn retcon_ideal_counter_pool_serializable(
        cores in 1usize..6,
        pool in 1u64..5,
        incs in 1u32..4,
        seed in any::<u64>(),
    ) {
        check_no_lost_updates(System::RetconIdeal, cores, pool, 16, incs, 10, seed);
    }

    #[test]
    fn datm_counter_pool_serializable(
        cores in 1usize..5,
        pool in 1u64..4,
        incs in 1u32..3,
        seed in any::<u64>(),
    ) {
        check_no_lost_updates(System::Datm, cores, pool, 12, incs, 10, seed);
    }
}

/// Mixed read-write transactions with branches: each transaction moves one
/// unit from counter A to counter B when A is positive. Conservation: the
/// sum across all counters never changes.
#[test]
fn transfer_conservation_under_all_systems() {
    let pool = 4u64;
    let cores = 4usize;
    let iters = 32u64;
    let build = || {
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let transfer = b.block();
        let skip = b.block();
        let done = b.block();
        b.imm(Reg(0), iters);
        b.jump(body);
        b.select(body);
        b.input(Reg(1)); // source index
        b.input(Reg(2)); // destination index
        b.bin(BinOp::Mod, Reg(1), Reg(1), Operand::Imm(pool as i64));
        b.bin(BinOp::Shl, Reg(1), Reg(1), Operand::Imm(3));
        b.bin(BinOp::Mod, Reg(2), Reg(2), Operand::Imm(pool as i64));
        b.bin(BinOp::Shl, Reg(2), Reg(2), Operand::Imm(3));
        b.tx_begin();
        b.load(Reg(3), Reg(1), 0);
        b.branch(CmpOp::Gt, Reg(3), Operand::Imm(0), transfer, skip);
        b.select(transfer);
        b.bin(BinOp::Sub, Reg(3), Reg(3), Operand::Imm(1));
        b.store(Operand::Reg(Reg(3)), Reg(1), 0);
        b.load(Reg(4), Reg(2), 0);
        b.add_imm(Reg(4), 1);
        b.store(Operand::Reg(Reg(4)), Reg(2), 0);
        b.jump(skip);
        b.select(skip);
        b.tx_commit();
        b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
        b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
        b.select(done);
        b.halt();
        b.build().expect("program is well-formed")
    };
    for system in [
        System::Eager,
        System::Lazy,
        System::LazyVb,
        System::Retcon,
        System::RetconIdeal,
    ] {
        let mut machine = Machine::new(
            SimConfig::with_cores(cores),
            system.protocol(cores),
            (0..cores).map(|_| build()).collect(),
        );
        let initial_total = 1000 * pool;
        for i in 0..pool {
            machine.init_word(Addr(i * 8), 1000);
        }
        let mut rng = retcon_workloads::SplitMix64::new(17);
        for c in 0..cores {
            machine.set_tape(c, (0..2 * iters).map(|_| rng.next_u64() >> 8).collect());
        }
        machine.run().expect("run completes");
        let total: u64 = (0..pool)
            .map(|i| machine.mem().read_word(Addr(i * 8)))
            .sum();
        assert_eq!(
            total,
            initial_total,
            "conservation violated under {}",
            system.label()
        );
    }
}
