//! Per-core input tapes.
//!
//! Workload generators pre-randomize each core's inputs (keys to insert,
//! objects to touch, path lengths, …) into a *tape* the program pops with
//! the `Input` instruction. The tape is thread-private and costs one cycle,
//! so it models register-resident work-list state rather than memory. On a
//! transaction abort the tape rewinds to the position captured at the
//! transaction's begin, so the retry observes identical inputs — which is
//! what makes whole runs deterministic under any interleaving.

/// A core's pre-generated input stream with transaction-rewind support.
///
/// # Example
///
/// ```
/// use retcon_sim::InputTape;
///
/// let mut tape = InputTape::new(vec![10, 20, 30]);
/// assert_eq!(tape.next(), 10);
/// tape.mark();
/// assert_eq!(tape.next(), 20);
/// tape.rewind(); // transaction aborted
/// assert_eq!(tape.next(), 20);
/// assert_eq!(tape.next(), 30);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InputTape {
    values: Vec<u64>,
    pos: usize,
    mark: usize,
}

impl InputTape {
    /// Creates a tape over `values`.
    pub fn new(values: Vec<u64>) -> Self {
        InputTape {
            values,
            pos: 0,
            mark: 0,
        }
    }

    /// Pops the next value.
    ///
    /// # Panics
    ///
    /// Panics if the tape is exhausted — a workload-generation bug (the
    /// generator must provision enough inputs for every iteration).
    #[allow(clippy::should_implement_trait)] // not an Iterator: exhaustion is a panic, not None
    pub fn next(&mut self) -> u64 {
        let v = *self
            .values
            .get(self.pos)
            .expect("input tape exhausted: workload under-provisioned");
        self.pos += 1;
        v
    }

    /// Records the current position (called at transaction begin).
    pub fn mark(&mut self) {
        self.mark = self.pos;
    }

    /// Rewinds to the last mark (called on abort).
    pub fn rewind(&mut self) {
        self.pos = self.mark;
    }

    /// Values not yet consumed.
    pub fn remaining(&self) -> usize {
        self.values.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pop() {
        let mut t = InputTape::new(vec![1, 2, 3]);
        assert_eq!(t.next(), 1);
        assert_eq!(t.next(), 2);
        assert_eq!(t.remaining(), 1);
    }

    #[test]
    fn rewind_restores_mark() {
        let mut t = InputTape::new(vec![1, 2, 3, 4]);
        t.next();
        t.mark();
        t.next();
        t.next();
        t.rewind();
        assert_eq!(t.next(), 2);
    }

    #[test]
    fn default_mark_is_start() {
        let mut t = InputTape::new(vec![7, 8]);
        t.next();
        t.rewind();
        assert_eq!(t.next(), 7);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut t = InputTape::new(vec![]);
        t.next();
    }
}
