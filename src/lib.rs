//! Facade crate for the RETCON reproduction.
//!
//! This repository implements *RETCON: Transactional Repair Without Replay*
//! (Blundell, Raghavan, Martin — ISCA 2010) as a set of Rust crates:
//!
//! * [`retcon`] — the paper's contribution: symbolic tracking and
//!   commit-time repair (initial value buffer, symbolic store buffer,
//!   constraint buffer, predictor, Figure 6/7 algorithms);
//! * [`retcon_isa`] — the mini RISC-like IR workloads are written in;
//! * [`retcon_mem`] — caches, directory coherence, speculative bits,
//!   version management;
//! * [`retcon_htm`] — the concurrency-control protocols compared in the
//!   evaluation (eager, lazy, lazy-vb, RETCON, DATM);
//! * [`retcon_sim`] — the deterministic cycle-driven multicore simulator;
//! * [`retcon_workloads`] — STAMP-like workload models plus the
//!   transactionalized-CPython model.
//!
//! The runnable examples in `examples/` are the quickest tour:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example refcount_interpreter
//! cargo run --release --example hashtable_resize
//! cargo run --release --example contention_explorer
//! ```
//!
//! Every table and figure of the paper regenerates from the harness
//! binaries in `crates/bench` (see `DESIGN.md` for the index and
//! `EXPERIMENTS.md` for recorded results).

#![forbid(unsafe_code)]

pub use retcon;
pub use retcon_htm;
pub use retcon_isa;
pub use retcon_mem;
pub use retcon_sim;
pub use retcon_workloads;
