//! A dependence-aware TM (DATM) model sufficient for Figure 2(b).
//!
//! Ramadan et al.'s DATM forwards speculatively written data between
//! running transactions and enforces atomicity by committing transactions in
//! dependence order; a *cyclic* dependence cannot be serialized and aborts a
//! transaction. Figure 2(b) of the RETCON paper shows the consequence for
//! repeated counter increments: the first remote increment forwards, but the
//! second closes a cycle and forces an abort — the case RETCON's symbolic
//! repair handles without any abort.
//!
//! This implementation tracks read/write sets at block granularity in the
//! protocol itself (rather than in cache bits, whose invalidation semantics
//! do not fit forwarding) and maintains the dependence graph with one
//! progress-guaranteeing restriction: dependences may only point from
//! *older* to *younger* transactions. Forwarding from an older writer to a
//! younger reader is allowed; an access that would create a younger→older
//! edge (the situation that closes a cycle in general DATM) instead aborts
//! the younger endpoint, cascading to every transaction that consumed its
//! forwarded data. Edges therefore always follow the age order, the graph
//! is acyclic by construction, the oldest transaction never waits or
//! aborts — and the Figure 2(b) schedule (second increment closes the
//! would-be cycle, younger transaction aborts) is reproduced exactly.
//! Commits wait for all predecessors, enforcing the dependence order.

use retcon_isa::table::{BlockTable, EpochSet};
use retcon_isa::{Addr, CoreSet, Reg};
use retcon_mem::{AccessKind, CoreId, FxHashSet, MemorySystem, UndoLog};

use crate::protocol::Protocol;
use crate::result::{AbortCause, CommitResult, MemResult, ProtocolStats, RegUpdates};
use crate::storm::{StallAction, StallStorm};
use retcon_isa::BlockAddr;

#[derive(Debug, Default)]
struct CoreState {
    active: bool,
    birth: Option<u64>,
    undo: UndoLog,
    read_set: EpochSet,
    write_set: EpochSet,
    /// Distinct blocks in `read_set`/`write_set`, in first-touch order —
    /// the worklist for clearing this core's bits out of the shared
    /// reader/writer masks at transaction end.
    read_blocks: Vec<u64>,
    write_blocks: Vec<u64>,
    aborted: bool,
    stats: ProtocolStats,
}

/// Simplified dependence-aware transactional memory (see module docs).
#[derive(Debug)]
pub struct DatmLite<const N: usize = 1> {
    cores: Vec<CoreState>,
    /// Dependence edges `(pred, succ)`: `succ` must commit after `pred`.
    edges: FxHashSet<(usize, usize)>,
    /// Per-block set of *active* cores whose read set holds the block
    /// (the O(1) replacement for snooping every core's read set on every
    /// access).
    readers: BlockTable<CoreSet<N>>,
    /// Per-block set of active cores whose write set holds the block.
    writers: BlockTable<CoreSet<N>>,
    /// Scratch: the cascading-abort DFS worklist (reused across cascades
    /// so the abort path never allocates in steady state).
    cascade: Vec<usize>,
    /// Scratch: the victim list of the current cascade, rolled back
    /// youngest-first.
    victims: Vec<usize>,
}

impl<const N: usize> DatmLite<N> {
    /// Creates the protocol for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        DatmLite {
            cores: (0..num_cores).map(|_| CoreState::default()).collect(),
            edges: FxHashSet::default(),
            readers: BlockTable::new(),
            writers: BlockTable::new(),
            cascade: Vec::new(),
            victims: Vec::new(),
        }
    }

    /// Drops every trace of `core`'s transaction footprint: its bits in the
    /// shared reader/writer masks, then its sets and worklists.
    fn clear_footprint(&mut self, core: usize) {
        let cs = &mut self.cores[core];
        for &b in &cs.read_blocks {
            self.readers.entry(b).remove(core);
        }
        for &b in &cs.write_blocks {
            self.writers.entry(b).remove(core);
        }
        cs.read_blocks.clear();
        cs.write_blocks.clear();
        cs.read_set.clear();
        cs.write_set.clear();
    }

    fn age(&self, c: usize) -> (u64, usize) {
        (self.cores[c].birth.unwrap_or(u64::MAX), c)
    }

    /// Requires `pred` to commit before `succ`. If `pred` is actually the
    /// *younger* transaction, the edge would invert the age order (the
    /// cycle-closing situation of Figure 2(b)): the younger endpoint aborts
    /// with cascades instead. Returns `false` if `requester` was aborted
    /// (directly or by a cascade).
    fn add_edge(
        &mut self,
        pred: usize,
        succ: usize,
        mem: &mut MemorySystem<N>,
        requester: usize,
    ) -> bool {
        if pred == succ {
            return true;
        }
        if self.age(pred) > self.age(succ) {
            // The predecessor is younger: abort it (and its consumers).
            self.abort_cascading(pred, mem);
        } else {
            self.edges.insert((pred, succ));
        }
        self.cores[requester].active
    }

    /// Aborts `core` and every active transaction that consumed data
    /// forwarded from it (its successors in the dependence graph).
    ///
    /// The DFS worklist and victim list are reusable scratch buffers and
    /// the visited set is a fixed-width [`CoreSet`], so cascades
    /// allocate nothing once the buffers reach steady capacity — this was
    /// the last allocating path in any protocol's conflict handling
    /// (`tests/no_alloc_machine.rs` pins DATM under max contention).
    fn abort_cascading(&mut self, core: usize, mem: &mut MemorySystem<N>) {
        let mut stack = std::mem::take(&mut self.cascade);
        stack.clear();
        stack.push(core);
        let mut seen: CoreSet<N> = CoreSet::EMPTY;
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            stack.extend(
                self.edges
                    .iter()
                    .filter(|&&(p, _)| p == c)
                    .map(|&(_, s)| s)
                    .filter(|s| self.cores[*s].active),
            );
        }
        self.cascade = stack;
        // Roll back in reverse dependence order (youngest first) so each
        // undo log restores the values its successors forwarded. The sort
        // key `(birth, id)` is unique per victim, so the unstable sort is
        // deterministic.
        let mut victims = std::mem::take(&mut self.victims);
        victims.clear();
        victims.extend(seen.iter().filter(|&c| c < self.cores.len()));
        victims.retain(|&c| self.cores[c].active);
        victims.sort_unstable_by_key(|&c| std::cmp::Reverse((self.cores[c].birth.unwrap_or(0), c)));
        for &v in &victims {
            self.cores[v].undo.rollback(mem.memory_mut());
            self.clear_footprint(v);
            let cs = &mut self.cores[v];
            cs.active = false;
            cs.aborted = true;
            cs.stats.record_abort(AbortCause::Cycle);
            self.edges.retain(|&(p, s)| p != v && s != v);
        }
        self.victims = victims;
        // Dependence edges and activity changed: commit-waiting verdicts
        // (keyed on the sentinel block 0 by `stall_storm`) may change.
        mem.bump_block_version(BlockAddr(0));
    }

    /// Sets of the *other* active cores whose write set (resp. only
    /// read set) holds `block`. A core appearing in both sets counts as a
    /// writer, exactly like the old per-core snoop; ascending iteration
    /// of the sets reproduces its ascending core order.
    #[inline]
    fn writers_and_readers(&self, block: u64, except: usize) -> (CoreSet<N>, CoreSet<N>) {
        let w = self.writers.get(block).without(except);
        let r = self.readers.get(block).without(except).and_not(w);
        (w, r)
    }
}

impl<const N: usize> Protocol<N> for DatmLite<N> {
    fn name(&self) -> &'static str {
        "datm"
    }

    fn tx_begin(&mut self, core: CoreId, now: u64) {
        let cs = &mut self.cores[core.0];
        debug_assert!(!cs.active);
        cs.active = true;
        cs.birth.get_or_insert(now);
    }

    fn tx_active(&self, core: CoreId) -> bool {
        self.cores[core.0].active
    }

    fn read(
        &mut self,
        core: CoreId,
        _dst: Reg,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let block = addr.block().0;
        if self.cores[core.0].active {
            // Forwarding: reading a block another transaction wrote creates
            // a dependence writer -> reader (we must commit after them).
            let (writers, _) = self.writers_and_readers(block, core.0);
            for w in writers {
                if !self.add_edge(w, core.0, mem, core.0) {
                    return MemResult::Abort;
                }
            }
            if self.cores[core.0].active {
                if self.cores[core.0].read_set.insert(block) {
                    self.cores[core.0].read_blocks.push(block);
                    self.readers.entry(block).insert(core.0);
                }
            } else {
                // Cascaded abort caught us.
                return MemResult::Abort;
            }
        }
        let latency = mem.access(core, addr, AccessKind::Read, false);
        MemResult::Value {
            value: mem.read_word(addr),
            latency,
        }
    }

    fn write(
        &mut self,
        core: CoreId,
        _src: Option<Reg>,
        value: u64,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let block = addr.block().0;
        if self.cores[core.0].active {
            // Anti- and output-dependences: prior readers and writers must
            // commit before us (writers first, then pure readers, each in
            // ascending core order, as the old per-core snoop produced).
            let (writers, readers) = self.writers_and_readers(block, core.0);
            for group in [writers, readers] {
                for other in group {
                    if !self.add_edge(other, core.0, mem, core.0) {
                        return MemResult::Abort;
                    }
                }
            }
            if !self.cores[core.0].active {
                return MemResult::Abort;
            }
            if self.cores[core.0].write_set.insert(block) {
                self.cores[core.0].write_blocks.push(block);
                self.writers.entry(block).insert(core.0);
            }
            self.cores[core.0].undo.record(mem.memory(), addr);
        }
        let latency = mem.access(core, addr, AccessKind::Write, false);
        mem.write_word(addr, value);
        MemResult::Value { value, latency }
    }

    fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, _now: u64) -> CommitResult {
        if !self.cores[core.0].active {
            // A cascading abort landed between the last access and commit.
            return CommitResult::Abort;
        }
        // Commit in dependence order: wait for active predecessors.
        let has_active_pred = self
            .edges
            .iter()
            .any(|&(p, s)| s == core.0 && self.cores[p].active);
        if has_active_pred {
            self.cores[core.0].stats.stalls += 1;
            return CommitResult::Stall;
        }
        self.cores[core.0].undo.clear();
        self.clear_footprint(core.0);
        let cs = &mut self.cores[core.0];
        cs.active = false;
        cs.birth = None;
        cs.stats.commits += 1;
        self.edges.retain(|&(p, s)| p != core.0 && s != core.0);
        mem.clear_spec(core);
        // A predecessor leaving the dependence graph releases waiting
        // committers: bump the sentinel block commit-waiting verdicts key
        // on (see `stall_storm`).
        mem.bump_block_version(BlockAddr(0));
        CommitResult::Committed {
            latency: 0,
            reg_updates: RegUpdates::EMPTY,
        }
    }

    fn take_aborted(&mut self, core: CoreId) -> bool {
        std::mem::take(&mut self.cores[core.0].aborted)
    }

    fn abort_pending(&self, core: CoreId) -> bool {
        self.cores[core.0].aborted
    }

    fn stats(&self, core: CoreId) -> &ProtocolStats {
        &self.cores[core.0].stats
    }

    fn stall_storm(
        &self,
        core: CoreId,
        action: StallAction,
        _mem: &MemorySystem<N>,
    ) -> Option<StallStorm<N>> {
        // Accesses never stall under DATM (they forward or abort). A commit
        // stalled behind an active predecessor is a fixed point: this
        // core's predecessor set only grows through its *own* accesses, so
        // while it is stalled the verdict can change only when a
        // predecessor commits or an abort cascade runs — both bump the
        // sentinel block 0's conflict version, which the returned storm is
        // keyed on. The stalled commit attempt itself reads the edge set
        // without mutating anything but the stall counter.
        if !matches!(action, StallAction::Commit) {
            return None;
        }
        let waiting = self.cores[core.0].active
            && self
                .edges
                .iter()
                .any(|&(p, s)| s == core.0 && self.cores[p].active);
        waiting.then_some(StallStorm::access(CoreSet::EMPTY, BlockAddr(0)))
    }

    fn apply_stall_retries(
        &mut self,
        core: CoreId,
        _storm: &StallStorm<N>,
        n: u64,
        _mem: &mut MemorySystem<N>,
    ) {
        // n repetitions of `commit`'s active-predecessor stall.
        self.cores[core.0].stats.stalls += n;
    }

    fn check_quiescent(&self) -> Result<(), String> {
        if !self.edges.is_empty() {
            return Err(format!(
                "datm: {} dependence edges survive quiescence",
                self.edges.len()
            ));
        }
        for (i, cs) in self.cores.iter().enumerate() {
            if cs.active {
                return Err(format!("datm: core {i} still has an active transaction"));
            }
            if cs.birth.is_some() {
                return Err(format!("datm: core {i} kept a transaction birth stamp"));
            }
            if !cs.undo.is_empty() {
                return Err(format!(
                    "datm: core {i} undo log holds {} entries at quiescence",
                    cs.undo.len()
                ));
            }
            // The shared reader/writer masks are cleared through these
            // worklists, so non-empty worklists mean leaked mask bits.
            if !cs.read_blocks.is_empty() || !cs.write_blocks.is_empty() {
                return Err(format!(
                    "datm: core {i} footprint worklists not drained ({} reads, {} writes)",
                    cs.read_blocks.len(),
                    cs.write_blocks.len()
                ));
            }
            if cs.aborted {
                return Err(format!("datm: core {i} has an undelivered abort flag"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_mem::MemConfig;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const A: Addr = Addr(0);

    fn setup() -> (MemorySystem, DatmLite) {
        (MemorySystem::new(MemConfig::default(), 2), DatmLite::new(2))
    }

    fn value(r: MemResult) -> u64 {
        match r {
            MemResult::Value { value, .. } => value,
            other => panic!("expected value, got {other:?}"),
        }
    }

    fn increment(tm: &mut DatmLite, mem: &mut MemorySystem, core: CoreId) -> MemResult {
        let v = match tm.read(core, Reg(1), A, None, mem, 0) {
            MemResult::Value { value, .. } => value,
            other => return other,
        };
        tm.write(core, Some(Reg(1)), v + 1, A, None, mem, 0)
    }

    #[test]
    fn forwarding_allows_acyclic_sharing() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        // C0 increments once; C1 reads the forwarded value.
        assert!(matches!(
            increment(&mut tm, &mut mem, C0),
            MemResult::Value { .. }
        ));
        let v = value(tm.read(C1, Reg(1), A, None, &mut mem, 2));
        assert_eq!(v, 1, "speculative value forwarded");
        // C1 must commit after C0.
        assert_eq!(tm.commit(C1, &mut mem, 3), CommitResult::Stall);
        assert!(matches!(
            tm.commit(C0, &mut mem, 4),
            CommitResult::Committed { .. }
        ));
        assert!(matches!(
            tm.commit(C1, &mut mem, 5),
            CommitResult::Committed { .. }
        ));
    }

    #[test]
    fn figure2b_cycle_aborts_younger() {
        // Figure 2(b): both transactions increment twice. The interleaving
        // P0 inc, P1 inc (forwards, edge P0->P1), P1 inc again, P0 inc again
        // (edge P1->P0: cycle!) aborts the younger transaction (P1).
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        assert!(matches!(
            increment(&mut tm, &mut mem, C0),
            MemResult::Value { .. }
        ));
        assert!(matches!(
            increment(&mut tm, &mut mem, C1),
            MemResult::Value { .. }
        ));
        assert!(matches!(
            increment(&mut tm, &mut mem, C1),
            MemResult::Value { .. }
        ));
        // P0's second increment reads the block P1 wrote: edge P1->P0 closes
        // the cycle; P1 (younger) aborts and its writes roll back.
        let r = increment(&mut tm, &mut mem, C0);
        assert!(matches!(r, MemResult::Value { .. }), "{r:?}");
        assert!(tm.take_aborted(C1));
        assert_eq!(tm.stats(C1).aborts_cycle, 1);
        // P0 commits with its two increments.
        assert!(matches!(
            tm.commit(C0, &mut mem, 9),
            CommitResult::Committed { .. }
        ));
        assert_eq!(mem.read_word(A), 2);
        // P1 retries and commits.
        tm.tx_begin(C1, 10);
        assert!(matches!(
            increment(&mut tm, &mut mem, C1),
            MemResult::Value { .. }
        ));
        assert!(matches!(
            increment(&mut tm, &mut mem, C1),
            MemResult::Value { .. }
        ));
        assert!(matches!(
            tm.commit(C1, &mut mem, 11),
            CommitResult::Committed { .. }
        ));
        assert_eq!(mem.read_word(A), 4);
    }

    #[test]
    fn cascading_abort_rolls_back_consumers() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        // C0 writes 5; C1 reads the forwarded 5 and writes elsewhere.
        let _ = tm.write(C0, None, 5, A, None, &mut mem, 2);
        assert_eq!(value(tm.read(C1, Reg(1), A, None, &mut mem, 3)), 5);
        let _ = tm.write(C1, None, 1, Addr(64), None, &mut mem, 4);
        // Abort C0 (simulate via cascading helper): C1 must abort too.
        tm.abort_cascading(0, &mut mem);
        // The preview sees the pending flags without clearing them...
        assert!(tm.abort_pending(C0));
        assert!(tm.abort_pending(C1));
        assert!(tm.abort_pending(C1), "preview must not clear");
        // ...and delivery clears them.
        assert!(tm.take_aborted(C0));
        assert!(tm.take_aborted(C1));
        assert!(!tm.abort_pending(C0));
        assert!(!tm.abort_pending(C1));
        assert_eq!(mem.read_word(A), 0);
        assert_eq!(mem.read_word(Addr(64)), 0);
    }

    #[test]
    fn disjoint_txs_commit_freely() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        let _ = tm.write(C0, None, 5, Addr(0), None, &mut mem, 2);
        let _ = tm.write(C1, None, 7, Addr(64), None, &mut mem, 3);
        assert!(matches!(
            tm.commit(C1, &mut mem, 4),
            CommitResult::Committed { .. }
        ));
        assert!(matches!(
            tm.commit(C0, &mut mem, 5),
            CommitResult::Committed { .. }
        ));
    }
}
