//! Export a traced event stream as Chrome trace-event JSON.
//!
//! The output is the `{"traceEvents": [...]}` envelope with one
//! *instant* event per [`TraceEvent`], mapping simulated cycles to the
//! `ts` microsecond field, cores to threads (`tid`), and the one
//! payload word to `args.v` — directly loadable in `chrome://tracing`
//! and Perfetto. Everything is integers and fixed strings, so the
//! emission is byte-stable for a given stream.

use crate::event::TraceEvent;
use crate::ring::RingTracer;

/// Renders one event as a Chrome instant event (scope `t`, thread).
fn push_event(out: &mut String, e: &TraceEvent) {
    let name = e.event_kind().map_or("unknown", |k| k.name());
    out.push_str(&format!(
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{\"v\":{}}}}}",
        e.at, e.core, e.arg
    ));
}

/// The full trace document for `tracer`'s held events.
///
/// Includes `otherData` with the drop count so a truncated stream is
/// visible in the viewer, not silent.
pub fn to_chrome_json(tracer: &RingTracer) -> String {
    let mut out = String::with_capacity(tracer.len() * 96 + 128);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in tracer.events().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        push_event(&mut out, e);
    }
    out.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}}}}}\n",
        tracer.dropped()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Tracer};

    #[test]
    fn emits_instant_events_with_cores_as_threads() {
        let mut r = RingTracer::with_capacity(8);
        r.record(3, EventKind::TxBegin, 100, 0);
        r.record(3, EventKind::Commit, 150, 12);
        let json = to_chrome_json(&r);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.contains(
            "{\"name\":\"tx_begin\",\"ph\":\"i\",\"ts\":100,\"pid\":0,\"tid\":3,\"s\":\"t\",\"args\":{\"v\":0}}"
        ));
        assert!(json.contains(
            "{\"name\":\"commit\",\"ph\":\"i\",\"ts\":150,\"pid\":0,\"tid\":3,\"s\":\"t\",\"args\":{\"v\":12}}"
        ));
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn empty_stream_is_still_valid_json_shape() {
        let r = RingTracer::with_capacity(1);
        let json = to_chrome_json(&r);
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }
}
