//! Integer-only metrics: counters, gauges, and log2 histograms, with
//! Prometheus text exposition.
//!
//! Everything is atomics — recording on a hot path is one
//! `fetch_add` — and everything renders as integers, matching the
//! repo-wide "no floats in machine-readable output" rule. A
//! [`Registry`] holds named metrics in registration order and renders
//! the whole set as one exposition document; [`validate_exposition`]
//! checks a document well-formed (used by the CI smoke job and the
//! test suite, so the daemon's output is verified by the same code
//! that defines the format).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for counters mirrored from an external
    /// source of truth (the daemon's existing stats atomics) right
    /// before rendering. Callers must preserve monotonicity themselves.
    pub fn store(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Histogram buckets: powers of two up to `2^(BUCKETS-1)`, plus an
/// implicit `+Inf`. 40 doublings cover one microsecond to ~12 days —
/// every latency this repo measures.
const BUCKETS: usize = 40;

/// A log2-bucketed histogram of non-negative integers.
///
/// `observe(v)` lands `v` in the first bucket whose upper bound
/// `2^i >= v` (zero lands with one). One atomic add per observation;
/// cumulative `le` counts are computed at render time, so the hot path
/// touches exactly one bucket.
#[derive(Debug)]
pub struct Log2Hist {
    buckets: [AtomicU64; BUCKETS],
    /// Observations above the largest finite bucket.
    overflow: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Log2Hist {
        Log2Hist::default()
    }

    /// Records one value.
    pub fn observe(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        };
        if idx < BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.overflow.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Renders the histogram family (buckets, sum, count) for `name`.
    /// Empty trailing buckets are elided; the `+Inf` bucket always
    /// appears.
    fn render_into(&self, out: &mut String, name: &str) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let last_used = counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().take(last_used).enumerate() {
            cumulative += c;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                1u64 << i
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            self.count(),
            self.sum(),
            self.count()
        ));
    }
}

enum Entry {
    Counter(String, Arc<Counter>),
    Gauge(String, Arc<Gauge>),
    Hist(String, Arc<Log2Hist>),
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, name) = match self {
            Entry::Counter(n, _) => ("counter", n),
            Entry::Gauge(n, _) => ("gauge", n),
            Entry::Hist(n, _) => ("histogram", n),
        };
        write!(f, "{kind} {name}")
    }
}

/// A named collection of metrics, rendered as one Prometheus text
/// exposition document in registration order.
///
/// Names are prefixed at render time (`<prefix>_<name>`); registering
/// the same name twice returns the existing metric, so call sites can
/// look metrics up by name without plumbing handles around.
#[derive(Debug)]
pub struct Registry {
    prefix: String,
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry whose metrics render as `<prefix>_<name>`.
    pub fn new(prefix: &str) -> Registry {
        Registry {
            prefix: prefix.to_string(),
            entries: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        for e in entries.iter() {
            if let Entry::Counter(n, c) = e {
                if n == name {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry::Counter(name.to_string(), Arc::clone(&c)));
        c
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        for e in entries.iter() {
            if let Entry::Gauge(n, g) = e {
                if n == name {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry::Gauge(name.to_string(), Arc::clone(&g)));
        g
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Log2Hist> {
        let mut entries = self.lock();
        for e in entries.iter() {
            if let Entry::Hist(n, h) = e {
                if n == name {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Log2Hist::new());
        entries.push(Entry::Hist(name.to_string(), Arc::clone(&h)));
        h
    }

    /// The whole registry as Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.lock().iter() {
            match e {
                Entry::Counter(name, c) => {
                    let full = format!("{}_{name}", self.prefix);
                    out.push_str(&format!("# TYPE {full} counter\n{full} {}\n", c.get()));
                }
                Entry::Gauge(name, g) => {
                    let full = format!("{}_{name}", self.prefix);
                    out.push_str(&format!("# TYPE {full} gauge\n{full} {}\n", g.get()));
                }
                Entry::Hist(name, h) => {
                    h.render_into(&mut out, &format!("{}_{name}", self.prefix));
                }
            }
        }
        out
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Checks a Prometheus text exposition document for well-formedness:
/// every line is a `# TYPE`/`# HELP` comment or `name[{labels}] <int>`
/// sample; names are legal; every sample's base name was declared by a
/// preceding `# TYPE`; histogram bucket counts are cumulative and end
/// at `+Inf`.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut declared: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut last_bucket: Option<(String, u64)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let fail = |msg: &str| Err(format!("line {}: {msg}: `{line}`", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !valid_metric_name(name) {
                        return fail("bad metric name");
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return fail("unknown metric type");
                    }
                    declared.push((name.to_string(), kind.to_string()));
                }
                (Some("HELP"), Some(name), _) => {
                    if !valid_metric_name(name) {
                        return fail("bad metric name");
                    }
                }
                _ => return fail("bad comment"),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return fail("no value"),
        };
        if value_part.parse::<u64>().is_err() {
            return fail("non-integer value");
        }
        let value: u64 = value_part.parse().unwrap_or(0);
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(l) => (n, Some(l)),
                None => return fail("unterminated labels"),
            },
            None => (name_part, None),
        };
        if !valid_metric_name(name) {
            return fail("bad metric name");
        }
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| declared.iter().any(|(n, k)| n == *b && k == "histogram"))
            .unwrap_or(name);
        if !declared.iter().any(|(n, _)| n == base) {
            return fail("sample without a preceding # TYPE");
        }
        if name.ends_with("_bucket") && labels.is_some_and(|l| l.starts_with("le=")) {
            let le = labels.unwrap().trim_start_matches("le=").trim_matches('"');
            if let Some((prev_base, prev)) = &last_bucket {
                if prev_base == base && value < *prev {
                    return fail("non-cumulative histogram buckets");
                }
            }
            if le == "+Inf" {
                last_bucket = None;
            } else {
                last_bucket = Some((base.to_string(), value));
            }
        } else if let Some((prev_base, _)) = &last_bucket {
            if prev_base == base {
                return fail("histogram buckets did not end at +Inf");
            }
            last_bucket = None;
        }
    }
    if last_bucket.is_some() {
        return Err("histogram buckets did not end at +Inf".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_in_order() {
        let r = Registry::new("retcon_test");
        r.counter("executed").add(5);
        r.gauge("queue_depth").set(3);
        r.counter("executed").inc(); // same handle by name
        let text = r.render();
        assert_eq!(
            text,
            "# TYPE retcon_test_executed counter\nretcon_test_executed 6\n\
             # TYPE retcon_test_queue_depth gauge\nretcon_test_queue_depth 3\n"
        );
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn log2_hist_buckets_are_cumulative() {
        let h = Log2Hist::new();
        for v in [0, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        let mut out = String::new();
        h.render_into(&mut out, "lat");
        assert!(out.contains("lat_bucket{le=\"1\"} 2\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"2\"} 3\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"4\"} 5\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"128\"} 6\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"+Inf\"} 6\n"), "{out}");
        assert!(out.contains("lat_sum 110\n"), "{out}");
        assert!(out.contains("lat_count 6\n"), "{out}");
        let mut doc = String::from("");
        Log2Hist::render_into(&h, &mut doc, "lat");
        validate_exposition(&doc).unwrap();
    }

    #[test]
    fn hist_overflow_still_counts() {
        let h = Log2Hist::new();
        h.observe(u64::MAX);
        assert_eq!(h.count(), 1);
        let mut out = String::new();
        h.render_into(&mut out, "x");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 1\n"), "{out}");
        validate_exposition(&out).unwrap();
    }

    #[test]
    fn registry_renders_histograms() {
        let r = Registry::new("svc");
        r.histogram("latency_micros").observe(7);
        let text = r.render();
        assert!(text.contains("# TYPE svc_latency_micros histogram"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (doc, why) in [
            ("metric_without_type 1\n", "undeclared"),
            ("# TYPE m counter\nm 1.5\n", "float value"),
            ("# TYPE m counter\nm\n", "no value"),
            ("# TYPE 9bad counter\n", "bad name"),
            ("# TYPE m wat\n", "bad type"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
                "non-cumulative",
            ),
            ("# TYPE h histogram\nh_bucket{le=\"1\"} 1\n", "no +Inf"),
        ] {
            assert!(validate_exposition(doc).is_err(), "{why}: {doc}");
        }
    }
}
