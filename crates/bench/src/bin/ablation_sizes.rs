//! Structure-size and predictor-threshold sweeps.
//!
//! DESIGN.md calls out three sizing decisions taken from Table 1: the
//! 16-entry initial value buffer, the 16-entry constraint buffer and the
//! 32-entry symbolic store buffer, plus the predictor's train-down backoff.
//! This harness sweeps each and reports speedups on the auxiliary-data
//! workloads, showing where capacity starts to matter.
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::AblationSizes)
}
