//! Figure 9: scalability over sequential execution — eager vs lazy-vb vs
//! RETCON, plus DATM (a ROADMAP addition over the paper's three bars).
//!
//! The paper's headline numbers: RETCON turns python_opt from no scaling
//! into ~30x; genome-sz 14x → 24x; intruder_opt-sz 6x → 21x;
//! vacation_opt-sz 19x → 24x; yada/intruder/python unaffected.
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Fig9)
}
