//! Whole-machine throughput benchmarks (vendored criterion shim).
//!
//! One bench per protocol, each a complete 4-core shared-counter
//! simulation — interpreter, monomorphized protocol dispatch, coherence,
//! scheduler, commit — so dispatch-level regressions show up without
//! running the full `retcon-lab` macro-benchmark. Every iteration executes
//! a fixed instruction count; instructions/sec per protocol is
//! `instructions ÷ (reported ns/iter)`, and the bench prints the
//! per-iteration instruction count so the division is one step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use retcon::RetconConfig;
use retcon_isa::{BinOp, CmpOp, Operand, Program, ProgramBuilder, Reg};
use retcon_sim::{
    AnyProtocol, ConflictPolicy, DatmLite, EagerTm, LazyTm, LazyVbTm, Machine, RetconTm, SimConfig,
};

const CORES: usize = 4;
const ITERS: u64 = 50;

/// `iters` transactional double-increments of the shared counter at 0.
fn counter_program(iters: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let body = b.block();
    let done = b.block();
    b.imm(Reg(0), iters);
    b.imm(Reg(1), 0);
    b.jump(body);
    b.select(body);
    b.tx_begin();
    b.load(Reg(2), Reg(1), 0);
    b.add_imm(Reg(2), 1);
    b.store(Operand::Reg(Reg(2)), Reg(1), 0);
    b.load(Reg(2), Reg(1), 0);
    b.add_imm(Reg(2), 1);
    b.store(Operand::Reg(Reg(2)), Reg(1), 0);
    b.tx_commit();
    b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
    b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
    b.select(done);
    b.halt();
    b.build().unwrap()
}

fn protocol(name: &str) -> AnyProtocol {
    match name {
        "eager" => EagerTm::new(CORES, ConflictPolicy::OldestWins).into(),
        "eager-abort" => EagerTm::new(CORES, ConflictPolicy::RequesterLoses).into(),
        "lazy" => LazyTm::new(CORES).into(),
        "lazy-vb" => LazyVbTm::new(CORES).into(),
        "retcon" => RetconTm::new(CORES, RetconConfig::default()).into(),
        "datm" => DatmLite::new(CORES).into(),
        other => panic!("unknown protocol {other}"),
    }
}

fn bench_whole_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("whole_machine");
    for name in ["eager", "eager-abort", "lazy", "lazy-vb", "retcon", "datm"] {
        group.bench_function(name, |b| {
            let mut instructions = 0;
            b.iter(|| {
                let programs = (0..CORES).map(|_| counter_program(ITERS)).collect();
                let mut m: Machine =
                    Machine::new(SimConfig::with_cores(CORES), protocol(name), programs);
                let report = m.run().expect("run completes");
                instructions = report.per_core.iter().map(|c| c.instructions).sum::<u64>();
                black_box(report.cycles)
            });
            println!("    ({name}: {instructions} instructions per iteration)");
        });
    }
    group.finish();
}

criterion_group!(benches, bench_whole_machine);
criterion_main!(benches);
