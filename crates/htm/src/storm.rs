//! Stall-storm descriptions for the simulator's analytic fast-forward.
//!
//! On heavily contended runs the simulator spends most of its work
//! re-executing *stall retries*: a core whose access lost a conflict waits
//! the retry latency and re-issues the same instruction, which loses the
//! same conflict against the same frozen masks, over and over, until the
//! scheduler hands control to another core (32-core `python`/RetCon retires
//! 1.7 M instructions but executes 4.5 M retries). Within one scheduler
//! batch no other core runs, so the storm's per-retry outcome is a fixed
//! point — the simulator can *compute* the storm instead of simulating it.
//!
//! [`Protocol::stall_storm`](crate::Protocol::stall_storm) is the read-only
//! dry run: "if the stalled instruction were retried right now, would it
//! stall again with exactly the same side effects?" A `Some` answer carries
//! a [`StallStorm`] describing the side effects of one retry; the simulator
//! then charges `n` retries in closed form and hands the storm back through
//! [`Protocol::apply_stall_retries`](crate::Protocol::apply_stall_retries)
//! to apply the side effects `n` times (stall counters, predictor
//! training, cache-hit statistics for commit reacquisition walks). A
//! `None` answer means the retry is not provably a fixed point (e.g. a
//! RETCON steal would mutate coherence state) and the simulator falls back
//! to executing retries one by one.
//!
//! # Access storms and commit storms
//!
//! A stalled *access* retry touches exactly one block, so its verdict
//! depends on that block's conflict state alone. A stalled RETCON *commit*
//! retry re-walks the reacquisition prefix first — every tracked block and
//! buffered-store block ahead of the one it stalls on — re-accessing each
//! (an L1 hit with no coherence transition in steady state) before losing
//! the same conflict. Such a storm carries the prefix in [`watch`]
//! (`StallStorm::watch`) and the per-retry hit count in
//! [`prefix_hits`](StallStorm::prefix_hits): the verdict additionally
//! depends on the prefix blocks *staying* conflict-free and resident, and
//! each skipped retry must replay the prefix's cache-hit statistics.
//!
//! The dry run's verdict stays valid as long as its inputs do: every input
//! is covered by the version counters of the contended block and the
//! watched prefix
//! ([`MemorySystem::block_version`](retcon_mem::MemorySystem::block_version)).
//! The counters are monotonic, so their *sum* stands still exactly when
//! every one of them does — the simulator caches the storm stamped with
//! that sum and replays it across scheduler batches without consulting the
//! protocol again until the sum moves (see the simulator's stall
//! fast-forward).

use retcon_isa::{Addr, BlockAddr, CoreSet};

/// The stalled instruction a storm re-executes, as the simulator saw it:
/// the resolved address of a load/store, or a transaction commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallAction {
    /// A load of `Addr` stalled.
    Read(Addr),
    /// A store to `Addr` stalled.
    Write(Addr),
    /// A transaction commit stalled.
    Commit,
}

/// Upper bound on the watched reacquisition prefix of a commit storm. A
/// commit whose footprint exceeds this (possible only under enlarged
/// IVB/SSB sweep configurations) is simply not certified and retries
/// step-by-step.
pub const MAX_WATCHED_BLOCKS: usize = 64;

/// The conflict-free reacquisition prefix a commit storm depends on: the
/// verdict "this commit stalls at [`StallStorm::block`]" holds only while
/// none of these blocks gains a conflict or loses residency, both of which
/// bump the block's conflict version. Empty for access storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchList {
    len: u8,
    blocks: [BlockAddr; MAX_WATCHED_BLOCKS],
}

impl WatchList {
    /// The empty watch list (access storms).
    pub const EMPTY: WatchList = WatchList {
        len: 0,
        blocks: [BlockAddr(0); MAX_WATCHED_BLOCKS],
    };

    /// Appends a block; returns `false` (list unchanged) when full.
    #[must_use]
    pub fn push(&mut self, block: BlockAddr) -> bool {
        if usize::from(self.len) == MAX_WATCHED_BLOCKS {
            return false;
        }
        self.blocks[usize::from(self.len)] = block;
        self.len += 1;
        true
    }

    /// The watched blocks.
    pub fn blocks(&self) -> &[BlockAddr] {
        &self.blocks[..usize::from(self.len)]
    }
}

/// The per-retry side effects of a stable stall storm, as validated by
/// [`Protocol::stall_storm`](crate::Protocol::stall_storm): each retry
/// increments the requester's stall counter, trains — under RETCON — the
/// conflict predictor of the requester and of every core in `train_mask`
/// on `block`, and, for commit storms, re-hits the L1 once per watched
/// prefix block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallStorm<const N: usize = 1> {
    /// Set of conflicting cores whose predictors (and the requester's,
    /// once per member) observe one conflict on `block` per retry; empty
    /// for protocols without predictors.
    pub train_mask: CoreSet<N>,
    /// The contended block the retry loses its conflict on (and that the
    /// predictors train on when `train_mask` is non-zero).
    pub block: BlockAddr,
    /// L1-hit accesses each retry performs re-walking the commit
    /// reacquisition prefix (zero for access storms); the simulator replays
    /// `n * prefix_hits` hits into the requester's memory statistics.
    pub prefix_hits: u32,
    /// The conflict-free reacquisition prefix the verdict also depends on.
    pub watch: WatchList,
}

impl<const N: usize> StallStorm<N> {
    /// An access storm: single contended block, no prefix.
    pub const fn access(train_mask: CoreSet<N>, block: BlockAddr) -> StallStorm<N> {
        StallStorm {
            train_mask,
            block,
            prefix_hits: 0,
            watch: WatchList::EMPTY,
        }
    }
}
