//! Sharded execution must be byte-identical to serial replay.
//!
//! `run_spec_sized` with `shards > 1` partitions the cores into contiguous
//! ranges, runs each on its own machine, verifies the block footprints are
//! pairwise disjoint, and merges. These tests pin the whole contract at
//! the serialization boundary: the merged report's JSON must be *equal as
//! bytes* to the serial run's, at every size class the shards cross.

use retcon_workloads::{run_spec_sized, System, Workload};

/// Serial vs sharded, compared on the serialized report.
fn assert_shard_identity(cores: usize, shards: usize, system: System) {
    let spec = Workload::ScalingXl.build(cores, 42);
    let serial = run_spec_sized(&spec, system, cores, 1).expect("serial run completes");
    let sharded = run_spec_sized(&spec, system, cores, shards).expect("sharded run completes");
    let a = serial.to_json().to_string();
    let b = sharded.to_json().to_string();
    assert_eq!(a, b, "{system:?} @ {cores} cores / {shards} shards");
}

#[test]
fn sharded_256_cores_matches_serial_bytes() {
    // The ISSUE's headline gate: 256 cores (4-word CoreSet class), at
    // least two shards, byte-identical records.
    assert_shard_identity(256, 2, System::Retcon);
}

#[test]
fn sharded_256_cores_four_shards_eager() {
    assert_shard_identity(256, 4, System::Eager);
}

#[test]
fn sharded_96_cores_uneven_split() {
    // 96 cores over 4 shards = 24 each (3 whole groups): exercises the
    // 2-word class and a shard size that is not a power of two.
    assert_shard_identity(96, 4, System::LazyVb);
}

#[test]
fn xl_1024_cores_runs_to_completion_sharded() {
    // The widest size class, sharded; the merge must agree with serial.
    let cores = 1024;
    let spec = Workload::ScalingXl.build(cores, 7);
    let serial = run_spec_sized(&spec, System::Retcon, cores, 1).expect("serial 1024-core run");
    let sharded = run_spec_sized(&spec, System::Retcon, cores, 4).expect("sharded 1024-core run");
    assert_eq!(serial.per_core.len(), cores);
    assert_eq!(
        serial.to_json().to_string(),
        sharded.to_json().to_string(),
        "1024-core sharded run must replay serial bytes"
    );
    // Every transaction of every group commits.
    assert_eq!(serial.protocol.commits, 1024 * 64);
}

#[test]
fn overlapping_footprints_fall_back_to_serial() {
    // `counter` (sans barrier it would still share one block) overlaps by
    // construction; the sharded entry must detect it or refuse up front
    // (counter has a barrier, so it is refused) and still return the
    // serial answer. Use a barrier-free overlap: every core of
    // scaling_xl's first group plus a manual shard cut through the group.
    // 8 cores / 2 shards cuts group 0 in half -> both shards touch block
    // 0 -> fallback. The report must equal the serial one.
    let spec = Workload::ScalingXl.build(8, 3);
    let serial = run_spec_sized(&spec, System::Eager, 8, 1).expect("serial");
    let sharded = run_spec_sized(&spec, System::Eager, 8, 2).expect("fallback");
    assert_eq!(
        serial.to_json().to_string(),
        sharded.to_json().to_string(),
        "overlap fallback must replay serial bytes"
    );
}

#[test]
fn barrier_workloads_are_refused_and_run_serially() {
    // `counter` ends in a barrier: the sharded entry must take the serial
    // path and agree with run_spec.
    let spec = Workload::Counter.build(4, 0);
    let direct = retcon_workloads::run_spec(&spec, System::Retcon, 4).expect("direct");
    let via_sized = run_spec_sized(&spec, System::Retcon, 4, 2).expect("sized");
    assert_eq!(
        direct.to_json().to_string(),
        via_sized.to_json().to_string()
    );
}

#[test]
fn unsupported_core_count_is_a_clear_error() {
    let spec = Workload::ScalingXl.build(4, 0);
    let err = run_spec_sized(&spec, System::Eager, 1025, 1).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("1025") && msg.contains("1024"),
        "error must name the request and the ceiling: {msg}"
    );
}
