//! Instruction definitions.

use std::fmt;

use crate::program::BlockId;
use crate::reg::Reg;

/// The second operand of an ALU or branch instruction: a register or an
/// immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the operand from a register.
    Reg(Reg),
    /// Use a constant, sign-extended to 64 bits.
    Imm(i64),
}

/// Two-input integer ALU operations.
///
/// Following §4.4 of the paper ("Efficient representation of symbolic
/// computation"), only [`BinOp::Add`] and [`BinOp::Sub`] are *symbolically
/// trackable* by RETCON (and only when the other operand is concrete); all
/// remaining operations force an equality constraint on any symbolic input.
/// [`BinOp::is_symbolic_trackable`] encodes that split so the RETCON core and
/// its tests share one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping 64-bit addition. Symbolically trackable.
    Add,
    /// Wrapping 64-bit subtraction. Symbolically trackable when the symbolic
    /// value is the *left* operand (`sym - k`); `k - sym` is not expressible
    /// as `root + offset` and forces an equality constraint.
    Sub,
    /// Wrapping multiplication. Not trackable (paper: "complicated arithmetic
    /// operations the implementation has chosen not to track").
    Mul,
    /// Unsigned division; division by zero yields 0. Not trackable (the paper
    /// names integer divide explicitly as untracked).
    Div,
    /// Unsigned remainder; remainder by zero yields 0. Not trackable.
    Mod,
    /// Bitwise AND. Not trackable.
    And,
    /// Bitwise OR. Not trackable.
    Or,
    /// Bitwise XOR. Not trackable.
    Xor,
    /// Logical shift left (shift amount taken modulo 64). Not trackable.
    Shl,
    /// Logical shift right (shift amount taken modulo 64). Not trackable.
    Shr,
}

impl BinOp {
    /// Whether RETCON's `(root, offset)` representation can track this
    /// operation when exactly one input is symbolic.
    ///
    /// `Add` is trackable in either operand position; `Sub` only when the
    /// symbolic value is on the left. Callers pass `sym_on_left` accordingly.
    #[inline]
    pub fn is_symbolic_trackable(self, sym_on_left: bool) -> bool {
        match self {
            BinOp::Add => true,
            BinOp::Sub => sym_on_left,
            _ => false,
        }
    }

    /// Applies the operation to concrete 64-bit values with the wrapping /
    /// zero-divisor semantics of the simulated machine.
    #[inline]
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => lhs.checked_div(rhs).unwrap_or(0),
            BinOp::Mod => lhs.checked_rem(rhs).unwrap_or(0),
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl(rhs as u32),
            BinOp::Shr => lhs.wrapping_shr(rhs as u32),
        }
    }
}

/// Branch comparison operators. Comparisons are *unsigned* 64-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on concrete values.
    #[inline]
    pub fn apply(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The comparison that holds exactly when `self` does not.
    #[inline]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The comparison with its operands swapped (`a op b` ⇔ `b op.swap() a`).
    #[inline]
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// A single instruction of the simulated machine.
///
/// Memory operands are formed as `register + constant word offset`, which is
/// enough for the workload kernels while keeping RETCON's "address computed
/// from a symbolic register" rule (§4.2, equality constraints on address
/// inputs) easy to implement and test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst <- value`.
    Imm {
        /// Destination register.
        dst: Reg,
        /// Constant written to `dst`.
        value: u64,
    },
    /// `dst <- src` (copies symbolic tags too).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst <- lhs op rhs`.
    Bin {
        /// ALU operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst <- memory[addr + offset]` (word-granularity).
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the base word address.
        addr: Reg,
        /// Constant word offset added to the base.
        offset: i64,
    },
    /// `memory[addr + offset] <- src`.
    Store {
        /// Value to store.
        src: Operand,
        /// Register holding the base word address.
        addr: Reg,
        /// Constant word offset added to the base.
        offset: i64,
    },
    /// Conditional transfer: if `lhs op rhs` jump to `taken`, else to
    /// `not_taken`. Always ends a basic block.
    Branch {
        /// Comparison operator.
        op: CmpOp,
        /// Left comparison operand register.
        lhs: Reg,
        /// Right comparison operand.
        rhs: Operand,
        /// Successor when the comparison holds.
        taken: BlockId,
        /// Successor when the comparison does not hold.
        not_taken: BlockId,
    },
    /// Unconditional transfer. Always ends a basic block.
    Jump {
        /// Successor block.
        target: BlockId,
    },
    /// Pop the next value from this core's thread-private input tape into
    /// `dst`. Free of memory-system interaction; the tape rewinds to the
    /// transaction-start position on abort so re-execution sees identical
    /// inputs.
    Input {
        /// Destination register.
        dst: Reg,
    },
    /// Spend `cycles` cycles of pure computation (no memory access, no
    /// symbolic effect). Models the non-auxiliary body of a transaction.
    Work {
        /// Number of cycles to consume.
        cycles: u32,
    },
    /// Enter a transactional region (or, equivalently, a speculatively
    /// elided critical section). Nesting is flattened by the simulator.
    TxBegin,
    /// Commit the current transactional region. Under RETCON this triggers
    /// the Figure 7 pre-commit repair process.
    TxCommit,
    /// Block until every core in the machine reaches a barrier. Used between
    /// workload phases; time spent here is accounted as "barrier" in the
    /// Figure 4 / Figure 10 breakdowns.
    Barrier,
    /// Stop this core. The simulation ends when all cores have halted.
    Halt,
}

impl Instr {
    /// `true` for instructions that must terminate a basic block.
    #[inline]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Halt
        )
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm { dst, value } => write!(f, "imm {dst}, {value}"),
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Bin { op, dst, lhs, rhs } => write!(f, "{op:?} {dst}, {lhs}, {rhs}"),
            Instr::Load { dst, addr, offset } => write!(f, "ld {dst}, [{addr}+{offset}]"),
            Instr::Store { src, addr, offset } => write!(f, "st [{addr}+{offset}], {src}"),
            Instr::Branch {
                op,
                lhs,
                rhs,
                taken,
                not_taken,
            } => write!(
                f,
                "br.{op:?} {lhs}, {rhs} -> b{}, b{}",
                taken.0, not_taken.0
            ),
            Instr::Jump { target } => write!(f, "jmp b{}", target.0),
            Instr::Input { dst } => write!(f, "input {dst}"),
            Instr::Work { cycles } => write!(f, "work {cycles}"),
            Instr::TxBegin => write!(f, "tx.begin"),
            Instr::TxCommit => write!(f, "tx.commit"),
            Instr::Barrier => write!(f, "barrier"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_apply_basics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(BinOp::Mul.apply(4, 5), 20);
        assert_eq!(BinOp::Div.apply(20, 5), 4);
        assert_eq!(BinOp::Div.apply(20, 0), 0);
        assert_eq!(BinOp::Mod.apply(21, 5), 1);
        assert_eq!(BinOp::Mod.apply(21, 0), 0);
        assert_eq!(BinOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Shl.apply(1, 4), 16);
        assert_eq!(BinOp::Shr.apply(16, 4), 1);
    }

    #[test]
    fn binop_wrapping() {
        assert_eq!(BinOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(BinOp::Mul.apply(u64::MAX, 2), u64::MAX - 1);
    }

    #[test]
    fn trackability_matches_paper() {
        assert!(BinOp::Add.is_symbolic_trackable(true));
        assert!(BinOp::Add.is_symbolic_trackable(false));
        assert!(BinOp::Sub.is_symbolic_trackable(true));
        assert!(!BinOp::Sub.is_symbolic_trackable(false));
        for op in [
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ] {
            assert!(!op.is_symbolic_trackable(true), "{op:?}");
            assert!(!op.is_symbolic_trackable(false), "{op:?}");
        }
    }

    #[test]
    fn cmp_apply() {
        assert!(CmpOp::Eq.apply(3, 3));
        assert!(CmpOp::Ne.apply(3, 4));
        assert!(CmpOp::Lt.apply(3, 4));
        assert!(CmpOp::Le.apply(4, 4));
        assert!(CmpOp::Gt.apply(5, 4));
        assert!(CmpOp::Ge.apply(4, 4));
        // Unsigned semantics: "-1" is the max value.
        assert!(CmpOp::Gt.apply(u64::MAX, 0));
    }

    #[test]
    fn cmp_negation_is_involutive_and_complementary() {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        for op in ops {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0)] {
                assert_ne!(op.apply(a, b), op.negate().apply(a, b), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn cmp_swap_swaps_operands() {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        for op in ops {
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (7, 7)] {
                assert_eq!(op.apply(a, b), op.swap().apply(b, a), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn terminators_classified() {
        assert!(Instr::Halt.is_terminator());
        assert!(Instr::Jump {
            target: crate::BlockId(0)
        }
        .is_terminator());
        assert!(!Instr::TxBegin.is_terminator());
        assert!(!Instr::Work { cycles: 3 }.is_terminator());
    }
}
