//! Workload specifications and memory layout allocation.

use retcon_isa::{Addr, Program, WORDS_PER_BLOCK};

/// A fully-built workload: one program and input tape per core, plus the
/// initial contents of shared memory.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Display name (Table 2 label).
    pub name: &'static str,
    /// One program per core.
    pub programs: Vec<Program>,
    /// One input tape per core (pre-randomized keys etc.).
    pub tapes: Vec<Vec<u64>>,
    /// Initial nonzero memory words.
    pub init: Vec<(Addr, u64)>,
}

impl WorkloadSpec {
    /// Number of cores the spec was built for.
    pub fn num_cores(&self) -> usize {
        self.programs.len()
    }

    /// Total dynamic transactions the workload will attempt (for sanity
    /// checks; derived by the builder).
    pub fn total_instructions_estimate(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }
}

/// A bump allocator for the simulated word address space.
///
/// Regions are always block-aligned so that logically-private data never
/// false-shares a cache block with another region — false sharing is then a
/// deliberate workload property, not an accident of layout.
///
/// # Example
///
/// ```
/// use retcon_workloads::Alloc;
/// let mut a = Alloc::new();
/// let table = a.alloc_blocks(4); // 4 blocks = 32 words
/// let other = a.alloc_words(3);  // block-aligned, 1 block consumed
/// assert_eq!(table.0 % 8, 0);
/// assert_eq!(other.0 % 8, 0);
/// assert!(other.0 >= table.0 + 32);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Alloc {
    next_block: u64,
}

impl Alloc {
    /// A fresh allocator starting at address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `n` whole blocks; returns the base word address.
    pub fn alloc_blocks(&mut self, n: u64) -> Addr {
        let base = Addr(self.next_block * WORDS_PER_BLOCK);
        self.next_block += n;
        base
    }

    /// Allocates at least `n` words, block-aligned.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        let blocks = n.div_ceil(WORDS_PER_BLOCK);
        self.alloc_blocks(blocks.max(1))
    }

    /// Words allocated so far (always a multiple of the block size).
    pub fn used_words(&self) -> u64 {
        self.next_block * WORDS_PER_BLOCK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_block_aligned_and_disjoint() {
        let mut a = Alloc::new();
        let x = a.alloc_words(1);
        let y = a.alloc_words(9);
        let z = a.alloc_blocks(2);
        assert_eq!(x.0 % 8, 0);
        assert_eq!(y.0 % 8, 0);
        assert_eq!(z.0 % 8, 0);
        assert_eq!(x.0, 0);
        assert_eq!(y.0, 8);
        assert_eq!(z.0, 24); // 9 words rounded to 2 blocks
        assert_eq!(a.used_words(), 40);
    }

    #[test]
    fn zero_word_request_still_allocates_a_block() {
        let mut a = Alloc::new();
        let x = a.alloc_words(0);
        let y = a.alloc_words(1);
        assert_ne!(x, y);
    }
}
